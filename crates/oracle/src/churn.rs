//! The churn loop: permanent fault waves, violation detection, and
//! incremental repair.
//!
//! A *wave* is a set of vertices or edges that fail **permanently** (unlike
//! the transient fault sets attached to queries). Applying a wave:
//!
//! 1. collects repair *seeds*: the failed elements' surroundings plus the
//!    edges whose LBC certificates the wave invalidated
//!    ([`ftspan::repair::certificates_touching`]);
//! 2. rematerializes the effective graph `G'` and surviving spanner `H'`;
//! 3. detects pairs near the damage whose stretch bound
//!    `d_{H'}(u, v) ≤ (2k − 1) · w(u, v)` broke;
//! 4. repairs by re-running the modified greedy **only on the damaged
//!    neighbourhood** ([`ftspan::repair::respan_candidates`]);
//! 5. verifies by sampling, and — when local repair was not enough —
//!    escalates to a full warm-start respan, which provably restores the
//!    `f`-fault-tolerant spanner property.
//!
//! Rozhoň–Ghaffari-style locality is the guiding idea: repair work should be
//! proportional to the damaged region, not the graph, with the global pass
//! kept only as a correctness backstop.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use ftspan::repair::{
    candidate_endpoints, certificates_touching, full_respan_with, respan_candidates_with,
    RepairOptions, RepairScratch,
};
use ftspan::verify::{verify_spanner_with, VerificationMode};
use ftspan::wire::encode_fault_set;
use ftspan::{EdgeCertificate, FaultSet};
use ftspan_graph::bfs::BfsScratch;
use ftspan_graph::dijkstra::DijkstraScratch;
use ftspan_graph::wire::{fnv1a64, WireWriter};
use ftspan_graph::{EdgeId, Graph, VertexId};

/// Pooled buffers for one oracle's churn loop, owned by the
/// [`FaultOracle`] and reused across waves: BFS frontiers (seeding, halo
/// and candidate collection), Dijkstra/Dial state (violation detection),
/// per-source distance caches, and the incremental-LBC
/// [`RepairScratch`] the localized respan runs on.
///
/// Before this existed, every wave re-allocated all of the above
/// proportionally to the *graph* — the damage-proportional work Rozhoň–
/// Ghaffari-style locality promises was being drowned by setup. The scratch
/// makes wave cost scale with the damaged region (plus the sampled spot
/// check).
#[derive(Debug, Default)]
pub(crate) struct WaveScratch {
    bfs: BfsScratch,
    dijkstra: DijkstraScratch,
    repair: RepairScratch,
    /// Lazily filled per-source distance caches of broken-pair detection,
    /// indexed by source vertex. Epoch-stamped so each wave starts empty in
    /// `O(1)` while the per-source buffers keep their capacity.
    spanner_dist: DistCache,
    graph_dist: DistCache,
}

/// A pooled per-source distance cache: `get` computes distances at most
/// once per source per epoch, writing them into a reusable buffer.
///
/// Buffer capacity is retained across epochs (that is the pooling win),
/// but bounded: the cache lives on the oracle for its whole lifetime, and
/// without a cap a long churn history would pin one vertex-count-sized
/// buffer per source ever touched — `O(n²)` retained heap in the worst
/// case. Once the filled buffers would exceed
/// [`DistCache::MAX_RETAINED_DISTANCES`] entries in total, `begin` frees
/// them all and lets the next wave's working set repopulate.
#[derive(Debug, Default)]
struct DistCache {
    bufs: Vec<Vec<f64>>,
    filled: ftspan_graph::EpochMarks,
    /// Sources whose buffer currently holds capacity, across epochs (may
    /// contain duplicates; used only to bound and free retained memory).
    retained: Vec<u32>,
}

impl DistCache {
    /// Upper bound on `f64` distance entries kept alive across epochs
    /// (~8 MB) before `begin` releases the pooled buffers.
    const MAX_RETAINED_DISTANCES: usize = 1 << 20;

    /// Starts a new epoch over `n` sources; previously cached distances
    /// become stale, and the pooled capacity is released once it exceeds
    /// the retention bound.
    fn begin(&mut self, n: usize) {
        if self.retained.len().saturating_mul(n) > Self::MAX_RETAINED_DISTANCES {
            for &i in &self.retained {
                self.bufs[i as usize] = Vec::new();
            }
            self.retained.clear();
        }
        self.filled.begin(n);
        if self.bufs.len() < self.filled.len() {
            self.bufs.resize_with(self.filled.len(), Vec::new);
        }
    }

    /// Distances from `u` over `view`, computed via `scratch` on first use
    /// this epoch.
    fn get<V: ftspan_graph::GraphView>(
        &mut self,
        scratch: &mut DijkstraScratch,
        view: &V,
        u: VertexId,
    ) -> &[f64] {
        if self.filled.set(u.index()) {
            let buf = &mut self.bufs[u.index()];
            if buf.capacity() == 0 {
                self.retained.push(u.as_u32());
            }
            buf.clear();
            buf.extend_from_slice(scratch.distances(view, u));
        }
        &self.bufs[u.index()]
    }
}

use crate::boundary::BoundaryIndex;
use crate::oracle::FaultOracle;
use crate::repair::neighborhood_candidates_with;
use crate::shard::{region_signature, shard_namespace, Region, ShardedOracle};

/// Configuration of the churn loop.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Hop radius around the seeds when collecting repair candidates.
    /// `0` means "use the stretch `2k − 1`", the distance within which a
    /// broken witness path must have passed the damage.
    pub repair_radius: u32,
    /// Samples for the post-repair spot check: half uniformly random, half
    /// adversarial, split exactly and deterministically (an odd count puts
    /// the extra sample in the random half — see
    /// [`ftspan::verify::sampled_split`]); `0` skips verification and never
    /// escalates.
    pub verify_samples: usize,
    /// Seed of the post-repair spot check, for reproducibility.
    pub verify_seed: u64,
    /// Whether an invalid spot check escalates to a full respan.
    pub escalate: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            repair_radius: 0,
            verify_samples: 16,
            verify_seed: 0x000C_4151_77AE,
            escalate: true,
        }
    }
}

/// What one [`FaultOracle::apply_wave`] call did.
#[derive(Clone, Debug)]
pub struct WaveOutcome {
    /// The wave that was applied.
    pub wave: FaultSet,
    /// Pairs (edges of the effective graph) whose stretch bound was broken
    /// before repair.
    pub broken_pairs: Vec<(VertexId, VertexId)>,
    /// Number of candidate edges handed to the localized respan.
    pub candidates: usize,
    /// Spanner edges added by repair (local plus escalation).
    pub edges_added: usize,
    /// Whether the local repair had to escalate to a full respan.
    pub escalated: bool,
    /// Spanner edges that survived the wave (before repair).
    pub surviving_spanner_edges: usize,
    /// Wall-clock time of the whole wave application.
    pub elapsed: Duration,
}

impl FaultOracle {
    /// Applies a permanent fault wave, repairs the spanner around it, and
    /// invalidates cached serving state.
    ///
    /// Edge identifiers in the wave refer to the **current**
    /// [`FaultOracle::graph`]. Waves may exceed the design tolerance `f` —
    /// that is exactly when repair has real work to do.
    pub fn apply_wave(&mut self, wave: &FaultSet, config: &ChurnConfig) -> WaveOutcome {
        let start = Instant::now();
        let radius = if config.repair_radius == 0 {
            self.params.stretch()
        } else {
            config.repair_radius
        };
        // The oracle-owned scratch serves every stage of the wave —
        // violation detection, candidate collection, the incremental-LBC
        // respan — and survives to the next wave, so steady-state churn
        // stops re-paying graph-sized setup allocations. Taken out of
        // `self` for the duration to keep `&self` reads available.
        let mut scratch = std::mem::take(&mut self.wave_scratch);

        // 1. Seeds, in the pre-wave id space (vertex ids are stable).
        let mut seeds: Vec<VertexId> = Vec::new();
        match wave {
            FaultSet::Vertices(vs) => {
                for &v in vs {
                    if v.index() < self.graph.vertex_count() {
                        seeds.push(v);
                        seeds.extend(self.graph.neighbors(v).map(|(nbr, _)| nbr));
                    }
                }
            }
            FaultSet::Edges(es) => {
                for &e in es {
                    if let Some(edge) = self.graph.get_edge(e) {
                        let (u, v) = edge.endpoints();
                        seeds.push(u);
                        seeds.push(v);
                    }
                }
            }
        }
        seeds.extend(self.certificate_seeds(wave));
        seeds.sort_unstable();
        seeds.dedup();

        // 2. Record damage and rematerialize the effective graphs. Both the
        //    damage bookkeeping and the spanner filter resolve wave edge ids
        //    against the pre-wave graph, so they run before the swap.
        self.record_damage(wave);
        let new_spanner = self.surviving_spanner(wave);
        let old_graph = std::mem::replace(&mut self.graph, Graph::new(0));
        let new_graph = self.materialize_effective_graph();
        let surviving_spanner_edges = new_spanner.edge_count();

        // 3. Detect broken stretch pairs near the damage.
        let broken_pairs = detect_broken_pairs(
            &new_graph,
            &new_spanner,
            self.stretch_bound(),
            &seeds,
            radius,
            &mut scratch,
        );
        let mut all_seeds = seeds;
        for &(u, v) in &broken_pairs {
            all_seeds.push(u);
            all_seeds.push(v);
        }
        all_seeds.sort_unstable();
        all_seeds.dedup();

        // 4. Localized repair on the incremental LBC engine.
        let candidates =
            neighborhood_candidates_with(&mut scratch.bfs, &new_graph, &all_seeds, radius);
        let repair_options = RepairOptions {
            collect_certificates: self.options.collect_certificates,
        };
        let mut outcome = respan_candidates_with(
            &mut scratch.repair,
            &new_graph,
            &new_spanner,
            self.params,
            &candidates,
            &repair_options,
        );
        let mut edges_added = outcome.edges_added();

        // 5. Spot-check; escalate to the provably-sufficient full respan if
        //    the local neighbourhood was too small.
        let mut escalated = false;
        if config.verify_samples > 0 {
            let report = verify_spanner_with(
                &mut scratch.dijkstra,
                &new_graph,
                &outcome.spanner,
                self.params,
                VerificationMode::Sampled {
                    samples: config.verify_samples,
                    seed: config.verify_seed,
                },
            );
            if !report.is_valid() && config.escalate {
                escalated = true;
                let mut fixed = full_respan_with(
                    &mut scratch.repair,
                    &new_graph,
                    &outcome.spanner,
                    self.params,
                    &repair_options,
                );
                edges_added += fixed.edges_added();
                // The warm start keeps every locally-repaired edge; carry
                // their certificates over (re-resolving spanner ids against
                // the rebuilt graph) so the next wave's seeding still sees
                // the thin spots this wave exposed.
                let carried = outcome.certificates.iter().filter_map(|cert| {
                    let (u, v) = new_graph.edge(cert.input_edge).endpoints();
                    Some(EdgeCertificate {
                        input_edge: cert.input_edge,
                        spanner_edge: fixed.spanner.edge_between(u, v)?,
                        cut: cert.cut.clone(),
                    })
                });
                fixed.certificates.extend(carried);
                outcome = fixed;
            }
        }

        // 6. Install the new state.
        let mut certificates =
            translate_certificates(&self.certificates, &old_graph, &new_graph, &outcome.spanner);
        certificates.extend(outcome.certificates);
        self.certificates = certificates;
        self.graph = new_graph;
        self.spanner = outcome.spanner;
        self.wave_scratch = scratch;
        self.invalidate_serving_state();
        self.metrics.record_wave(edges_added as u64, escalated);

        WaveOutcome {
            wave: wave.clone(),
            broken_pairs,
            candidates: candidates.len(),
            edges_added,
            escalated,
            surviving_spanner_edges,
            elapsed: start.elapsed(),
        }
    }

    /// Cumulative permanently-failed vertices.
    #[must_use]
    pub fn damaged_vertices(&self) -> &[VertexId] {
        &self.damage_vertices
    }

    /// Cumulative permanently-failed edges, by endpoints in the base graph.
    #[must_use]
    pub fn damaged_edges(&self) -> &[(VertexId, VertexId)] {
        &self.damage_edges
    }

    /// Seeds contributed by LBC certificates whose cut the wave intersects:
    /// the endpoints of edges whose redundancy the damage just consumed.
    fn certificate_seeds(&self, wave: &FaultSet) -> Vec<VertexId> {
        // Edge-model certificate cuts hold *spanner* edge ids; translate the
        // wave (graph ids) into that space before intersecting.
        let wave_for_certs = match wave {
            FaultSet::Vertices(_) => wave.clone(),
            FaultSet::Edges(_) => wave.translate_edges(&self.graph, &self.spanner),
        };
        let touched = certificates_touching(&self.certificates, &wave_for_certs);
        let edges: Vec<EdgeId> = touched.iter().map(|c| c.input_edge).collect();
        candidate_endpoints(&self.graph, &edges)
    }

    fn record_damage(&mut self, wave: &FaultSet) {
        match wave {
            FaultSet::Vertices(vs) => {
                for &v in vs {
                    if v.index() < self.base_graph.vertex_count()
                        && !self.damage_vertices.contains(&v)
                    {
                        self.damage_vertices.push(v);
                    }
                }
            }
            FaultSet::Edges(es) => {
                for &e in es {
                    if let Some(edge) = self.graph.get_edge(e) {
                        let (u, v) = edge.endpoints();
                        let key = if u <= v { (u, v) } else { (v, u) };
                        if !self.damage_edges.contains(&key) {
                            self.damage_edges.push(key);
                        }
                    }
                }
            }
        }
    }

    /// The base graph minus all accumulated damage, on the same vertex set
    /// (failed vertices become isolated).
    fn materialize_effective_graph(&self) -> Graph {
        let mut dead = vec![false; self.base_graph.vertex_count()];
        for &v in &self.damage_vertices {
            dead[v.index()] = true;
        }
        let dead_edges: HashSet<(u32, u32)> = self
            .damage_edges
            .iter()
            .map(|&(u, v)| (u.as_u32(), v.as_u32()))
            .collect();
        let mut out =
            Graph::with_capacity(self.base_graph.vertex_count(), self.base_graph.edge_count());
        for (_, edge) in self.base_graph.edges() {
            let (u, v) = edge.endpoints();
            if dead[u.index()] || dead[v.index()] {
                continue;
            }
            let key = if u <= v {
                (u.as_u32(), v.as_u32())
            } else {
                (v.as_u32(), u.as_u32())
            };
            if dead_edges.contains(&key) {
                continue;
            }
            out.add_edge(u.index(), v.index(), edge.weight());
        }
        out.compact();
        out
    }

    /// The current spanner minus the wave's elements.
    fn surviving_spanner(&self, wave: &FaultSet) -> Graph {
        let mut out = Graph::with_capacity(self.spanner.vertex_count(), self.spanner.edge_count());
        for (_, edge) in self.spanner.edges() {
            let (u, v) = edge.endpoints();
            let killed = match wave {
                FaultSet::Vertices(vs) => vs.contains(&u) || vs.contains(&v),
                FaultSet::Edges(es) => es.iter().any(|&e| {
                    self.graph
                        .get_edge(e)
                        .map(|ge| {
                            let (a, b) = ge.endpoints();
                            (a == u && b == v) || (a == v && b == u)
                        })
                        .unwrap_or(false)
                }),
            };
            if !killed {
                out.add_edge(u.index(), v.index(), edge.weight());
            }
        }
        out.compact();
        out
    }
}

/// Backend-agnostic summary of one wave application — the shape
/// [`SpannerOracle::apply_wave`](crate::SpannerOracle::apply_wave) reports,
/// so generic callers (most importantly the
/// [`OracleService`](crate::service::OracleService) front-end) see one wave
/// vocabulary over both backends. Backend-specific detail stays on the
/// concrete outcomes ([`WaveOutcome`], [`ShardWaveOutcome`]).
#[derive(Clone, Debug)]
pub struct WaveReport {
    /// The repair outcome of the oracle whose churn loop carries the
    /// provable guarantees (the single oracle itself, or the sharded
    /// backend's global oracle).
    pub outcome: WaveOutcome,
    /// Admission lanes whose serving state (and therefore caches) the wave
    /// rebuilt. The single oracle is one lane and every wave rebuilds it;
    /// a sharded backend lists exactly the wave-touched shards. The
    /// front-end uses this to shed or queue traffic headed for a region
    /// that is mid-rebuild. Note the lane list covers *shard* regions
    /// only: a sharded backend drops every lazily-stitched pair region on
    /// every wave, so the first cross-shard query afterwards pays a pair
    /// rebuild even when neither endpoint's lane appears here.
    pub rebuilt_lanes: Vec<usize>,
    /// Shard pairs whose portals the wave completely severed (always empty
    /// for the single oracle) — see [`ShardWaveOutcome::severed_pairs`].
    pub severed_pairs: Vec<(u32, u32)>,
}

impl WaveReport {
    /// A deterministic FNV-1a-64 digest of everything the wave *decided*:
    /// the wave itself, the broken pairs, candidate/added/surviving edge
    /// counts, the escalation flag, the rebuilt lanes, and the severed
    /// pairs. Two oracles that started from identical state and applied the
    /// same wave produce the same digest — this is what the replication
    /// tier's [`WaveJournal`](crate::replication::WaveJournal) records per
    /// entry, so a diverging replica is caught *at the entry that
    /// diverged*, not at the next full snapshot comparison.
    ///
    /// [`WaveOutcome::elapsed`] is deliberately excluded: wall-clock time
    /// is machine-local and must never enter a cross-machine determinism
    /// contract.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut w = WireWriter::new();
        encode_fault_set(&self.outcome.wave, &mut w);
        w.put_len(self.outcome.broken_pairs.len());
        for &(u, v) in &self.outcome.broken_pairs {
            w.put_u32(u.as_u32());
            w.put_u32(v.as_u32());
        }
        w.put_len(self.outcome.candidates);
        w.put_len(self.outcome.edges_added);
        w.put_u8(u8::from(self.outcome.escalated));
        w.put_len(self.outcome.surviving_spanner_edges);
        w.put_len(self.rebuilt_lanes.len());
        for &lane in &self.rebuilt_lanes {
            w.put_len(lane);
        }
        w.put_len(self.severed_pairs.len());
        for &(a, b) in &self.severed_pairs {
            w.put_u32(a);
            w.put_u32(b);
        }
        fnv1a64(w.as_slice())
    }
}

/// What one [`ShardedOracle::apply_wave`] call did.
#[derive(Clone, Debug)]
pub struct ShardWaveOutcome {
    /// The global repair outcome (the wave is applied to the global oracle
    /// first; its localized repair carries the provable guarantees).
    pub global: WaveOutcome,
    /// Shards whose region changed (membership or induced edges) and were
    /// therefore rebuilt from the repaired spanner. Shards the wave did not
    /// touch keep their oracle — and its cached trees — untouched.
    pub rebuilt_shards: Vec<usize>,
    /// Shard pairs that were adjacent (had cut edges) before the wave and
    /// have none afterwards: the wave severed every portal between them, so
    /// cross-shard queries between those shards now certify through wider
    /// detours or fall back to the global oracle.
    pub severed_pairs: Vec<(u32, u32)>,
}

impl ShardedOracle {
    /// Applies a permanent fault wave and fans the repair out across the
    /// shards.
    ///
    /// The wave first goes through the global oracle's churn loop
    /// ([`FaultOracle::apply_wave`]): localized certificate-seeded repair
    /// with full-respan escalation, which restores the `f`-fault-tolerant
    /// spanner property. The fan-out then recomputes every shard's region
    /// membership and signature against the repaired spanner and rebuilds
    /// **only the regions the wave actually changed** — repair work stays
    /// proportional to the damaged area, and a wave confined to one shard
    /// leaves every other shard's cached trees valid (their epochs do not
    /// move). Pair regions are dropped and rebuilt lazily on demand.
    pub fn apply_wave(&mut self, wave: &FaultSet, config: &ChurnConfig) -> ShardWaveOutcome {
        let pairs_before = self.boundary.adjacent_pairs();
        let global = self.global.apply_wave(wave, config);

        self.boundary = BoundaryIndex::build(self.global.spanner(), &self.plan);
        let severed_pairs = {
            let after: HashSet<(u32, u32)> = self.boundary.adjacent_pairs().into_iter().collect();
            pairs_before
                .into_iter()
                .filter(|p| !after.contains(p))
                .collect()
        };

        let mut rebuilt_shards = Vec::new();
        // A region interned behind several shards must fold its retired
        // counters exactly once, even though every sharing shard walks this
        // loop and replaces its handle.
        let mut folded: Vec<*const Region> = Vec::new();
        for shard in 0..self.plan.shard_count() {
            let members = self.global.spanner().halo_members_with(
                &mut self.wave_bfs,
                self.plan.core(shard),
                self.halo_radius,
            );
            let signature = region_signature(self.global.graph(), self.global.spanner(), &members);
            if signature == self.regions[shard].signature {
                continue;
            }
            // The rebuilt region starts with fresh metrics; fold the retired
            // oracle's counters into the lifetime cache statistics first.
            let retired_ptr = std::sync::Arc::as_ptr(&self.regions[shard]);
            if !folded.contains(&retired_ptr) {
                folded.push(retired_ptr);
                let retired = self.regions[shard].oracle.metrics().snapshot();
                self.retired_cache_stats.0 += retired.cache_hits;
                self.retired_cache_stats.1 += retired.trees_built;
            }
            // Sibling dedup on the rebuild path: a live region that already
            // matches the new signature and member set (typically one this
            // same wave just rebuilt for a sibling shard) is shared instead
            // of re-extracted.
            let shared = self
                .regions
                .iter()
                .enumerate()
                .find(|&(other, r)| {
                    other != shard
                        && r.signature == signature
                        && r.remap.members() == members.as_slice()
                })
                .map(|(_, r)| std::sync::Arc::clone(r));
            self.regions[shard] = shared.unwrap_or_else(|| {
                std::sync::Arc::new(Region::build(
                    self.global.graph(),
                    self.global.spanner(),
                    self.global.params(),
                    &self.options.oracle,
                    shard_namespace(shard),
                    &members,
                ))
            });
            self.shard_epochs[shard] += 1;
            rebuilt_shards.push(shard);
        }
        {
            let mut pairs = self
                .pair_regions
                .lock()
                .expect("pair region cache poisoned");
            for region in pairs.values() {
                // A pair interned to a leaf region stays live through the
                // leaf's handle (and a leaf already folded above must not be
                // folded twice): only genuinely retired allocations count.
                let ptr = std::sync::Arc::as_ptr(region);
                if folded.contains(&ptr)
                    || self
                        .regions
                        .iter()
                        .any(|r| std::sync::Arc::ptr_eq(r, region))
                {
                    continue;
                }
                folded.push(ptr);
                let retired = region.oracle.metrics().snapshot();
                self.retired_cache_stats.0 += retired.cache_hits;
                self.retired_cache_stats.1 += retired.trees_built;
            }
            pairs.clear();
        }
        self.metrics.record_wave();

        ShardWaveOutcome {
            global,
            rebuilt_shards,
            severed_pairs,
        }
    }
}

/// Checks the Lemma-3 pairs (surviving graph edges) whose endpoints lie
/// within `radius` hops of a seed: a pair is broken when
/// `d_{H'}(u, v) > (2k − 1) · w(u, v)` (with the usual weighted restriction
/// to edges that are themselves shortest paths).
///
/// All shortest-path state runs on the pooled [`WaveScratch`]: the Dial
/// lane for unit-weight graphs, epoch-stamped per-source distance caches
/// instead of per-wave hash maps of cloned trees. The reported pairs are
/// identical to a from-scratch computation.
fn detect_broken_pairs(
    graph: &Graph,
    spanner: &Graph,
    stretch: f64,
    seeds: &[VertexId],
    radius: u32,
    scratch: &mut WaveScratch,
) -> Vec<(VertexId, VertexId)> {
    let near = scratch
        .bfs
        .multi_source_hop_distances(graph, seeds.iter().copied(), radius);

    scratch.spanner_dist.begin(graph.vertex_count());
    scratch.graph_dist.begin(graph.vertex_count());
    let mut broken = Vec::new();
    for (_, edge) in graph.edges() {
        let (u, v) = edge.endpoints();
        if near[u.index()].is_none() && near[v.index()].is_none() {
            continue;
        }
        // Weighted Lemma-3 restriction: only edges that are shortest paths
        // in G' constrain the spanner.
        if !graph.is_unit_weighted() {
            let dist = scratch.graph_dist.get(&mut scratch.dijkstra, graph, u);
            if dist[v.index()] + 1e-9 < edge.weight() {
                continue;
            }
        }
        let dist = scratch.spanner_dist.get(&mut scratch.dijkstra, spanner, u);
        if dist[v.index()] > stretch * edge.weight() + 1e-9 {
            broken.push((u, v));
        }
    }
    broken
}

/// Carries certificates across a rematerialization by re-resolving their
/// edges by endpoints. Certificates whose edge vanished, and edge-model cuts
/// (whose ids are only meaningful against the old spanner), are dropped.
fn translate_certificates(
    certificates: &[EdgeCertificate],
    old_graph: &Graph,
    new_graph: &Graph,
    new_spanner: &Graph,
) -> Vec<EdgeCertificate> {
    certificates
        .iter()
        .filter_map(|cert| {
            if matches!(cert.cut, FaultSet::Edges(_)) {
                return None;
            }
            let (u, v) = old_graph.get_edge(cert.input_edge)?.endpoints();
            let input_edge = new_graph.edge_between(u, v)?;
            let spanner_edge = new_spanner.edge_between(u, v)?;
            Some(EdgeCertificate {
                input_edge,
                spanner_edge,
                cut: cert.cut.clone(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleOptions;
    use ftspan::verify::{verify_spanner, VerificationMode};
    use ftspan::SpannerParams;
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn churn_oracle(seed: u64) -> FaultOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(40, 0.2, &mut rng);
        FaultOracle::build(graph, SpannerParams::vertex(2, 1), OracleOptions::default())
    }

    #[test]
    fn wave_removes_elements_from_the_effective_graph() {
        let mut oracle = churn_oracle(41);
        let before_edges = oracle.graph().edge_count();
        let victim = vid(5);
        let degree = oracle.graph().degree(victim);
        assert!(degree > 0);
        let outcome = oracle.apply_wave(&FaultSet::vertices([victim]), &ChurnConfig::default());
        assert_eq!(oracle.graph().edge_count(), before_edges - degree);
        assert_eq!(oracle.graph().degree(victim), 0);
        assert_eq!(oracle.damaged_vertices(), &[victim]);
        assert_eq!(outcome.wave, FaultSet::vertices([victim]));
        assert_eq!(oracle.epoch(), 1);
    }

    #[test]
    fn repaired_spanner_is_valid_for_the_damaged_graph() {
        let mut oracle = churn_oracle(42);
        // Hit it with a wave larger than the design tolerance f = 1.
        let wave = FaultSet::vertices([vid(2), vid(9), vid(17)]);
        let _ = oracle.apply_wave(&wave, &ChurnConfig::default());
        let report = verify_spanner(
            oracle.graph(),
            oracle.spanner(),
            oracle.params(),
            VerificationMode::Sampled {
                samples: 30,
                seed: 5,
            },
        );
        assert!(report.is_valid(), "violations: {:?}", report.violations);
        assert!(oracle.spanner().is_edge_subgraph_of(oracle.graph()));
    }

    #[test]
    fn edge_waves_translate_by_endpoints() {
        let mut oracle = churn_oracle(43);
        let (edge_id, edge) = oracle.graph().edges().next().map(|(i, e)| (i, *e)).unwrap();
        let (u, v) = edge.endpoints();
        let _ = oracle.apply_wave(&FaultSet::edges([edge_id]), &ChurnConfig::default());
        assert!(oracle.graph().edge_between(u, v).is_none());
        assert!(oracle.spanner().edge_between(u, v).is_none());
        assert_eq!(oracle.damaged_edges().len(), 1);
    }

    #[test]
    fn queries_after_waves_serve_the_surviving_graph() {
        let mut oracle = churn_oracle(44);
        let wave = FaultSet::vertices([vid(3), vid(11)]);
        let _ = oracle.apply_wave(&wave, &ChurnConfig::default());
        let empty = FaultSet::empty(ftspan::FaultModel::Vertex);
        // Failed vertices answer None against live ones.
        assert_eq!(oracle.distance(vid(3), vid(0), &empty), None);
        // Live pairs still answer, within the stretch bound of the damaged
        // graph.
        let view = ftspan_graph::FaultView::new(oracle.graph());
        let live: Vec<VertexId> = (0..oracle.graph().vertex_count())
            .map(vid)
            .filter(|&x| x != vid(3) && x != vid(11) && view.graph().degree(x) > 0)
            .collect();
        let (a, b) = (live[0], live[1]);
        if let Some(d_g) = ftspan_graph::dijkstra::weighted_distance(oracle.graph(), a, b) {
            let d_h = oracle
                .distance(a, b, &empty)
                .expect("spanner keeps connectivity");
            assert!(d_h <= oracle.stretch_bound() * d_g + 1e-9);
        }
    }

    #[test]
    fn waves_invalidate_the_cache() {
        let mut oracle = churn_oracle(45);
        let faults = FaultSet::vertices([vid(6)]);
        let _ = oracle.distance(vid(0), vid(1), &faults);
        let hit = oracle.answer(&crate::Query::distance(vid(0), vid(1), faults.clone()));
        assert!(hit.cache_hit);
        let _ = oracle.apply_wave(&FaultSet::vertices([vid(20)]), &ChurnConfig::default());
        let miss = oracle.answer(&crate::Query::distance(vid(0), vid(1), faults));
        assert!(!miss.cache_hit, "cache must be cleared by a wave");
    }

    #[test]
    fn many_rounds_of_churn_keep_the_oracle_healthy() {
        let mut oracle = churn_oracle(46);
        let mut rng = StdRng::seed_from_u64(99);
        let config = ChurnConfig {
            verify_samples: 12,
            ..ChurnConfig::default()
        };
        for round in 0..6 {
            let wave = ftspan::sample_fault_set(
                oracle.graph(),
                ftspan::FaultModel::Vertex,
                2,
                &[],
                &mut rng,
            );
            let outcome = oracle.apply_wave(&wave, &config);
            assert!(outcome.elapsed.as_secs() < 60, "round {round} too slow");
            let report = verify_spanner(
                oracle.graph(),
                oracle.spanner(),
                oracle.params(),
                VerificationMode::Sampled {
                    samples: 10,
                    seed: round,
                },
            );
            assert!(report.is_valid(), "round {round}: {:?}", report.violations);
        }
        assert_eq!(oracle.metrics().snapshot().waves_applied, 6);
    }

    #[test]
    fn sharded_wave_rebuilds_only_touched_regions() {
        // Two cliques joined by a long path: damage inside clique A is far
        // (more than the halo radius) from clique B's region.
        let g = {
            let cliques = 2usize;
            let size = 6usize;
            let path_len = 14usize;
            let n = cliques * size + path_len;
            let mut g = Graph::new(n);
            for c in 0..cliques {
                for i in 0..size {
                    for j in (i + 1)..size {
                        g.add_unit_edge(c * size + i, c * size + j);
                    }
                }
            }
            // Path: clique A's vertex 0 … chain … clique B's vertex 6.
            let chain_start = cliques * size;
            let mut prev = 0usize;
            for p in 0..path_len {
                g.add_unit_edge(prev, chain_start + p);
                prev = chain_start + p;
            }
            g.add_unit_edge(prev, size); // into clique B
            g
        };
        let n = g.vertex_count();
        // Shard 0: clique A + first half of the chain; shard 1: the rest.
        let shard_of: Vec<u32> = (0..n)
            .map(|i| u32::from(!(i < 6 || (12..19).contains(&i))))
            .collect();
        let plan = crate::ShardPlan::from_shard_of(shard_of);
        let mut oracle = crate::ShardedOracle::build_with_plan(
            g,
            SpannerParams::vertex(2, 1),
            plan,
            crate::ShardedOptions::default(),
        );

        // Warm shard 1's cache with a local query.
        let faults = FaultSet::vertices([vid(7)]);
        let _ = oracle.distance(vid(6), vid(8), &faults);
        let warm = oracle.answer(&crate::Query::distance(vid(6), vid(8), faults.clone()));
        assert!(warm.cache_hit);
        let epochs_before = oracle.shard_epochs().to_vec();

        // A wave deep inside clique A: far outside shard 1's halo.
        let outcome = oracle.apply_wave(&FaultSet::vertices([vid(2)]), &ChurnConfig::default());
        assert!(outcome.rebuilt_shards.contains(&0));
        assert!(
            !outcome.rebuilt_shards.contains(&1),
            "wave confined to shard 0 must not rebuild shard 1"
        );
        assert_eq!(oracle.shard_epochs()[1], epochs_before[1]);
        assert!(oracle.shard_epochs()[0] > epochs_before[0]);

        // Shard 1's cached trees are still live after the wave.
        let still_warm = oracle.answer(&crate::Query::distance(vid(6), vid(8), faults));
        assert!(
            still_warm.cache_hit,
            "untouched shard must keep its cached trees"
        );

        // And the sharded oracle still answers exactly like its global one.
        let empty = FaultSet::empty(ftspan::FaultModel::Vertex);
        for (u, v) in [(0usize, 8usize), (3, 25), (13, 20)] {
            assert_eq!(
                oracle.distance(vid(u), vid(v), &empty),
                oracle.global().distance(vid(u), vid(v), &empty)
            );
        }
    }

    #[test]
    fn detect_broken_pairs_flags_destroyed_detours() {
        // Cycle C6: spanner = the cycle minus one edge is NOT a valid
        // 3-spanner; detection around the removed edge's endpoints sees it.
        let g = generators::cycle(6);
        let spanner = g.edge_subgraph(g.edge_ids().take(5));
        let seeds = vec![vid(0), vid(5)];
        let mut scratch = WaveScratch::default();
        let broken = detect_broken_pairs(&g, &spanner, 3.0, &seeds, 2, &mut scratch);
        assert!(broken.contains(&(vid(5), vid(0))) || broken.contains(&(vid(0), vid(5))));
        // With the full cycle as spanner nothing is broken.
        assert!(detect_broken_pairs(&g, &g, 3.0, &seeds, 2, &mut scratch).is_empty());
    }
}
