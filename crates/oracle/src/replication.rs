//! Deterministic state-machine replication: the wave journal and
//! snapshot-bootstrapped read replicas.
//!
//! Every serving layer in this workspace is pinned to **bit-identical
//! answers**, and [`apply_wave`](crate::SpannerOracle::apply_wave) is a
//! deterministic function of the oracle's state and the wave. That is the
//! whole replication protocol: replicas that apply the same ordered wave
//! log converge to byte-identical snapshots — determinism replaces
//! coordination, so read scaling needs no consensus, only an ordered
//! journal.
//!
//! * A [`WaveJournal`] is the append-only log the primary's wave writer
//!   feeds **atomically with epoch publication** (see
//!   [`OracleService`](crate::OracleService): the entry is appended while
//!   the wave writer still holds the epoch slot, so no reader can observe
//!   an epoch whose journal entry is missing). Each [`JournalEntry`]
//!   carries the epoch the wave published, the wave itself, and the
//!   [`WaveReport::digest`] of what applying it decided.
//! * A [`Replica`] bootstraps from a [`Snapshot`] (any epoch at or past
//!   the journal's base), replays entries through `apply_wave`, and checks
//!   every entry's report digest — divergence is detected *at the entry
//!   that caused it* ([`ReplicationError::Divergence`]), not at the next
//!   full-state comparison.
//!
//! ## Journal wire format
//!
//! ```text
//! magic "FTSPANWJ" (8) · version u32 · base_epoch u64 · count u64 ·
//! count × entry
//! entry := epoch u64 · fault_set · report_digest u64 ·
//!          checksum u64 (FNV-1a-64 of the entry's preceding bytes)
//! ```
//!
//! Entries reuse the [`ftspan::wire`] fault-set codec and are individually
//! FNV-1a-checksummed, so a journal truncated or corrupted in storage or
//! transit fails at the damaged entry with a typed error, never a panic.

use ftspan::wire::{decode_fault_set, encode_fault_set};
use ftspan::FaultSet;
use ftspan_graph::wire::{fnv1a64, WireError, WireReader, WireWriter};

use crate::churn::{ChurnConfig, WaveReport};
use crate::snapshot::{Snapshot, SnapshotError, Snapshottable};
use crate::traits::SpannerOracle;

/// Errors produced by the replication tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationError {
    /// The bytes do not start with the journal magic.
    BadMagic,
    /// The journal was written by an unknown format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// An entry's FNV-1a checksum does not match its bytes.
    EntryChecksum {
        /// Zero-based index of the damaged entry.
        index: usize,
    },
    /// An entry does not continue the epoch sequence — the journal has a
    /// hole, or a replica was offered an entry it is not ready for.
    EpochGap {
        /// The epoch the sequence requires next.
        expected: u64,
        /// The epoch that was offered.
        found: u64,
    },
    /// Replaying an entry produced a different [`WaveReport::digest`] than
    /// the primary recorded: the replica's state has diverged, and this
    /// entry is where it became observable.
    Divergence {
        /// The epoch of the diverging entry.
        epoch: u64,
        /// The digest the primary recorded.
        expected: u64,
        /// The digest the replica computed.
        found: u64,
    },
    /// The bootstrap snapshot failed to restore.
    Snapshot(SnapshotError),
    /// The journal bytes failed structural decoding.
    Wire(WireError),
}

impl core::fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not an ftspan wave journal (bad magic)"),
            Self::UnsupportedVersion { found } => write!(
                f,
                "unsupported journal version {found} (this build reads version {})",
                WaveJournal::VERSION
            ),
            Self::EntryChecksum { index } => {
                write!(f, "journal entry {index} failed its checksum")
            }
            Self::EpochGap { expected, found } => write!(
                f,
                "journal epoch gap: expected epoch {expected}, found {found}"
            ),
            Self::Divergence {
                epoch,
                expected,
                found,
            } => write!(
                f,
                "replica diverged at epoch {epoch}: report digest {found:#018x} \
                 != primary's {expected:#018x}"
            ),
            Self::Snapshot(e) => write!(f, "bootstrap snapshot failed: {e}"),
            Self::Wire(e) => write!(f, "journal bytes malformed: {e}"),
        }
    }
}

impl std::error::Error for ReplicationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Snapshot(e) => Some(e),
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ReplicationError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<SnapshotError> for ReplicationError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// One committed wave: the epoch it published, the wave itself, and the
/// digest of the [`WaveReport`] applying it produced on the primary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// The backend epoch *after* this wave was applied (entries of a
    /// journal based at `B` carry epochs `B+1, B+2, …` with no holes).
    pub epoch: u64,
    /// The permanent fault wave.
    pub wave: FaultSet,
    /// [`WaveReport::digest`] of the primary's apply — what a replica must
    /// reproduce bit-for-bit when it replays this entry.
    pub report_digest: u64,
}

/// Encodes one journal entry onto `w`: epoch, wave, report digest, then an
/// FNV-1a-64 checksum of those bytes.
pub fn encode_journal_entry(entry: &JournalEntry, w: &mut WireWriter) {
    let start = w.len();
    w.put_u64(entry.epoch);
    encode_fault_set(&entry.wave, &mut *w);
    w.put_u64(entry.report_digest);
    let checksum = fnv1a64(&w.as_slice()[start..]);
    w.put_u64(checksum);
}

/// Decodes one journal entry, verifying its checksum. `index` is the
/// entry's position, used only to label a checksum failure.
pub fn decode_journal_entry(
    r: &mut WireReader<'_>,
    index: usize,
) -> Result<JournalEntry, ReplicationError> {
    let entry = JournalEntry {
        epoch: r.u64()?,
        wave: decode_fault_set(r)?,
        report_digest: r.u64()?,
    };
    // The fault-set codec is canonical (constructors sort + dedup), so
    // re-encoding the decoded entry reproduces the writer's bytes exactly;
    // any mismatch — including non-canonical bytes smuggled onto the wire —
    // reads as corruption.
    let mut scratch = WireWriter::new();
    scratch.put_u64(entry.epoch);
    encode_fault_set(&entry.wave, &mut scratch);
    scratch.put_u64(entry.report_digest);
    if r.u64()? != fnv1a64(scratch.as_slice()) {
        return Err(ReplicationError::EntryChecksum { index });
    }
    Ok(entry)
}

/// The append-only, epoch-continuous log of committed waves. See the
/// [module docs](self) for the wire format and the replication contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveJournal {
    base_epoch: u64,
    entries: Vec<JournalEntry>,
}

impl WaveJournal {
    /// The magic bytes every encoded journal starts with.
    pub const MAGIC: [u8; 8] = *b"FTSPANWJ";
    /// The format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// An empty journal whose first entry will publish `base_epoch + 1`.
    #[must_use]
    pub fn new(base_epoch: u64) -> Self {
        Self {
            base_epoch,
            entries: Vec::new(),
        }
    }

    /// The epoch of the state the journal starts after; a snapshot at this
    /// epoch (or any later one still covered) can bootstrap from it.
    #[must_use]
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// The epoch of the newest entry (`base_epoch` when empty).
    #[must_use]
    pub fn head_epoch(&self) -> u64 {
        self.base_epoch + self.entries.len() as u64
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no wave has been journaled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every entry, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Appends the next committed wave. The entry must continue the epoch
    /// sequence exactly (`head_epoch() + 1`).
    ///
    /// # Errors
    ///
    /// [`ReplicationError::EpochGap`] when it does not.
    pub fn append(&mut self, entry: JournalEntry) -> Result<(), ReplicationError> {
        let expected = self.head_epoch() + 1;
        if entry.epoch != expected {
            return Err(ReplicationError::EpochGap {
                expected,
                found: entry.epoch,
            });
        }
        self.entries.push(entry);
        Ok(())
    }

    /// The entries a follower at `epoch` still has to apply, oldest first
    /// — or `None` when `epoch` predates [`WaveJournal::base_epoch`] (the
    /// journal cannot serve the gap; re-bootstrap from a fresh snapshot).
    #[must_use]
    pub fn entries_since(&self, epoch: u64) -> Option<&[JournalEntry]> {
        if epoch < self.base_epoch {
            return None;
        }
        let skip = usize::try_from(epoch - self.base_epoch).unwrap_or(usize::MAX);
        Some(
            self.entries
                .get(skip.min(self.entries.len())..)
                .unwrap_or(&[]),
        )
    }

    /// Serializes the journal (header plus checksummed entries).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(32 + self.entries.len() * 48);
        for b in Self::MAGIC {
            w.put_u8(b);
        }
        w.put_u32(Self::VERSION);
        w.put_u64(self.base_epoch);
        w.put_len(self.entries.len());
        for entry in &self.entries {
            encode_journal_entry(entry, &mut w);
        }
        w.into_vec()
    }

    /// Deserializes a journal written by [`WaveJournal::encode`],
    /// re-validating every entry checksum and the epoch continuity.
    ///
    /// # Errors
    ///
    /// Typed [`ReplicationError`]s for foreign magic, unknown versions,
    /// malformed bytes, damaged entries, and epoch holes.
    pub fn decode(bytes: &[u8]) -> Result<Self, ReplicationError> {
        let mut r = WireReader::new(bytes);
        if r.take(8)? != Self::MAGIC {
            return Err(ReplicationError::BadMagic);
        }
        let version = r.u32()?;
        if version != Self::VERSION {
            return Err(ReplicationError::UnsupportedVersion { found: version });
        }
        let base_epoch = r.u64()?;
        let count = r.len(24)?;
        let mut journal = Self::new(base_epoch);
        journal.entries.reserve(count);
        for index in 0..count {
            journal.append(decode_journal_entry(&mut r, index)?)?;
        }
        r.finish()?;
        Ok(journal)
    }
}

/// A follower: an oracle bootstrapped from a snapshot that replays journal
/// entries through [`apply_wave`](crate::SpannerOracle::apply_wave),
/// asserting every entry's report digest.
///
/// The replica must replay with the **same** [`ChurnConfig`] the primary
/// applies waves under — the repair decisions (and therefore the digests
/// and the converged state) are a function of it.
#[derive(Debug)]
pub struct Replica<O> {
    oracle: O,
    churn: ChurnConfig,
    entries_applied: u64,
}

impl<O: SpannerOracle + Snapshottable> Replica<O> {
    /// Bootstraps a replica from snapshot bytes (a `SNAPSHOT` download, a
    /// [`Snapshot::capture`], or a warm-restart file).
    ///
    /// # Errors
    ///
    /// [`ReplicationError::Snapshot`] when the bytes fail to restore.
    pub fn bootstrap(snapshot: &[u8], churn: ChurnConfig) -> Result<Self, ReplicationError> {
        Ok(Self::from_oracle(Snapshot::restore::<O>(snapshot)?, churn))
    }

    /// Wraps an already-restored (or freshly built, for an epoch-0 journal)
    /// oracle as a replica.
    #[must_use]
    pub fn from_oracle(oracle: O, churn: ChurnConfig) -> Self {
        Self {
            oracle,
            churn,
            entries_applied: 0,
        }
    }

    /// The replica's current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.oracle.epoch()
    }

    /// Read access to the replica's oracle — this is what serves reads.
    #[must_use]
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// Dissolves the replica and returns its oracle (promotion hands this
    /// to a primary-role service).
    #[must_use]
    pub fn into_oracle(self) -> O {
        self.oracle
    }

    /// How many journal entries this replica has replayed.
    #[must_use]
    pub fn entries_applied(&self) -> u64 {
        self.entries_applied
    }

    /// How many entries the replica is behind `journal`'s head.
    #[must_use]
    pub fn lag(&self, journal: &WaveJournal) -> u64 {
        journal.head_epoch().saturating_sub(self.epoch())
    }

    /// Replays one entry: checks epoch continuity, applies the wave, and
    /// asserts the report digest against the primary's.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::EpochGap`] when the entry is not the next one;
    /// [`ReplicationError::Divergence`] when the digest mismatches. The
    /// wave *has been applied* when divergence is reported — the replica
    /// must be considered corrupt and re-bootstrapped.
    pub fn apply_entry(&mut self, entry: &JournalEntry) -> Result<WaveReport, ReplicationError> {
        let expected = self.epoch() + 1;
        if entry.epoch != expected {
            return Err(ReplicationError::EpochGap {
                expected,
                found: entry.epoch,
            });
        }
        let report = self.oracle.apply_wave(&entry.wave, &self.churn);
        let found = report.digest();
        if found != entry.report_digest {
            return Err(ReplicationError::Divergence {
                epoch: entry.epoch,
                expected: entry.report_digest,
                found,
            });
        }
        self.entries_applied += 1;
        Ok(report)
    }

    /// Replays every entry past the replica's epoch, skipping entries it
    /// has already applied. Returns how many entries were applied.
    ///
    /// # Errors
    ///
    /// See [`Replica::apply_entry`]; stops at the first failing entry.
    pub fn catch_up<'a>(
        &mut self,
        entries: impl IntoIterator<Item = &'a JournalEntry>,
    ) -> Result<usize, ReplicationError> {
        let mut applied = 0usize;
        for entry in entries {
            if entry.epoch <= self.epoch() {
                continue;
            }
            self.apply_entry(entry)?;
            applied += 1;
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FaultOracle, OracleOptions};
    use ftspan::SpannerParams;
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn oracle(seed: u64) -> FaultOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(24, 0.3, &mut rng);
        FaultOracle::build(graph, SpannerParams::vertex(2, 1), OracleOptions::default())
    }

    fn entry(epoch: u64, v: usize, digest: u64) -> JournalEntry {
        JournalEntry {
            epoch,
            wave: FaultSet::vertices([vid(v)]),
            report_digest: digest,
        }
    }

    #[test]
    fn journal_round_trips_and_rejects_gaps() {
        let mut journal = WaveJournal::new(3);
        journal.append(entry(4, 1, 0xAA)).unwrap();
        journal.append(entry(5, 2, 0xBB)).unwrap();
        assert_eq!(journal.head_epoch(), 5);
        assert!(matches!(
            journal.append(entry(7, 3, 0xCC)),
            Err(ReplicationError::EpochGap {
                expected: 6,
                found: 7
            })
        ));
        let decoded = WaveJournal::decode(&journal.encode()).unwrap();
        assert_eq!(decoded, journal);
        assert_eq!(decoded.entries_since(4).unwrap().len(), 1);
        assert_eq!(decoded.entries_since(5).unwrap().len(), 0);
        assert!(decoded.entries_since(2).is_none(), "pre-base gap");
    }

    #[test]
    fn corrupt_journal_bytes_fail_typed_at_the_damaged_entry() {
        let mut journal = WaveJournal::new(0);
        journal.append(entry(1, 1, 0x11)).unwrap();
        journal.append(entry(2, 2, 0x22)).unwrap();
        let mut bytes = journal.encode();
        assert!(matches!(
            WaveJournal::decode(&bytes[..10]),
            Err(ReplicationError::Wire(_))
        ));
        // Flip one byte inside the *second* entry's digest.
        let last_digest = bytes.len() - 16;
        bytes[last_digest] ^= 0x40;
        assert!(matches!(
            WaveJournal::decode(&bytes),
            Err(ReplicationError::EntryChecksum { index: 1 })
        ));
        let mut magic = journal.encode();
        magic[0] ^= 0xFF;
        assert!(matches!(
            WaveJournal::decode(&magic),
            Err(ReplicationError::BadMagic)
        ));
    }

    #[test]
    fn replica_replays_to_identical_snapshots() {
        let mut primary = oracle(9);
        let snapshot = Snapshot::capture(&primary);
        let churn = ChurnConfig::default();
        let mut journal = WaveJournal::new(primary.epoch());
        for v in [3usize, 11, 7] {
            let wave = FaultSet::vertices([vid(v)]);
            let report = crate::SpannerOracle::apply_wave(&mut primary, &wave, &churn);
            journal
                .append(JournalEntry {
                    epoch: primary.epoch(),
                    wave,
                    report_digest: report.digest(),
                })
                .unwrap();
        }
        let mut replica: Replica<FaultOracle> =
            Replica::bootstrap(&snapshot, churn.clone()).unwrap();
        let applied = replica
            .catch_up(journal.entries_since(replica.epoch()).unwrap())
            .unwrap();
        assert_eq!(applied, 3);
        assert_eq!(replica.epoch(), primary.epoch());
        assert_eq!(replica.lag(&journal), 0);
        assert_eq!(
            Snapshot::capture(replica.oracle()),
            Snapshot::capture(&primary),
            "replayed replica must re-capture byte-identically"
        );
    }

    #[test]
    fn divergence_is_caught_at_the_lying_entry() {
        let mut primary = oracle(10);
        let snapshot = Snapshot::capture(&primary);
        let churn = ChurnConfig::default();
        let wave = FaultSet::vertices([vid(5)]);
        let report = crate::SpannerOracle::apply_wave(&mut primary, &wave, &churn);
        let mut replica: Replica<FaultOracle> = Replica::bootstrap(&snapshot, churn).unwrap();
        let lying = JournalEntry {
            epoch: primary.epoch(),
            wave,
            report_digest: report.digest() ^ 1,
        };
        assert!(matches!(
            replica.apply_entry(&lying),
            Err(ReplicationError::Divergence { epoch, .. }) if epoch == primary.epoch()
        ));
        // And an out-of-order entry is a gap, checked before any apply.
        let skip = JournalEntry {
            epoch: primary.epoch() + 5,
            wave: FaultSet::vertices([vid(1)]),
            report_digest: 0,
        };
        assert!(matches!(
            replica.apply_entry(&skip),
            Err(ReplicationError::EpochGap { .. })
        ));
    }
}
