//! Serving metrics: lock-free counters the oracle updates on every query.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing an oracle's lifetime, safe to update from
/// every worker thread concurrently.
#[derive(Debug, Default)]
pub struct OracleMetrics {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    trees_built: AtomicU64,
    batches: AtomicU64,
    waves_applied: AtomicU64,
    repairs_escalated: AtomicU64,
    edges_added_by_repair: AtomicU64,
}

impl OracleMetrics {
    pub(crate) fn record_query(&self, cache_hit: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_tree_built(&self) {
        self.trees_built.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wave(&self, edges_added: u64, escalated: bool) {
        self.waves_applied.fetch_add(1, Ordering::Relaxed);
        self.edges_added_by_repair
            .fetch_add(edges_added, Ordering::Relaxed);
        if escalated {
            self.repairs_escalated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            trees_built: self.trees_built.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            waves_applied: self.waves_applied.load(Ordering::Relaxed),
            repairs_escalated: self.repairs_escalated.load(Ordering::Relaxed),
            edges_added_by_repair: self.edges_added_by_repair.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`OracleMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Total queries served (single and batched).
    pub queries: u64,
    /// Queries answered from a cached shortest-path tree.
    pub cache_hits: u64,
    /// Queries that had to compute a tree (or ran with caching disabled).
    pub cache_misses: u64,
    /// Shortest-path trees computed.
    pub trees_built: u64,
    /// Batch calls served.
    pub batches: u64,
    /// Fault waves applied through the churn loop.
    pub waves_applied: u64,
    /// Waves whose local repair had to escalate to a full respan.
    pub repairs_escalated: u64,
    /// Spanner edges added by repair across all waves.
    pub edges_added_by_repair: u64,
}

impl MetricsSnapshot {
    /// Fraction of queries served from cache (0 when nothing was served).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = OracleMetrics::default();
        m.record_query(true);
        m.record_query(false);
        m.record_query(true);
        m.record_tree_built();
        m.record_batch();
        m.record_wave(4, true);
        m.record_wave(0, false);
        let s = m.snapshot();
        assert_eq!(s.queries, 3);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.trees_built, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.waves_applied, 2);
        assert_eq!(s.repairs_escalated, 1);
        assert_eq!(s.edges_added_by_repair, 4);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_hit_rate_is_zero() {
        assert_eq!(OracleMetrics::default().snapshot().hit_rate(), 0.0);
    }
}
