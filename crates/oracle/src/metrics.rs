//! Serving metrics: lock-free counters the oracle updates on every query.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing an oracle's lifetime, safe to update from
/// every worker thread concurrently.
#[derive(Debug, Default)]
pub struct OracleMetrics {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    trees_built: AtomicU64,
    batches: AtomicU64,
    waves_applied: AtomicU64,
    repairs_escalated: AtomicU64,
    edges_added_by_repair: AtomicU64,
}

impl OracleMetrics {
    pub(crate) fn record_query(&self, cache_hit: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_tree_built(&self) {
        self.trees_built.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wave(&self, edges_added: u64, escalated: bool) {
        self.waves_applied.fetch_add(1, Ordering::Relaxed);
        self.edges_added_by_repair
            .fetch_add(edges_added, Ordering::Relaxed);
        if escalated {
            self.repairs_escalated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            trees_built: self.trees_built.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            waves_applied: self.waves_applied.load(Ordering::Relaxed),
            repairs_escalated: self.repairs_escalated.load(Ordering::Relaxed),
            edges_added_by_repair: self.edges_added_by_repair.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`OracleMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Total queries served (single and batched).
    pub queries: u64,
    /// Queries answered from a cached shortest-path tree.
    pub cache_hits: u64,
    /// Queries that had to compute a tree (or ran with caching disabled).
    pub cache_misses: u64,
    /// Shortest-path trees computed.
    pub trees_built: u64,
    /// Batch calls served.
    pub batches: u64,
    /// Fault waves applied through the churn loop.
    pub waves_applied: u64,
    /// Waves whose local repair had to escalate to a full respan.
    pub repairs_escalated: u64,
    /// Spanner edges added by repair across all waves.
    pub edges_added_by_repair: u64,
}

impl MetricsSnapshot {
    /// Fraction of queries served from cache (0 when nothing was served).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

/// The sharded locality split of a [`ServiceMetrics`] view: how routed
/// traffic was served. Present only for backends that route (the single
/// oracle has nothing to route).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocalitySplit {
    /// Queries answered from a single shard's region.
    pub local: u64,
    /// Cross-shard queries answered from a stitched pair region.
    pub stitched: u64,
    /// Queries that fell back to the global oracle.
    pub global_fallbacks: u64,
}

impl LocalitySplit {
    /// Fraction of routed queries served without touching the global
    /// oracle (0 when nothing was routed).
    #[must_use]
    pub fn locality_rate(&self) -> f64 {
        let total = self.local + self.stitched + self.global_fallbacks;
        if total == 0 {
            0.0
        } else {
            (self.local + self.stitched) as f64 / total as f64
        }
    }
}

/// The unified metrics view every serving surface reports — one shape for
/// dashboards regardless of backend or front-end.
///
/// [`MetricsSnapshot`] and
/// [`ShardedMetricsSnapshot`](crate::ShardedMetricsSnapshot) describe the
/// two backends in their own vocabulary; `ServiceMetrics` is the common
/// projection both map onto via
/// [`SpannerOracle::service_metrics`](crate::SpannerOracle::service_metrics).
/// Backend fields (`queries`, `cache_hits`, …) are filled by the oracle;
/// front-end fields (`submitted`, `coalesced`, `shed`, `rounds`) are zero
/// until an [`OracleService`](crate::service::OracleService) fills them in
/// from its own counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceMetrics {
    /// Queries the backend answered (single and batched).
    pub queries: u64,
    /// Queries served from a cached shortest-path tree. For a sharded
    /// backend this aggregates the global oracle, every shard region, and
    /// the live pair regions.
    pub cache_hits: u64,
    /// Shortest-path trees computed (same aggregation).
    pub trees_built: u64,
    /// Batch calls the backend served.
    pub batches: u64,
    /// Fault waves applied.
    pub waves: u64,
    /// How routed traffic was served; `None` for backends that do not
    /// route (the single oracle).
    pub locality: Option<LocalitySplit>,
    /// Requests submitted to the service front-end (including shed ones).
    pub submitted: u64,
    /// Requests the front-end completed with an answer.
    pub answered: u64,
    /// Duplicate requests coalesced away before reaching the backend.
    pub coalesced: u64,
    /// Requests shed by admission control (queue overflow or a lane
    /// mid-rebuild under the shed policy).
    pub shed: u64,
    /// Front-end pump rounds executed.
    pub rounds: u64,
    /// Total microseconds spent recovering from fault waves
    /// (submit-barrier drain, repair, and epoch publication included) —
    /// the cumulative degradation cost of churn.
    pub wave_recovery_micros: u64,
    /// Microseconds the most recent wave took to recover — what an
    /// operator watches during an incident.
    pub last_wave_recovery_micros: u64,
}

impl ServiceMetrics {
    /// Fraction of backend queries served from cache (0 when nothing was
    /// served).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Locality rate where applicable (`None` for non-routing backends).
    #[must_use]
    pub fn locality_rate(&self) -> Option<f64> {
        self.locality.as_ref().map(LocalitySplit::locality_rate)
    }

    /// Renders the metrics as Prometheus-style exposition text — the body
    /// the `ftspan-server` `METRICS` endpoint returns.
    ///
    /// The format is **stable** (pinned by a unit test): counters first, the
    /// derived gauges after, one `ftspan_lane_shed_total{lane="i"}` line per
    /// admission lane in `lane_shed`, and the locality block only for
    /// routing backends. Ratios are printed with six decimals; every line
    /// ends in `\n`.
    #[must_use]
    pub fn render_prometheus(&self, lane_shed: &[u64]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            &mut out,
            "ftspan_queries_total",
            "Queries the backend answered.",
            self.queries,
        );
        counter(
            &mut out,
            "ftspan_cache_hits_total",
            "Queries served from a cached shortest-path tree.",
            self.cache_hits,
        );
        counter(
            &mut out,
            "ftspan_trees_built_total",
            "Shortest-path trees computed.",
            self.trees_built,
        );
        counter(
            &mut out,
            "ftspan_batches_total",
            "Batch calls the backend served.",
            self.batches,
        );
        counter(
            &mut out,
            "ftspan_waves_total",
            "Fault waves applied.",
            self.waves,
        );
        counter(
            &mut out,
            "ftspan_submitted_total",
            "Requests submitted to the service front-end.",
            self.submitted,
        );
        counter(
            &mut out,
            "ftspan_answered_total",
            "Requests completed with an answer.",
            self.answered,
        );
        counter(
            &mut out,
            "ftspan_coalesced_total",
            "Duplicate requests coalesced before the backend.",
            self.coalesced,
        );
        counter(
            &mut out,
            "ftspan_shed_total",
            "Requests shed by admission control.",
            self.shed,
        );
        counter(
            &mut out,
            "ftspan_rounds_total",
            "Front-end pump rounds executed.",
            self.rounds,
        );
        counter(
            &mut out,
            "ftspan_wave_recovery_micros_total",
            "Microseconds spent recovering from fault waves.",
            self.wave_recovery_micros,
        );
        let _ = writeln!(
            out,
            "# HELP ftspan_last_wave_recovery_micros Recovery time of the most recent wave."
        );
        let _ = writeln!(out, "# TYPE ftspan_last_wave_recovery_micros gauge");
        let _ = writeln!(
            out,
            "ftspan_last_wave_recovery_micros {}",
            self.last_wave_recovery_micros
        );
        let _ = writeln!(
            out,
            "# HELP ftspan_lane_shed_total Requests shed per admission lane."
        );
        let _ = writeln!(out, "# TYPE ftspan_lane_shed_total counter");
        for (lane, &shed) in lane_shed.iter().enumerate() {
            let _ = writeln!(out, "ftspan_lane_shed_total{{lane=\"{lane}\"}} {shed}");
        }
        let _ = writeln!(
            out,
            "# HELP ftspan_cache_hit_ratio Fraction of queries served from cache."
        );
        let _ = writeln!(out, "# TYPE ftspan_cache_hit_ratio gauge");
        let _ = writeln!(out, "ftspan_cache_hit_ratio {:.6}", self.hit_rate());
        if let Some(split) = &self.locality {
            counter(
                &mut out,
                "ftspan_locality_local_total",
                "Queries answered from a single shard region.",
                split.local,
            );
            counter(
                &mut out,
                "ftspan_locality_stitched_total",
                "Cross-shard queries answered from a stitched pair region.",
                split.stitched,
            );
            counter(
                &mut out,
                "ftspan_locality_global_fallbacks_total",
                "Queries that fell back to the global oracle.",
                split.global_fallbacks,
            );
            let _ = writeln!(
                out,
                "# HELP ftspan_locality_rate Fraction of routed queries served without the global oracle."
            );
            let _ = writeln!(out, "# TYPE ftspan_locality_rate gauge");
            let _ = writeln!(out, "ftspan_locality_rate {:.6}", split.locality_rate());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = OracleMetrics::default();
        m.record_query(true);
        m.record_query(false);
        m.record_query(true);
        m.record_tree_built();
        m.record_batch();
        m.record_wave(4, true);
        m.record_wave(0, false);
        let s = m.snapshot();
        assert_eq!(s.queries, 3);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.trees_built, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.waves_applied, 2);
        assert_eq!(s.repairs_escalated, 1);
        assert_eq!(s.edges_added_by_repair, 4);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_hit_rate_is_zero() {
        assert_eq!(OracleMetrics::default().snapshot().hit_rate(), 0.0);
    }

    #[test]
    fn service_metrics_rates() {
        let mut m = ServiceMetrics {
            queries: 10,
            cache_hits: 4,
            ..ServiceMetrics::default()
        };
        assert!((m.hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(m.locality_rate(), None, "single oracle has no locality");
        m.locality = Some(LocalitySplit {
            local: 6,
            stitched: 2,
            global_fallbacks: 2,
        });
        assert!((m.locality_rate().unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(ServiceMetrics::default().hit_rate(), 0.0);
        assert_eq!(LocalitySplit::default().locality_rate(), 0.0);
    }

    /// Pins the Prometheus exposition format byte for byte. Dashboards and
    /// scrapers parse these lines — any change here is a breaking change to
    /// the `METRICS` endpoint and must be deliberate.
    #[test]
    fn prometheus_rendering_is_pinned() {
        let metrics = ServiceMetrics {
            queries: 123,
            cache_hits: 100,
            trees_built: 23,
            batches: 4,
            waves: 2,
            locality: None,
            submitted: 130,
            answered: 123,
            coalesced: 5,
            shed: 2,
            rounds: 7,
            wave_recovery_micros: 8150,
            last_wave_recovery_micros: 4075,
        };
        let text = metrics.render_prometheus(&[1, 0]);
        let expected = "\
# HELP ftspan_queries_total Queries the backend answered.
# TYPE ftspan_queries_total counter
ftspan_queries_total 123
# HELP ftspan_cache_hits_total Queries served from a cached shortest-path tree.
# TYPE ftspan_cache_hits_total counter
ftspan_cache_hits_total 100
# HELP ftspan_trees_built_total Shortest-path trees computed.
# TYPE ftspan_trees_built_total counter
ftspan_trees_built_total 23
# HELP ftspan_batches_total Batch calls the backend served.
# TYPE ftspan_batches_total counter
ftspan_batches_total 4
# HELP ftspan_waves_total Fault waves applied.
# TYPE ftspan_waves_total counter
ftspan_waves_total 2
# HELP ftspan_submitted_total Requests submitted to the service front-end.
# TYPE ftspan_submitted_total counter
ftspan_submitted_total 130
# HELP ftspan_answered_total Requests completed with an answer.
# TYPE ftspan_answered_total counter
ftspan_answered_total 123
# HELP ftspan_coalesced_total Duplicate requests coalesced before the backend.
# TYPE ftspan_coalesced_total counter
ftspan_coalesced_total 5
# HELP ftspan_shed_total Requests shed by admission control.
# TYPE ftspan_shed_total counter
ftspan_shed_total 2
# HELP ftspan_rounds_total Front-end pump rounds executed.
# TYPE ftspan_rounds_total counter
ftspan_rounds_total 7
# HELP ftspan_wave_recovery_micros_total Microseconds spent recovering from fault waves.
# TYPE ftspan_wave_recovery_micros_total counter
ftspan_wave_recovery_micros_total 8150
# HELP ftspan_last_wave_recovery_micros Recovery time of the most recent wave.
# TYPE ftspan_last_wave_recovery_micros gauge
ftspan_last_wave_recovery_micros 4075
# HELP ftspan_lane_shed_total Requests shed per admission lane.
# TYPE ftspan_lane_shed_total counter
ftspan_lane_shed_total{lane=\"0\"} 1
ftspan_lane_shed_total{lane=\"1\"} 0
# HELP ftspan_cache_hit_ratio Fraction of queries served from cache.
# TYPE ftspan_cache_hit_ratio gauge
ftspan_cache_hit_ratio 0.813008
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_rendering_includes_locality_for_routing_backends() {
        let metrics = ServiceMetrics {
            queries: 10,
            locality: Some(LocalitySplit {
                local: 6,
                stitched: 2,
                global_fallbacks: 2,
            }),
            ..ServiceMetrics::default()
        };
        let text = metrics.render_prometheus(&[]);
        assert!(text.contains("ftspan_locality_local_total 6\n"));
        assert!(text.contains("ftspan_locality_stitched_total 2\n"));
        assert!(text.contains("ftspan_locality_global_fallbacks_total 2\n"));
        assert!(text.contains("ftspan_locality_rate 0.800000\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad exposition line: {line}");
        }
    }
}
