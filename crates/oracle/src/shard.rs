//! Sharded serving: partition the vertex set, serve every query from a
//! per-shard oracle when locality can be *proved*, and fall back to the
//! global oracle otherwise.
//!
//! The [`ShardedOracle`] is the scaling layer over [`FaultOracle`]: a
//! [`ShardPlan`] (derived deterministically from the padded decomposition of
//! `ftspan-distributed`) assigns each vertex to a shard; every shard serves a
//! **region** — its core vertices plus a halo of radius `2k − 1` — through
//! its own `FaultOracle` over the induced subgraph, with shard-local dense
//! ids and a shard-unique cache namespace. Cross-shard queries are served
//! from lazily-built **pair regions** (the union of two shards' regions,
//! which contains the [`BoundaryIndex`]'s cut edges between them), stitching
//! the two shards' shortest-path trees through the portal vertices.
//!
//! ## Exactness
//!
//! Sharded answers are *identical* to the single global oracle's, not
//! approximations. A region answer is returned only when an **escape
//! certificate** holds: writing `front(x)` for the distance from `x` to the
//! region's frontier (vertices with spanner edges leaving the region) inside
//! the faulted region, any `u`–`v` walk that leaves the region must pay at
//! least `front(u) + front(v)` — it walks from `u` to a frontier vertex
//! entirely inside the region before first leaving, and from a frontier
//! vertex to `v` entirely inside after last re-entering. So whenever the
//! local distance satisfies `d(u, v) ≤ front(u) + front(v)` (or an endpoint
//! cannot reach the frontier at all), the local answer is the global
//! shortest distance, bit for bit. Only queries whose shortest path provably
//! might wander outside the region — for example when a fault wave severs
//! all portals between two shards — reach the global fallback, and the
//! [`ShardedMetrics`] record how often that happens.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ftspan::{
    poly_greedy_spanner_with, FaultSet, PolyGreedyOptions, SpannerParams, SpannerResult,
    SpannerStats,
};
use ftspan_distributed::{padded_decomposition, DecompositionOptions};
use ftspan_graph::dijkstra::{DijkstraScratch, ShortestPathTree};
use ftspan_graph::{Graph, IdRemap, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::boundary::BoundaryIndex;
use crate::oracle::{FaultOracle, OracleOptions};
use crate::query::{Answer, Query, QueryKind};

/// How a [`ShardPlan`] is derived from the padded decomposition.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShardPlanOptions {
    /// Desired number of shards (the plan never produces more; tiny graphs
    /// may fill fewer).
    pub shards: usize,
    /// Seed of the decomposition's exponential shifts. The plan is a pure
    /// function of the graph and these options, so a fixed seed makes shard
    /// assignment reproducible across runs and machines.
    pub seed: u64,
    /// Rate of the exponential shifts (cluster radius is `O(log n / beta)`).
    pub beta: f64,
    /// Candidate partitions to draw; the most balanced one is kept.
    pub partitions: usize,
}

impl Default for ShardPlanOptions {
    fn default() -> Self {
        Self {
            shards: 4,
            seed: 0x0005_4A2D_2020,
            beta: 0.25,
            partitions: 4,
        }
    }
}

/// A deterministic assignment of every vertex to exactly one shard.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardPlan {
    shard_of: Vec<u32>,
    cores: Vec<Vec<VertexId>>,
}

impl ShardPlan {
    /// Derives a plan from the graph's padded decomposition: draw
    /// `options.partitions` low-diameter clusterings with the seeded RNG,
    /// keep the most balanced one, and pack whole clusters into
    /// `options.shards` shards of roughly equal size. Deterministic given
    /// the graph and options.
    ///
    /// On low-diameter graphs the exponential-shift clustering can produce a
    /// single giant cluster, which would collapse every request onto one
    /// shard. The plan therefore *refines* the packing: while a requested
    /// shard is empty, the heaviest shard is split along its BFS layering
    /// (the ball around its lowest vertex stays, the far half moves), so the
    /// plan always fills `min(shards, n)` shards while keeping the split
    /// halves as coherent as the graph allows.
    #[must_use]
    pub fn build(graph: &Graph, options: &ShardPlanOptions) -> Self {
        if graph.vertex_count() == 0 {
            return Self::from_shard_of(Vec::new());
        }
        let shards = options.shards.max(1);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let decomposition = padded_decomposition(
            graph,
            &DecompositionOptions {
                beta: options.beta,
                partitions: Some(options.partitions.max(1)),
            },
            &mut rng,
        );
        let assignment = decomposition.sharding_partition().shard_assignment(shards);

        let mut cores: Vec<Vec<VertexId>> = vec![Vec::new(); shards];
        for (i, &s) in assignment.iter().enumerate() {
            cores[s as usize].push(VertexId::new(i));
        }
        while let Some(empty) = cores.iter().position(Vec::is_empty) {
            let Some(heaviest) = cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.len() >= 2)
                .max_by(|(i, a), (j, b)| a.len().cmp(&b.len()).then(j.cmp(i)))
                .map(|(i, _)| i)
            else {
                break; // fewer vertices than shards: trailing shards stay empty
            };
            let (keep, moved) = split_by_bfs_layers(graph, &cores[heaviest]);
            cores[heaviest] = keep;
            cores[empty] = moved;
        }
        cores.retain(|c| !c.is_empty());

        let mut shard_of = vec![0u32; graph.vertex_count()];
        for (s, core) in cores.iter().enumerate() {
            for &v in core {
                shard_of[v.index()] = s as u32;
            }
        }
        Self::from_shard_of(shard_of)
    }

    /// Wraps an explicit vertex→shard assignment (entry `i` is the shard of
    /// vertex `i`). Useful for tests and for callers with domain knowledge
    /// of the graph's natural partition.
    #[must_use]
    pub fn from_shard_of(shard_of: Vec<u32>) -> Self {
        let shards = shard_of
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(1)
            .max(1);
        let mut cores = vec![Vec::new(); shards];
        for (i, &s) in shard_of.iter().enumerate() {
            cores[s as usize].push(VertexId::new(i));
        }
        Self { shard_of, cores }
    }

    /// Number of shards.
    #[inline]
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of vertices the plan covers.
    #[inline]
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard a vertex belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, v: VertexId) -> u32 {
        self.shard_of[v.index()]
    }

    /// The core vertices of one shard, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn core(&self, shard: usize) -> &[VertexId] {
        &self.cores[shard]
    }
}

/// Configuration of a [`ShardedOracle`].
#[derive(Clone, Debug, Default)]
pub struct ShardedOptions {
    /// How the shard plan is derived (ignored by
    /// [`ShardedOracle::build_with_plan`]).
    pub plan: ShardPlanOptions,
    /// Hop radius of every shard's halo, measured in the spanner. `None`
    /// uses the stretch `2k − 1` — the distance within which a spanner
    /// witness path for a core edge can wander.
    pub halo_radius: Option<u32>,
    /// Options of the global oracle and (with per-shard cache namespaces)
    /// of every region oracle.
    pub oracle: OracleOptions,
}

/// One served region: a shard's core plus halo (or the union of two shards'
/// regions for cross-shard stitching), remapped to dense local ids.
#[derive(Debug)]
pub(crate) struct Region {
    pub(crate) oracle: FaultOracle,
    pub(crate) remap: IdRemap,
    /// Local ids of the vertices with global spanner edges leaving the
    /// region — the only places a path can escape through.
    pub(crate) frontier: Vec<VertexId>,
    /// Signature of the region's members and induced edges, used by the
    /// churn fan-out to decide whether a wave touched this region.
    pub(crate) signature: u64,
}

impl Region {
    /// Extracts the region on `members` (sorted global ids) from the global
    /// effective graph and spanner.
    pub(crate) fn build(
        graph: &Graph,
        spanner: &Graph,
        params: SpannerParams,
        base_options: &OracleOptions,
        namespace: u64,
        members: &[VertexId],
    ) -> Self {
        let signature = region_signature(graph, spanner, members);
        let (local_base, remap) = graph.induced_subgraph_remap(members);
        let mut local_spanner = Graph::empty_like(&local_base);
        // Only member adjacencies are scanned (not the whole spanner edge
        // table), so region extraction stays proportional to the region.
        for &u in remap.members() {
            for (v, e) in spanner.neighbors(u) {
                if u < v {
                    if let (Some(lu), Some(lv)) = (remap.to_local(u), remap.to_local(v)) {
                        local_spanner.add_edge(lu.index(), lv.index(), spanner.weight(e));
                    }
                }
            }
        }
        local_spanner.compact();
        let frontier: Vec<VertexId> = remap
            .members()
            .iter()
            .filter(|&&g| spanner.neighbors(g).any(|(nbr, _)| !remap.contains(nbr)))
            .map(|&g| remap.to_local(g).expect("member maps locally"))
            .collect();
        let oracle = FaultOracle::from_result(
            local_base,
            SpannerResult {
                spanner: local_spanner,
                params,
                stats: SpannerStats::default(),
                certificates: Vec::new(),
            },
            OracleOptions {
                cache_namespace: namespace,
                ..base_options.clone()
            },
        );
        Self {
            oracle,
            remap,
            frontier,
            signature,
        }
    }

    /// Heap bytes held by the region: its local oracle (graphs plus tree
    /// cache), the paged id remap, and the frontier list.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.oracle.memory_bytes()
            + self.remap.memory_bytes()
            + self.frontier.capacity() * std::mem::size_of::<VertexId>()
    }

    /// Restricts a global fault set to the region's local id space. Faults
    /// outside the region cannot touch any path inside it and are dropped;
    /// edge fault ids (which refer to the global input graph) are matched by
    /// endpoints.
    fn localize_faults(&self, faults: &FaultSet, global_graph: &Graph) -> FaultSet {
        match faults {
            FaultSet::Vertices(vs) => {
                FaultSet::vertices(self.remap.localize_vertices(vs.iter().copied()))
            }
            FaultSet::Edges(es) => FaultSet::edges(es.iter().filter_map(|&e| {
                let (u, v) = global_graph.get_edge(e)?.endpoints();
                let lu = self.remap.to_local(u)?;
                let lv = self.remap.to_local(v)?;
                self.oracle.graph().edge_between(lu, lv)
            })),
        }
    }

    /// The shortest faulted-region distance from a tree's root to the
    /// frontier, or `None` when the root cannot reach the frontier at all
    /// (in which case no path through the root can leave the region).
    fn frontier_distance(&self, tree: &ShortestPathTree) -> Option<f64> {
        self.frontier
            .iter()
            .filter_map(|&p| tree.distance_to(p))
            .min_by(f64::total_cmp)
    }

    /// Attempts to answer the query (global ids) from this region alone.
    /// Returns `Some` only when the escape certificate proves the local
    /// answer equals the global one; `None` sends the caller to the global
    /// fallback.
    pub(crate) fn try_answer(
        &self,
        u: VertexId,
        v: VertexId,
        kind: QueryKind,
        global_faults: &FaultSet,
        global_graph: &Graph,
        scratch: &mut DijkstraScratch,
    ) -> Option<Answer> {
        let lu = self.remap.to_local(u)?;
        let lv = self.remap.to_local(v)?;
        let faults = self.localize_faults(global_faults, global_graph);
        let key = self.oracle.key_ref(&faults);
        let (tree_u, cache_hit) = self.oracle.tree_rooted_at(&key, lu, scratch);
        let distance = tree_u.distance_to(lv);

        let exact = match self.frontier_distance(&tree_u) {
            // `u` cannot reach the frontier under these faults: no u–v path
            // leaves the region, so the local answer is the global answer.
            None => true,
            Some(front_u) => {
                let (tree_v, _) = self.oracle.tree_rooted_at(&key, lv, scratch);
                match (distance, self.frontier_distance(&tree_v)) {
                    // Same escape-proofness, from the `v` side.
                    (_, None) => true,
                    // Any escaping walk costs at least front(u) + front(v);
                    // a local distance at or below that floor is optimal.
                    (Some(d), Some(front_v)) => d <= front_u + front_v,
                    // Locally disconnected but both endpoints can escape:
                    // the pair may be connected through other regions.
                    (None, Some(_)) => false,
                }
            }
        };
        if !exact {
            return None;
        }

        let path = match (kind, distance) {
            (QueryKind::Path, Some(_)) => tree_u.path_to(lv).map(|p| self.remap.globalize_path(&p)),
            _ => None,
        };
        // Record on the region oracle's own metrics so the sharded
        // backend's aggregated cache statistics (`ShardedOracle::cache_stats`)
        // see every served query exactly once — certificate failures are
        // recorded by the global fallback instead.
        self.oracle.metrics().record_query(cache_hit);
        Some(Answer {
            distance,
            path,
            cache_hit,
        })
    }
}

/// Splits a shard's members into two halves along the BFS layering of its
/// induced subgraph: the ball around the lowest member stays, the farthest
/// half (unreachable members first) moves out. Deterministic, and as locality
/// preserving as the induced topology allows.
fn split_by_bfs_layers(graph: &Graph, members: &[VertexId]) -> (Vec<VertexId>, Vec<VertexId>) {
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    let (sub, remap) = graph.induced_subgraph_remap(&sorted);
    let dist = ftspan_graph::bfs::bfs_hop_distances(&sub, VertexId::new(0));
    let mut order: Vec<(u32, VertexId)> = sorted
        .iter()
        .map(|&g| {
            let local = remap.to_local(g).expect("member maps locally");
            (dist[local.index()].unwrap_or(u32::MAX), g)
        })
        .collect();
    order.sort_unstable();
    let keep_len = order.len().div_ceil(2);
    let mut keep: Vec<VertexId> = order[..keep_len].iter().map(|&(_, g)| g).collect();
    let mut moved: Vec<VertexId> = order[keep_len..].iter().map(|&(_, g)| g).collect();
    keep.sort_unstable();
    moved.sort_unstable();
    (keep, moved)
}

/// Order- and id-sensitive signature of a region: its member list, every
/// induced base and spanner edge (endpoints and weight), **and every edge
/// leaving the region**. Two extractions of the same region from the same
/// global state always agree, and any wave or repair that adds or removes a
/// member, an induced edge, or a leaving edge changes the signature — the
/// test the churn fan-out uses to skip untouched shards.
///
/// Leaving edges must be covered because the escape certificate reads the
/// region's *frontier* off them: a repair that adds a spanner edge from a
/// halo-rim member to the outside changes no member and no induced edge,
/// but turns that member into a frontier vertex. Skipping the rebuild would
/// leave the frontier stale and the certificate unsound.
pub(crate) fn region_signature(graph: &Graph, spanner: &Graph, members: &[VertexId]) -> u64 {
    let mut inside = vec![false; graph.vertex_count()];
    for &v in members {
        inside[v.index()] = true;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |value: u64| {
        h ^= value;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for &v in members {
        mix(u64::from(v.as_u32()));
    }
    for (tag, g) in [(0x6261u64, graph), (0x7370u64, spanner)] {
        mix(tag);
        for &v in members {
            for (nbr, e) in g.neighbors(v) {
                if inside[nbr.index()] {
                    if nbr > v {
                        mix(u64::from(v.as_u32()) << 32 | u64::from(nbr.as_u32()));
                        mix(g.weight(e).to_bits());
                    }
                } else {
                    // A leaving edge: hash under a distinct tag so it can
                    // never cancel against an internal edge.
                    mix(0x6F75_7400 ^ (u64::from(v.as_u32()) << 32 | u64::from(nbr.as_u32())));
                }
            }
        }
    }
    h
}

/// Lock-free counters describing how sharded traffic was served.
#[derive(Debug, Default)]
pub struct ShardedMetrics {
    queries: AtomicU64,
    local: AtomicU64,
    stitched: AtomicU64,
    global_fallbacks: AtomicU64,
    batches: AtomicU64,
    waves: AtomicU64,
}

impl ShardedMetrics {
    pub(crate) fn record_local(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.local.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_stitched(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.stitched.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_global_fallback(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.global_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wave(&self) {
        self.waves.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> ShardedMetricsSnapshot {
        ShardedMetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            local: self.local.load(Ordering::Relaxed),
            stitched: self.stitched.load(Ordering::Relaxed),
            global_fallbacks: self.global_fallbacks.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`ShardedMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedMetricsSnapshot {
    /// Total queries served.
    pub queries: u64,
    /// Queries answered from a single shard's region.
    pub local: u64,
    /// Cross-shard queries answered from a stitched pair region.
    pub stitched: u64,
    /// Queries that fell back to the global oracle.
    pub global_fallbacks: u64,
    /// Batch calls served.
    pub batches: u64,
    /// Fault waves applied.
    pub waves: u64,
}

impl ShardedMetricsSnapshot {
    /// Fraction of queries served without touching the global oracle.
    #[must_use]
    pub fn locality_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.local + self.stitched) as f64 / self.queries as f64
        }
    }
}

/// A sharded, API-compatible drop-in for [`FaultOracle`]: same query
/// vocabulary, identical answers, with traffic served from per-shard state.
///
/// See the [module docs](crate::shard) for the architecture and the
/// exactness argument.
#[derive(Debug)]
pub struct ShardedOracle {
    pub(crate) global: FaultOracle,
    pub(crate) plan: ShardPlan,
    pub(crate) boundary: BoundaryIndex,
    /// One region per shard, behind `Arc` so sibling shards whose core-plus-
    /// halo member sets coincide (common when a small graph's halos cover
    /// everything) share one extraction instead of duplicating it — the halo
    /// dedup half of the scale tier's memory story.
    pub(crate) regions: Vec<Arc<Region>>,
    pub(crate) pair_regions: Mutex<HashMap<(u32, u32), Arc<Region>>>,
    pub(crate) shard_epochs: Vec<u64>,
    pub(crate) halo_radius: u32,
    pub(crate) options: ShardedOptions,
    pub(crate) metrics: ShardedMetrics,
    /// Cache statistics `(hits, trees built)` of region oracles that have
    /// been retired — replaced by a churn rebuild or dropped with the pair
    /// cache — folded in so [`ShardedOracle::cache_stats`] spans the
    /// oracle's whole lifetime, not just the current regions.
    pub(crate) retired_cache_stats: (u64, u64),
    /// Pooled BFS buffers for the per-shard region sweep of the churn
    /// fan-out, alive across waves.
    pub(crate) wave_bfs: ftspan_graph::bfs::BfsScratch,
}

impl ShardedOracle {
    /// Builds the global spanner with the paper's polynomial-time modified
    /// greedy, derives a shard plan from the padded decomposition, and wires
    /// up the sharded serving state.
    #[must_use]
    pub fn build(graph: Graph, params: SpannerParams, options: ShardedOptions) -> Self {
        let plan = ShardPlan::build(&graph, &options.plan);
        Self::build_with_plan(graph, params, plan, options)
    }

    /// Like [`ShardedOracle::build`] but with an explicit shard plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not cover the graph's vertex set.
    #[must_use]
    pub fn build_with_plan(
        graph: Graph,
        params: SpannerParams,
        plan: ShardPlan,
        options: ShardedOptions,
    ) -> Self {
        let build_options = PolyGreedyOptions {
            collect_certificates: options.oracle.collect_certificates,
            ..PolyGreedyOptions::default()
        };
        let result = poly_greedy_spanner_with(&graph, params, &build_options);
        Self::from_result(graph, result, plan, options)
    }

    /// Wraps an already-built spanner in a sharded oracle.
    ///
    /// # Panics
    ///
    /// Panics if the spanner or the plan does not cover the graph's vertex
    /// set.
    #[must_use]
    pub fn from_result(
        graph: Graph,
        result: SpannerResult,
        plan: ShardPlan,
        options: ShardedOptions,
    ) -> Self {
        assert_eq!(
            graph.vertex_count(),
            plan.vertex_count(),
            "shard plan must cover the graph's vertex set"
        );
        let params = result.params;
        let global = FaultOracle::from_result(graph, result, options.oracle.clone());
        let halo_radius = options.halo_radius.unwrap_or_else(|| params.stretch());
        let boundary = BoundaryIndex::build(global.spanner(), &plan);
        let mut regions: Vec<Arc<Region>> = Vec::with_capacity(plan.shard_count());
        for s in 0..plan.shard_count() {
            let members = global.spanner().halo_members(plan.core(s), halo_radius);
            // Sibling dedup: an earlier shard with the exact same member set
            // (and therefore the same induced region) shares one extraction.
            // The shared region keeps the first shard's cache namespace,
            // which is sound — identical regions answer identically, so
            // sharing their tree cache is a win, not a collision.
            let shared = regions
                .iter()
                .find(|r| r.remap.members() == members.as_slice())
                .map(Arc::clone);
            regions.push(shared.unwrap_or_else(|| {
                Arc::new(Region::build(
                    global.graph(),
                    global.spanner(),
                    params,
                    &options.oracle,
                    shard_namespace(s),
                    &members,
                ))
            }));
        }
        let shard_epochs = vec![0; plan.shard_count()];
        Self {
            global,
            plan,
            boundary,
            regions,
            pair_regions: Mutex::new(HashMap::new()),
            shard_epochs,
            halo_radius,
            options,
            metrics: ShardedMetrics::default(),
            retired_cache_stats: (0, 0),
            wave_bfs: ftspan_graph::bfs::BfsScratch::default(),
        }
    }

    /// The shard plan in force.
    #[inline]
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The cross-shard boundary index over the current spanner.
    #[inline]
    #[must_use]
    pub fn boundary(&self) -> &BoundaryIndex {
        &self.boundary
    }

    /// The global fallback oracle.
    #[inline]
    #[must_use]
    pub fn global(&self) -> &FaultOracle {
        &self.global
    }

    /// Number of shards.
    #[inline]
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.plan.shard_count()
    }

    /// The current effective input graph (see [`FaultOracle::graph`]).
    #[inline]
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.global.graph()
    }

    /// The global spanner being served.
    #[inline]
    #[must_use]
    pub fn spanner(&self) -> &Graph {
        self.global.spanner()
    }

    /// The parameters the spanner targets.
    #[inline]
    #[must_use]
    pub fn params(&self) -> SpannerParams {
        self.global.params()
    }

    /// The stretch bound `2k − 1` as a float.
    #[inline]
    #[must_use]
    pub fn stretch_bound(&self) -> f64 {
        self.global.stretch_bound()
    }

    /// The halo radius every shard region was expanded by.
    #[inline]
    #[must_use]
    pub fn halo_radius(&self) -> u32 {
        self.halo_radius
    }

    /// Sharded serving metrics (lock-free; safe to read at any time).
    #[inline]
    #[must_use]
    pub fn metrics(&self) -> &ShardedMetrics {
        &self.metrics
    }

    /// The number of structural changes (fault waves) applied so far,
    /// mirroring [`FaultOracle::epoch`] so both backends expose one epoch
    /// through [`SpannerOracle`](crate::SpannerOracle). Per-shard rebuild
    /// counts are in [`ShardedOracle::shard_epochs`].
    #[inline]
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.global.epoch()
    }

    /// Aggregated tree-cache statistics `(cache_hits, trees_built)` across
    /// the global oracle, every shard region, the live pair regions, and
    /// every region already retired by churn rebuilds — the numbers behind
    /// the unified [`ServiceMetrics`](crate::ServiceMetrics) hit rate.
    /// Every routed query is recorded exactly once: on the region that
    /// certified its answer, or on the global oracle when it fell back.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        let (mut hits, mut built) = self.retired_cache_stats;
        // Interned regions appear behind several shards (or pairs); count
        // each distinct allocation once.
        let mut seen: Vec<*const Region> = Vec::new();
        let mut add = |region: &Arc<Region>| {
            let ptr = Arc::as_ptr(region);
            if seen.contains(&ptr) {
                return;
            }
            seen.push(ptr);
            let snap = region.oracle.metrics().snapshot();
            hits += snap.cache_hits;
            built += snap.trees_built;
        };
        for region in &self.regions {
            add(region);
        }
        for region in self
            .pair_regions
            .lock()
            .expect("pair region cache poisoned")
            .values()
        {
            add(region);
        }
        let snap = self.global.metrics().snapshot();
        hits += snap.cache_hits;
        built += snap.trees_built;
        (hits, built)
    }

    /// Heap bytes held by the sharded serving state: the global oracle, the
    /// boundary index, and every **distinct** region allocation (shard and
    /// pair regions interned to one extraction are counted once — the
    /// number the `mem_bytes_per_edge` scale series reports).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.global.memory_bytes() + self.boundary.memory_bytes();
        let mut seen: Vec<*const Region> = Vec::new();
        let mut add = |region: &Arc<Region>| {
            let ptr = Arc::as_ptr(region);
            if seen.contains(&ptr) {
                return;
            }
            seen.push(ptr);
            bytes += region.memory_bytes();
        };
        for region in &self.regions {
            add(region);
        }
        for region in self
            .pair_regions
            .lock()
            .expect("pair region cache poisoned")
            .values()
        {
            add(region);
        }
        bytes
    }

    /// Per-shard rebuild epochs: entry `s` counts how many fault waves
    /// forced shard `s`'s region (and therefore its caches) to be rebuilt.
    /// A wave confined to one shard leaves every other entry unchanged.
    #[must_use]
    pub fn shard_epochs(&self) -> &[u64] {
        &self.shard_epochs
    }

    /// The global ids of the vertices shard `s` serves (core plus halo).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_members(&self, shard: usize) -> &[VertexId] {
        self.regions[shard].remap.members()
    }

    /// Distance in `H ∖ F` — identical to [`FaultOracle::distance`] on the
    /// same spanner. Like the single oracle, the borrowed fault set is never
    /// cloned on the query path.
    #[must_use]
    pub fn distance(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<f64> {
        self.global
            .with_scratch(|scratch| self.answer_parts(u, v, QueryKind::Distance, faults, scratch))
            .distance
    }

    /// Distance plus an explicit shortest path in `H ∖ F`.
    #[must_use]
    pub fn path(
        &self,
        u: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Option<(f64, Vec<VertexId>)> {
        let answer = self
            .global
            .with_scratch(|scratch| self.answer_parts(u, v, QueryKind::Path, faults, scratch));
        Some((answer.distance?, answer.path?))
    }

    /// Answers one query. For batches prefer
    /// [`ShardedOracle::answer_batch`](crate::batch).
    #[must_use]
    pub fn answer(&self, query: &Query) -> Answer {
        self.global
            .with_scratch(|scratch| self.answer_with_scratch(query, scratch))
    }

    /// The shared single-query path: route to a region, certify, fall back.
    pub(crate) fn answer_with_scratch(
        &self,
        query: &Query,
        scratch: &mut DijkstraScratch,
    ) -> Answer {
        self.answer_parts(query.u, query.v, query.kind, &query.faults, scratch)
    }

    fn answer_parts(
        &self,
        u: VertexId,
        v: VertexId,
        kind: QueryKind,
        faults: &FaultSet,
        scratch: &mut DijkstraScratch,
    ) -> Answer {
        match self.route(u, v) {
            Route::Local(shard) => {
                if let Some(answer) = self.regions[shard as usize].try_answer(
                    u,
                    v,
                    kind,
                    faults,
                    self.global.graph(),
                    scratch,
                ) {
                    self.metrics.record_local();
                    return answer;
                }
            }
            Route::Pair(a, b) => {
                let region = self.pair_region(a, b);
                if let Some(answer) =
                    region.try_answer(u, v, kind, faults, self.global.graph(), scratch)
                {
                    self.metrics.record_stitched();
                    return answer;
                }
            }
        }
        self.metrics.record_global_fallback();
        let key = self.global.key_ref(faults);
        self.global.answer_with_key(u, v, kind, &key, scratch)
    }

    /// Which region a vertex pair is served from.
    pub(crate) fn route(&self, u: VertexId, v: VertexId) -> Route {
        let su = self.plan.shard_of(u);
        let sv = self.plan.shard_of(v);
        if su == sv {
            Route::Local(su)
        } else {
            Route::Pair(su.min(sv), su.max(sv))
        }
    }

    /// Fetches (or lazily builds) the stitched pair region for two shards.
    pub(crate) fn pair_region(&self, a: u32, b: u32) -> Arc<Region> {
        if let Some(region) = self
            .pair_regions
            .lock()
            .expect("pair region cache poisoned")
            .get(&(a, b))
        {
            return Arc::clone(region);
        }
        // Build outside the lock; a concurrent builder of the same pair just
        // loses the insert race and its region is dropped.
        let mut members: Vec<VertexId> = self.regions[a as usize]
            .remap
            .members()
            .iter()
            .chain(self.regions[b as usize].remap.members())
            .copied()
            .collect();
        members.sort_unstable();
        members.dedup();
        // Halo dedup again: when one shard's region already covers the
        // union (its halo swallowed the other's core and halo), the pair is
        // that region — reuse it instead of extracting a copy.
        let region = [a, b]
            .iter()
            .map(|&s| &self.regions[s as usize])
            .find(|r| r.remap.members() == members.as_slice())
            .map(Arc::clone)
            .unwrap_or_else(|| {
                Arc::new(Region::build(
                    self.global.graph(),
                    self.global.spanner(),
                    self.global.params(),
                    &self.options.oracle,
                    pair_namespace(a, b),
                    &members,
                ))
            });
        let mut cache = self
            .pair_regions
            .lock()
            .expect("pair region cache poisoned");
        Arc::clone(cache.entry((a, b)).or_insert(region))
    }
}

/// The region a query routes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Route {
    /// Both endpoints in one shard.
    Local(u32),
    /// Endpoints in two different shards (normalized `a < b`).
    Pair(u32, u32),
}

/// Cache namespace of a shard region (`0` is reserved for the global
/// namespace).
pub(crate) fn shard_namespace(shard: usize) -> u64 {
    shard as u64 + 1
}

/// Cache namespace of a pair region, disjoint from every shard namespace
/// for any realistic shard count.
pub(crate) fn pair_namespace(a: u32, b: u32) -> u64 {
    (u64::from(a) + 1) << 32 | (u64::from(b) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sharded(seed: u64, shards: usize, f: u32) -> ShardedOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(48, 0.15, &mut rng);
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        ShardedOracle::build(graph, SpannerParams::vertex(2, f), options)
    }

    #[test]
    fn plan_is_a_deterministic_partition() {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = generators::connected_gnp(40, 0.15, &mut rng);
        let options = ShardPlanOptions::default();
        let plan = ShardPlan::build(&graph, &options);
        assert_eq!(plan, ShardPlan::build(&graph, &options));
        assert_eq!(plan.vertex_count(), 40);
        let total: usize = (0..plan.shard_count()).map(|s| plan.core(s).len()).sum();
        assert_eq!(total, 40, "every vertex in exactly one core");
        for s in 0..plan.shard_count() {
            for &v in plan.core(s) {
                assert_eq!(plan.shard_of(v) as usize, s);
            }
        }
        // A different seed may produce a different plan but stays a partition.
        let other = ShardPlan::build(
            &graph,
            &ShardPlanOptions {
                seed: 99,
                ..options
            },
        );
        let total: usize = (0..other.shard_count()).map(|s| other.core(s).len()).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn answers_match_the_global_oracle_exactly() {
        let oracle = sharded(2, 3, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let n = oracle.graph().vertex_count();
        for _ in 0..60 {
            let u = vid(rng.gen_range(0..n));
            let v = vid(rng.gen_range(0..n));
            let faults = ftspan::sample_fault_set(
                oracle.graph(),
                ftspan::FaultModel::Vertex,
                1,
                &[],
                &mut rng,
            );
            assert_eq!(
                oracle.distance(u, v, &faults),
                oracle.global().distance(u, v, &faults),
                "u {u} v {v} faults {faults:?}"
            );
        }
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.queries, 60);
    }

    #[test]
    fn paths_are_valid_spanner_walks() {
        let oracle = sharded(3, 3, 1);
        let faults = FaultSet::vertices([vid(9)]);
        let mut served = 0;
        for (u, v) in [(0usize, 40usize), (5, 33), (17, 2)] {
            let Some((d, path)) = oracle.path(vid(u), vid(v), &faults) else {
                continue;
            };
            assert_eq!(path.first(), Some(&vid(u)));
            assert_eq!(path.last(), Some(&vid(v)));
            let mut walked = 0.0;
            for pair in path.windows(2) {
                let e = oracle
                    .spanner()
                    .edge_between(pair[0], pair[1])
                    .expect("path must use global spanner edges");
                walked += oracle.spanner().weight(e);
                assert!(!faults.contains_vertex(pair[0]));
            }
            assert!((walked - d).abs() < 1e-9);
            served += 1;
        }
        assert!(served > 0);
    }

    #[test]
    fn one_shard_plan_serves_everything_locally_without_fallbacks() {
        let oracle = sharded(4, 1, 1);
        assert_eq!(oracle.shard_count(), 1);
        assert!(oracle.boundary().cut_edges().is_empty());
        assert!(oracle.regions[0].frontier.is_empty());
        let mut rng = StdRng::seed_from_u64(11);
        let n = oracle.graph().vertex_count();
        for _ in 0..30 {
            let u = vid(rng.gen_range(0..n));
            let v = vid(rng.gen_range(0..n));
            let _ = oracle.distance(u, v, &FaultSet::vertices([vid(1)]));
        }
        let snap = oracle.metrics().snapshot();
        assert_eq!(
            snap.global_fallbacks, 0,
            "1-shard plan must never fall back"
        );
        assert_eq!(snap.local, 30);
        assert!((snap.locality_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regions_contain_core_plus_halo_and_expose_their_frontier() {
        let oracle = sharded(5, 3, 1);
        for s in 0..oracle.shard_count() {
            let members = oracle.shard_members(s);
            for &v in oracle.plan().core(s) {
                assert!(members.contains(&v), "core vertex {v} missing from region");
            }
            // Frontier vertices really have spanner edges leaving the region.
            let region = &oracle.regions[s];
            for &lf in &region.frontier {
                let g = region.remap.to_global(lf);
                assert!(oracle
                    .spanner()
                    .neighbors(g)
                    .any(|(nbr, _)| !region.remap.contains(nbr)));
            }
        }
    }

    #[test]
    fn pair_regions_are_built_lazily_and_reused() {
        let oracle = sharded(6, 3, 1);
        assert_eq!(
            oracle
                .pair_regions
                .lock()
                .expect("pair region cache poisoned")
                .len(),
            0
        );
        let a = oracle.pair_region(0, 1);
        let b = oracle.pair_region(0, 1);
        assert!(Arc::ptr_eq(&a, &b), "pair region must be cached");
        // The pair region serves both shards' vertices.
        for &v in oracle.plan().core(0).iter().chain(oracle.plan().core(1)) {
            assert!(a.remap.contains(v));
        }
    }

    #[test]
    fn region_signature_tracks_edges_leaving_the_region() {
        // Regression: a repair can add a spanner edge from a halo-rim member
        // to the outside without changing the member set or any induced
        // edge. The signature must still change, or the churn fan-out would
        // skip the rebuild and serve with a stale frontier.
        let before = generators::path(5); // 0-1-2-3-4
        let members = [vid(0), vid(1)];
        let mut after = before.clone();
        after.add_unit_edge(1, 3); // leaves {0, 1}; membership + induced edges unchanged
        assert_ne!(
            region_signature(&before, &before, &members),
            region_signature(&after, &after, &members)
        );
        // Same member set and incident edges → identical signature.
        assert_eq!(
            region_signature(&before, &before, &members),
            region_signature(&before, &before, &members)
        );
        // Edges wholly outside the region do not disturb it.
        let mut far = before.clone();
        far.add_unit_edge(2, 4);
        assert_eq!(
            region_signature(&before, &before, &members),
            region_signature(&far, &far, &members)
        );
    }

    #[test]
    fn shard_namespaces_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..16 {
            assert!(seen.insert(shard_namespace(s)));
        }
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                assert!(seen.insert(pair_namespace(a, b)));
            }
        }
        assert!(!seen.contains(&0), "0 is reserved for the global namespace");
    }
}
