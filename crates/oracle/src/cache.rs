//! The fault-set-keyed LRU cache of shortest-path trees.
//!
//! One Dijkstra run from a source `s` on `H ∖ F` answers every `(s, *)`
//! query under the same fault set, so the natural cache granularity is a
//! **tree**, grouped per fault set: real query traffic is bursty in `F`
//! (a fault wave stays active while many queries arrive), which makes the
//! per-fault-set hit rate high even with a small capacity.
//!
//! The store is a flat vector of slots scanned by fingerprint — at serving
//! capacities (a few hundred fault sets) a contiguous scan of `u64`s beats a
//! hash map, and it makes LRU eviction a `swap_remove` that *moves* the
//! victim out instead of cloning its key. Lookups on the query hot path go
//! through [`KeyRef`], a borrowed key derived from the fault set in `O(|F|)`
//! with **zero heap allocation**; an owned [`CacheKey`] is only materialized
//! when a freshly computed tree is inserted (the miss path).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ftspan::FaultSet;
use ftspan_graph::dijkstra::ShortestPathTree;
use ftspan_graph::{fault_fingerprint_namespaced, EdgeId, VertexId};

/// Exact owned cache key for one fault set, qualified by a cache namespace.
///
/// `Hash` uses only the precomputed fingerprint; `Eq` compares the namespace
/// and the full sorted fault lists, so a (astronomically unlikely)
/// fingerprint collision degrades to a bucket collision, never to a wrong
/// answer.
///
/// The namespace exists because fault fingerprints are computed over *local*
/// element indices: two shards of a [`ShardedOracle`](crate::ShardedOracle)
/// with identical local fault patterns would otherwise produce equal keys and
/// could share cache entries through any cache layered across shards. Each
/// shard therefore keys its trees under a shard-unique namespace
/// (see [`OracleOptions::cache_namespace`](crate::OracleOptions)).
#[derive(Clone, Debug, Eq)]
pub struct CacheKey {
    fingerprint: u64,
    namespace: u64,
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
}

impl CacheKey {
    /// Builds the key for a fault set in the global namespace `0` (fault
    /// sets are sorted and deduplicated by construction).
    #[must_use]
    pub fn from_fault_set(faults: &FaultSet) -> Self {
        Self::namespaced(0, faults)
    }

    /// Builds the key for a fault set under the given cache namespace.
    #[must_use]
    pub fn namespaced(namespace: u64, faults: &FaultSet) -> Self {
        KeyRef::new(namespace, faults).to_owned_key()
    }

    /// The fingerprint used for hashing.
    #[inline]
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The cache namespace the key was derived under.
    #[inline]
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// Exact comparison against a borrowed key, allocation-free: fingerprint
    /// and namespace first, then the full sorted fault lists.
    #[inline]
    fn matches(&self, key: &KeyRef<'_>) -> bool {
        self.fingerprint == key.fingerprint
            && self.namespace == key.namespace
            && self.vertices.as_slice() == key.faults.vertex_faults()
            && self.edges.as_slice() == key.faults.edge_faults()
    }
}

impl PartialEq for CacheKey {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.namespace == other.namespace
            && self.vertices == other.vertices
            && self.edges == other.edges
    }
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

/// A borrowed cache key: namespace, precomputed fingerprint, and a reference
/// to the fault set. Deriving one costs `O(|F|)` fingerprint mixing and no
/// heap allocation, which is what keeps the cached-tree hit path
/// allocation-free. [`KeyRef::to_owned_key`] materializes the owned
/// [`CacheKey`] for insertion.
#[derive(Clone, Copy, Debug)]
pub struct KeyRef<'a> {
    namespace: u64,
    fingerprint: u64,
    faults: &'a FaultSet,
}

impl<'a> KeyRef<'a> {
    /// Derives the borrowed key for a fault set under a namespace.
    #[must_use]
    pub fn new(namespace: u64, faults: &'a FaultSet) -> Self {
        let fingerprint = fault_fingerprint_namespaced(
            namespace,
            faults.vertex_faults().iter().copied(),
            faults.edge_faults().iter().copied(),
        );
        Self {
            namespace,
            fingerprint,
            faults,
        }
    }

    /// Rebuilds a borrowed key from a fingerprint computed earlier (batch
    /// grouping computes it once per group and reuses it per query).
    #[must_use]
    pub fn with_fingerprint(namespace: u64, fingerprint: u64, faults: &'a FaultSet) -> Self {
        Self {
            namespace,
            fingerprint,
            faults,
        }
    }

    /// The namespaced fingerprint.
    #[inline]
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The fault set the key refers to.
    #[inline]
    #[must_use]
    pub fn faults(&self) -> &'a FaultSet {
        self.faults
    }

    /// Materializes the owned key (allocates; used on the insert/miss path).
    #[must_use]
    pub fn to_owned_key(&self) -> CacheKey {
        CacheKey {
            fingerprint: self.fingerprint,
            namespace: self.namespace,
            vertices: self.faults.vertex_faults().to_vec(),
            edges: self.faults.edge_faults().to_vec(),
        }
    }
}

/// All cached trees for one fault set. Trees are kept in a small vector —
/// a fault set rarely accumulates more than a few dozen roots, and a linear
/// scan of `(VertexId, Arc)` pairs is cheaper than hashing at that size.
#[derive(Debug)]
struct CacheSlot {
    key: CacheKey,
    trees: Vec<(VertexId, Arc<ShortestPathTree>)>,
    last_used: u64,
}

/// An LRU cache of shortest-path trees grouped by fault set.
///
/// The cache is a plain data structure; the oracle wraps it in a mutex and
/// keeps tree payloads behind [`Arc`] so workers clone a handle and release
/// the lock before walking the tree. Eviction is least-recently-used over
/// fault sets; all trees of an evicted fault set go together, and the victim
/// is moved out by `swap_remove` — no key clone on the eviction path.
///
/// Lookup cost: a linear scan of a **dense `u64` fingerprint array** (one
/// word per cached fault set, exact key confirmation only on a fingerprint
/// hit). At serving capacities — the default is 128 fault sets, and a few
/// thousand is typical headroom — this is faster than a hash map probe and
/// keeps eviction clone-free; a pathologically large `cache_capacity`
/// (hundreds of thousands) would pay O(capacity) per lookup under the cache
/// mutex, so capacity should scale with the number of *concurrently hot*
/// fault sets, not the total ever seen.
#[derive(Debug)]
pub struct TreeCache {
    capacity: usize,
    /// `fingerprints[i]` mirrors `slots[i].key.fingerprint()`: the dense
    /// scan lane (8 bytes per slot) for lookups.
    fingerprints: Vec<u64>,
    slots: Vec<CacheSlot>,
    tick: u64,
    trees_cached: usize,
}

impl TreeCache {
    /// Creates a cache holding at most `capacity` fault sets (0 disables
    /// caching: every lookup misses and stores nothing).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            fingerprints: Vec::with_capacity(capacity.min(1024)),
            slots: Vec::with_capacity(capacity.min(1024)),
            tick: 0,
            trees_cached: 0,
        }
    }

    /// Index of the slot exactly matching the borrowed key: scan the dense
    /// fingerprint lane, confirm on the full key only at fingerprint hits
    /// (fingerprint collisions between distinct fault sets are ~2⁻⁶⁴).
    fn position_matching(&self, key: &KeyRef<'_>) -> Option<usize> {
        let wanted = key.fingerprint;
        self.fingerprints
            .iter()
            .enumerate()
            .find_map(|(i, &fp)| (fp == wanted && self.slots[i].key.matches(key)).then_some(i))
    }

    /// Index of the slot exactly matching the owned key.
    fn position_matching_owned(&self, key: &CacheKey) -> Option<usize> {
        let wanted = key.fingerprint;
        self.fingerprints
            .iter()
            .enumerate()
            .find_map(|(i, &fp)| (fp == wanted && self.slots[i].key == *key).then_some(i))
    }

    /// The configured capacity in fault sets.
    #[inline]
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of fault sets currently cached.
    #[must_use]
    pub fn fault_sets_cached(&self) -> usize {
        self.slots.len()
    }

    /// Number of trees currently cached across all fault sets.
    #[must_use]
    pub fn trees_cached(&self) -> usize {
        self.trees_cached
    }

    /// Looks up the tree rooted at `source` under the given borrowed key,
    /// refreshing the slot's recency on a fault-set hit. Allocation-free
    /// apart from the `Arc` handle clone.
    #[must_use]
    pub fn get_ref(&mut self, key: &KeyRef<'_>, source: VertexId) -> Option<Arc<ShortestPathTree>> {
        self.tick += 1;
        let tick = self.tick;
        let i = self.position_matching(key)?;
        let slot = &mut self.slots[i];
        slot.last_used = tick;
        slot.trees
            .iter()
            .find(|&&(s, _)| s == source)
            .map(|(_, tree)| Arc::clone(tree))
    }

    /// Looks up a tree rooted at either endpoint (`u` preferred) with a
    /// single slot scan — the undirected query path's hit probe.
    #[must_use]
    pub fn get_either_ref(
        &mut self,
        key: &KeyRef<'_>,
        u: VertexId,
        v: VertexId,
    ) -> Option<Arc<ShortestPathTree>> {
        self.tick += 1;
        let tick = self.tick;
        let i = self.position_matching(key)?;
        let slot = &mut self.slots[i];
        slot.last_used = tick;
        let mut fallback = None;
        for (root, tree) in &slot.trees {
            if *root == u {
                return Some(Arc::clone(tree));
            }
            if *root == v && fallback.is_none() {
                fallback = Some(tree);
            }
        }
        fallback.map(Arc::clone)
    }

    /// Looks up the tree rooted at `source` under an owned key (test and
    /// tooling convenience; the hot path uses [`TreeCache::get_ref`]).
    #[must_use]
    pub fn get(&mut self, key: &CacheKey, source: VertexId) -> Option<Arc<ShortestPathTree>> {
        self.tick += 1;
        let tick = self.tick;
        let i = self.position_matching_owned(key)?;
        let slot = &mut self.slots[i];
        slot.last_used = tick;
        slot.trees
            .iter()
            .find(|&&(s, _)| s == source)
            .map(|(_, tree)| Arc::clone(tree))
    }

    /// Inserts a tree, evicting the least-recently-used fault set when a new
    /// fault set would exceed capacity. With capacity 0 this is a no-op.
    pub fn insert(&mut self, key: CacheKey, source: VertexId, tree: Arc<ShortestPathTree>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.position_matching_owned(&key) {
            let slot = &mut self.slots[i];
            slot.last_used = tick;
            if let Some(entry) = slot.trees.iter_mut().find(|(s, _)| *s == source) {
                entry.1 = tree;
            } else {
                slot.trees.push((source, tree));
                self.trees_cached += 1;
            }
            return;
        }
        if self.slots.len() >= self.capacity {
            if let Some(victim) = (0..self.slots.len()).min_by_key(|&i| self.slots[i].last_used) {
                // The victim slot is moved out whole; its key is dropped
                // without an intermediate clone. The fingerprint lane mirrors
                // the swap_remove.
                let evicted = self.slots.swap_remove(victim);
                self.fingerprints.swap_remove(victim);
                self.trees_cached -= evicted.trees.len();
            }
        }
        self.fingerprints.push(key.fingerprint());
        self.slots.push(CacheSlot {
            key,
            trees: vec![(source, tree)],
            last_used: tick,
        });
        self.trees_cached += 1;
    }

    /// Heap bytes held by the cache: the fingerprint lane, every slot's key
    /// (sorted fault lists) and every cached tree's distance/parent arrays.
    /// Trees are counted once per cache entry — a tree `Arc` also held by a
    /// reader is still attributed here, since the cache is what keeps it
    /// alive past the query.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.fingerprints.capacity() * std::mem::size_of::<u64>()
            + self.slots.capacity() * std::mem::size_of::<CacheSlot>();
        for slot in &self.slots {
            bytes += slot.key.vertices.capacity() * std::mem::size_of::<VertexId>()
                + slot.key.edges.capacity() * std::mem::size_of::<EdgeId>()
                + slot
                    .trees
                    .capacity()
                    .saturating_mul(std::mem::size_of::<(VertexId, Arc<ShortestPathTree>)>());
            for (_, tree) in &slot.trees {
                bytes += tree.memory_bytes();
            }
        }
        bytes
    }

    /// Drops every cached tree (used when the spanner or damage changes).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.fingerprints.clear();
        self.trees_cached = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::dijkstra::DijkstraScratch;
    use ftspan_graph::{eid, generators, vid};

    fn tree_for(source: usize) -> Arc<ShortestPathTree> {
        let g = generators::path(6);
        Arc::new(DijkstraScratch::new().shortest_path_tree(&g, vid(source)))
    }

    #[test]
    fn keys_are_equal_iff_fault_sets_are() {
        let a = CacheKey::from_fault_set(&FaultSet::vertices([vid(3), vid(1)]));
        let b = CacheKey::from_fault_set(&FaultSet::vertices([vid(1), vid(3)]));
        let c = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        let d = CacheKey::from_fault_set(&FaultSet::edges([eid(1), eid(3)]));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn key_ref_agrees_with_owned_key() {
        let faults = FaultSet::vertices([vid(2), vid(9)]);
        let owned = CacheKey::namespaced(3, &faults);
        let borrowed = KeyRef::new(3, &faults);
        assert_eq!(owned.fingerprint(), borrowed.fingerprint());
        assert_eq!(borrowed.to_owned_key(), owned);
        assert!(owned.matches(&borrowed));
        // Mismatched namespace or fault set must not match.
        assert!(!owned.matches(&KeyRef::new(4, &faults)));
        let other = FaultSet::vertices([vid(2)]);
        assert!(!owned.matches(&KeyRef::new(3, &other)));
    }

    #[test]
    fn namespaces_separate_identical_local_fault_patterns() {
        // Regression: shard-local fault sets are expressed in remapped local
        // ids, so two shards with identical local fault patterns used to
        // derive equal keys and could share cache entries. Namespaced keys
        // must never collide across shards.
        let faults = FaultSet::vertices([vid(1), vid(3)]);
        let shard_a = CacheKey::namespaced(1, &faults);
        let shard_b = CacheKey::namespaced(2, &faults);
        assert_ne!(shard_a, shard_b);
        assert_ne!(shard_a.fingerprint(), shard_b.fingerprint());
        assert_eq!(shard_a.namespace(), 1);
        // Namespace 0 is the legacy global namespace.
        assert_eq!(
            CacheKey::namespaced(0, &faults),
            CacheKey::from_fault_set(&faults)
        );

        // End to end: a cache fed trees under shard A's key must miss for
        // shard B even though the local fault lists and sources are equal.
        let mut cache = TreeCache::new(4);
        cache.insert(shard_a.clone(), vid(0), tree_for(0));
        assert!(cache.get(&shard_a, vid(0)).is_some());
        assert!(
            cache.get(&shard_b, vid(0)).is_none(),
            "shards must not share cache entries"
        );
        assert!(cache.get_ref(&KeyRef::new(1, &faults), vid(0)).is_some());
        assert!(cache.get_ref(&KeyRef::new(2, &faults), vid(0)).is_none());
    }

    #[test]
    fn hit_and_miss_roundtrip() {
        let mut cache = TreeCache::new(4);
        let faults = FaultSet::vertices([vid(2)]);
        let key = CacheKey::from_fault_set(&faults);
        assert!(cache.get(&key, vid(0)).is_none());
        cache.insert(key.clone(), vid(0), tree_for(0));
        let hit = cache.get(&key, vid(0)).expect("cached");
        assert_eq!(hit.source(), vid(0));
        assert!(
            cache.get(&key, vid(1)).is_none(),
            "other sources still miss"
        );
        // Borrowed-key lookups see the same entry.
        let hit = cache
            .get_ref(&KeyRef::new(0, &faults), vid(0))
            .expect("cached");
        assert_eq!(hit.source(), vid(0));
        assert_eq!(cache.fault_sets_cached(), 1);
        assert_eq!(cache.trees_cached(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_fault_set() {
        let mut cache = TreeCache::new(2);
        let k1 = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        let k2 = CacheKey::from_fault_set(&FaultSet::vertices([vid(2)]));
        let k3 = CacheKey::from_fault_set(&FaultSet::vertices([vid(3)]));
        cache.insert(k1.clone(), vid(0), tree_for(0));
        cache.insert(k2.clone(), vid(0), tree_for(0));
        // Touch k1 so k2 becomes the LRU.
        assert!(cache.get(&k1, vid(0)).is_some());
        cache.insert(k3.clone(), vid(0), tree_for(0));
        assert_eq!(cache.fault_sets_cached(), 2);
        assert!(cache.get(&k1, vid(0)).is_some());
        assert!(cache.get(&k2, vid(0)).is_none(), "k2 evicted");
        assert!(cache.get(&k3, vid(0)).is_some());
    }

    #[test]
    fn multiple_trees_per_fault_set_count_once_per_source() {
        let mut cache = TreeCache::new(2);
        let key = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        cache.insert(key.clone(), vid(0), tree_for(0));
        cache.insert(key.clone(), vid(2), tree_for(2));
        cache.insert(key.clone(), vid(2), tree_for(2)); // overwrite, not growth
        assert_eq!(cache.trees_cached(), 2);
        assert_eq!(cache.fault_sets_cached(), 1);
    }

    #[test]
    fn eviction_accounts_all_trees_of_the_victim() {
        let mut cache = TreeCache::new(1);
        let k1 = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        let k2 = CacheKey::from_fault_set(&FaultSet::vertices([vid(2)]));
        cache.insert(k1.clone(), vid(0), tree_for(0));
        cache.insert(k1.clone(), vid(3), tree_for(3));
        assert_eq!(cache.trees_cached(), 2);
        cache.insert(k2.clone(), vid(0), tree_for(0));
        assert_eq!(cache.fault_sets_cached(), 1);
        assert_eq!(cache.trees_cached(), 1);
        assert!(cache.get(&k1, vid(0)).is_none());
        assert!(cache.get(&k2, vid(0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = TreeCache::new(0);
        let key = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        cache.insert(key.clone(), vid(0), tree_for(0));
        assert!(cache.get(&key, vid(0)).is_none());
        assert_eq!(cache.trees_cached(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut cache = TreeCache::new(4);
        let key = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        cache.insert(key.clone(), vid(0), tree_for(0));
        cache.clear();
        assert_eq!(cache.fault_sets_cached(), 0);
        assert_eq!(cache.trees_cached(), 0);
        assert!(cache.get(&key, vid(0)).is_none());
    }
}
