//! The fault-set-keyed LRU cache of shortest-path trees.
//!
//! One Dijkstra run from a source `s` on `H ∖ F` answers every `(s, *)`
//! query under the same fault set, so the natural cache granularity is a
//! **tree**, grouped per fault set: real query traffic is bursty in `F`
//! (a fault wave stays active while many queries arrive), which makes the
//! per-fault-set hit rate high even with a small capacity.
//!
//! Keys combine the `O(|F|)` [`fault_fingerprint`] from `ftspan-graph` (for
//! cheap hashing) with the exact sorted fault lists (for collision-proof
//! equality). Eviction is least-recently-used over fault sets; all trees of
//! an evicted fault set go together.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ftspan::FaultSet;
use ftspan_graph::dijkstra::ShortestPathTree;
use ftspan_graph::{fault_fingerprint_namespaced, VertexId};

/// Exact cache key for one fault set, qualified by a cache namespace.
///
/// `Hash` uses only the precomputed fingerprint; `Eq` compares the namespace
/// and the full sorted fault lists, so a (astronomically unlikely)
/// fingerprint collision degrades to a bucket collision, never to a wrong
/// answer.
///
/// The namespace exists because fault fingerprints are computed over *local*
/// element indices: two shards of a [`ShardedOracle`](crate::ShardedOracle)
/// with identical local fault patterns would otherwise produce equal keys and
/// could share cache entries through any cache layered across shards. Each
/// shard therefore keys its trees under a shard-unique namespace
/// (see [`OracleOptions::cache_namespace`](crate::OracleOptions)).
#[derive(Clone, Debug, Eq)]
pub struct CacheKey {
    fingerprint: u64,
    namespace: u64,
    vertices: Vec<u32>,
    edges: Vec<u32>,
}

impl CacheKey {
    /// Builds the key for a fault set in the global namespace `0` (fault
    /// sets are sorted and deduplicated by construction).
    #[must_use]
    pub fn from_fault_set(faults: &FaultSet) -> Self {
        Self::namespaced(0, faults)
    }

    /// Builds the key for a fault set under the given cache namespace.
    #[must_use]
    pub fn namespaced(namespace: u64, faults: &FaultSet) -> Self {
        let vertices: Vec<u32> = faults.vertex_faults().iter().map(|v| v.as_u32()).collect();
        let edges: Vec<u32> = faults.edge_faults().iter().map(|e| e.as_u32()).collect();
        let fingerprint = fault_fingerprint_namespaced(
            namespace,
            faults.vertex_faults().iter().copied(),
            faults.edge_faults().iter().copied(),
        );
        Self {
            fingerprint,
            namespace,
            vertices,
            edges,
        }
    }

    /// The fingerprint used for hashing.
    #[inline]
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The cache namespace the key was derived under.
    #[inline]
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }
}

impl PartialEq for CacheKey {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.namespace == other.namespace
            && self.vertices == other.vertices
            && self.edges == other.edges
    }
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

/// All cached trees for one fault set.
#[derive(Debug, Default)]
struct FaultEntry {
    trees: HashMap<VertexId, Arc<ShortestPathTree>>,
    last_used: u64,
}

/// An LRU cache of shortest-path trees grouped by fault set.
///
/// The cache is a plain data structure; the oracle wraps it in a mutex and
/// keeps tree payloads behind [`Arc`] so workers clone a handle and release
/// the lock before walking the tree.
#[derive(Debug)]
pub struct TreeCache {
    capacity: usize,
    entries: HashMap<CacheKey, FaultEntry>,
    tick: u64,
    trees_cached: usize,
}

impl TreeCache {
    /// Creates a cache holding at most `capacity` fault sets (0 disables
    /// caching: every lookup misses and stores nothing).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            trees_cached: 0,
        }
    }

    /// The configured capacity in fault sets.
    #[inline]
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of fault sets currently cached.
    #[must_use]
    pub fn fault_sets_cached(&self) -> usize {
        self.entries.len()
    }

    /// Number of trees currently cached across all fault sets.
    #[must_use]
    pub fn trees_cached(&self) -> usize {
        self.trees_cached
    }

    /// Looks up the tree rooted at `source` under the given fault set,
    /// refreshing the entry's recency on a hit.
    #[must_use]
    pub fn get(&mut self, key: &CacheKey, source: VertexId) -> Option<Arc<ShortestPathTree>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        entry.trees.get(&source).cloned()
    }

    /// Inserts a tree, evicting the least-recently-used fault set when a new
    /// fault set would exceed capacity. With capacity 0 this is a no-op.
    pub fn insert(&mut self, key: CacheKey, source: VertexId, tree: Arc<ShortestPathTree>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                if let Some(evicted) = self.entries.remove(&victim) {
                    self.trees_cached -= evicted.trees.len();
                }
            }
        }
        let entry = self.entries.entry(key).or_default();
        entry.last_used = tick;
        if entry.trees.insert(source, tree).is_none() {
            self.trees_cached += 1;
        }
    }

    /// Drops every cached tree (used when the spanner or damage changes).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.trees_cached = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::dijkstra::DijkstraScratch;
    use ftspan_graph::{eid, generators, vid};

    fn tree_for(source: usize) -> Arc<ShortestPathTree> {
        let g = generators::path(6);
        Arc::new(DijkstraScratch::new().shortest_path_tree(&g, vid(source)))
    }

    #[test]
    fn keys_are_equal_iff_fault_sets_are() {
        let a = CacheKey::from_fault_set(&FaultSet::vertices([vid(3), vid(1)]));
        let b = CacheKey::from_fault_set(&FaultSet::vertices([vid(1), vid(3)]));
        let c = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        let d = CacheKey::from_fault_set(&FaultSet::edges([eid(1), eid(3)]));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn namespaces_separate_identical_local_fault_patterns() {
        // Regression: shard-local fault sets are expressed in remapped local
        // ids, so two shards with identical local fault patterns used to
        // derive equal keys and could share cache entries. Namespaced keys
        // must never collide across shards.
        let faults = FaultSet::vertices([vid(1), vid(3)]);
        let shard_a = CacheKey::namespaced(1, &faults);
        let shard_b = CacheKey::namespaced(2, &faults);
        assert_ne!(shard_a, shard_b);
        assert_ne!(shard_a.fingerprint(), shard_b.fingerprint());
        assert_eq!(shard_a.namespace(), 1);
        // Namespace 0 is the legacy global namespace.
        assert_eq!(
            CacheKey::namespaced(0, &faults),
            CacheKey::from_fault_set(&faults)
        );

        // End to end: a cache fed trees under shard A's key must miss for
        // shard B even though the local fault lists and sources are equal.
        let mut cache = TreeCache::new(4);
        cache.insert(shard_a.clone(), vid(0), tree_for(0));
        assert!(cache.get(&shard_a, vid(0)).is_some());
        assert!(
            cache.get(&shard_b, vid(0)).is_none(),
            "shards must not share cache entries"
        );
    }

    #[test]
    fn hit_and_miss_roundtrip() {
        let mut cache = TreeCache::new(4);
        let key = CacheKey::from_fault_set(&FaultSet::vertices([vid(2)]));
        assert!(cache.get(&key, vid(0)).is_none());
        cache.insert(key.clone(), vid(0), tree_for(0));
        let hit = cache.get(&key, vid(0)).expect("cached");
        assert_eq!(hit.source(), vid(0));
        assert!(
            cache.get(&key, vid(1)).is_none(),
            "other sources still miss"
        );
        assert_eq!(cache.fault_sets_cached(), 1);
        assert_eq!(cache.trees_cached(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_fault_set() {
        let mut cache = TreeCache::new(2);
        let k1 = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        let k2 = CacheKey::from_fault_set(&FaultSet::vertices([vid(2)]));
        let k3 = CacheKey::from_fault_set(&FaultSet::vertices([vid(3)]));
        cache.insert(k1.clone(), vid(0), tree_for(0));
        cache.insert(k2.clone(), vid(0), tree_for(0));
        // Touch k1 so k2 becomes the LRU.
        assert!(cache.get(&k1, vid(0)).is_some());
        cache.insert(k3.clone(), vid(0), tree_for(0));
        assert_eq!(cache.fault_sets_cached(), 2);
        assert!(cache.get(&k1, vid(0)).is_some());
        assert!(cache.get(&k2, vid(0)).is_none(), "k2 evicted");
        assert!(cache.get(&k3, vid(0)).is_some());
    }

    #[test]
    fn multiple_trees_per_fault_set_count_once_per_source() {
        let mut cache = TreeCache::new(2);
        let key = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        cache.insert(key.clone(), vid(0), tree_for(0));
        cache.insert(key.clone(), vid(2), tree_for(2));
        cache.insert(key.clone(), vid(2), tree_for(2)); // overwrite, not growth
        assert_eq!(cache.trees_cached(), 2);
        assert_eq!(cache.fault_sets_cached(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = TreeCache::new(0);
        let key = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        cache.insert(key.clone(), vid(0), tree_for(0));
        assert!(cache.get(&key, vid(0)).is_none());
        assert_eq!(cache.trees_cached(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut cache = TreeCache::new(4);
        let key = CacheKey::from_fault_set(&FaultSet::vertices([vid(1)]));
        cache.insert(key.clone(), vid(0), tree_for(0));
        cache.clear();
        assert_eq!(cache.fault_sets_cached(), 0);
        assert_eq!(cache.trees_cached(), 0);
        assert!(cache.get(&key, vid(0)).is_none());
    }
}
