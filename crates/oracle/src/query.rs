//! The request/response vocabulary of the oracle.

use ftspan::FaultSet;
use ftspan_graph::VertexId;

/// What a [`Query`] asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Only the distance `d_{H∖F}(u, v)`.
    Distance,
    /// The distance plus an explicit shortest path in `H ∖ F`.
    Path,
}

/// One request against the oracle: a vertex pair and the fault set the answer
/// must survive.
///
/// Edge fault identifiers follow the workspace convention: they refer to the
/// oracle's *input graph* and are translated to the spanner by endpoints.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// The failed vertices or edges the answer must route around.
    pub faults: FaultSet,
    /// Whether an explicit path is requested.
    pub kind: QueryKind,
}

impl Query {
    /// A distance query.
    #[must_use]
    pub fn distance(u: VertexId, v: VertexId, faults: FaultSet) -> Self {
        Self {
            u,
            v,
            faults,
            kind: QueryKind::Distance,
        }
    }

    /// A path query.
    #[must_use]
    pub fn path(u: VertexId, v: VertexId, faults: FaultSet) -> Self {
        Self {
            u,
            v,
            faults,
            kind: QueryKind::Path,
        }
    }
}

/// The oracle's response to one [`Query`].
///
/// Trait-generic callers (anything written against
/// [`SpannerOracle`](crate::SpannerOracle)) should read answers through the
/// [`Answer::distance`] / [`Answer::path`] / [`Answer::is_reachable`]
/// accessors rather than matching on the fields; the fields stay public for
/// construction and destructuring inside the serving layer.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The distance in the surviving spanner `H ∖ F`, or `None` when the
    /// endpoints are disconnected by the faults (or an endpoint itself
    /// failed). Prefer [`Answer::distance`] outside the serving layer.
    pub distance: Option<f64>,
    /// The witness path (source first), for [`QueryKind::Path`] queries that
    /// are reachable; `None` otherwise. Prefer [`Answer::path`] outside the
    /// serving layer.
    pub path: Option<Vec<VertexId>>,
    /// Whether the answer was served from a cached shortest-path tree.
    pub cache_hit: bool,
}

impl Answer {
    /// Returns `true` when the pair is connected in `H ∖ F`.
    #[must_use]
    pub fn is_reachable(&self) -> bool {
        self.distance.is_some()
    }

    /// The distance in `H ∖ F`, or `None` when the faults disconnect the
    /// pair (or fault an endpoint).
    #[inline]
    #[must_use]
    pub fn distance(&self) -> Option<f64> {
        self.distance
    }

    /// The witness path (source first), present only for
    /// [`QueryKind::Path`] queries whose pair is reachable.
    #[inline]
    #[must_use]
    pub fn path(&self) -> Option<&[VertexId]> {
        self.path.as_deref()
    }

    /// Whether the answer was served from a cached shortest-path tree.
    #[inline]
    #[must_use]
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::vid;

    #[test]
    fn constructors_set_kind() {
        let f = FaultSet::vertices([vid(1)]);
        assert_eq!(
            Query::distance(vid(0), vid(2), f.clone()).kind,
            QueryKind::Distance
        );
        assert_eq!(Query::path(vid(0), vid(2), f).kind, QueryKind::Path);
    }

    #[test]
    fn reachability_mirrors_distance() {
        let yes = Answer {
            distance: Some(2.0),
            path: None,
            cache_hit: false,
        };
        let no = Answer {
            distance: None,
            path: None,
            cache_hit: true,
        };
        assert!(yes.is_reachable());
        assert!(!no.is_reachable());
        assert_eq!(yes.distance(), Some(2.0));
        assert_eq!(no.distance(), None);
        assert_eq!(yes.path(), None);
        assert!(!yes.cache_hit());
        assert!(no.cache_hit());
    }

    #[test]
    fn path_accessor_borrows_the_witness() {
        let a = Answer {
            distance: Some(2.0),
            path: Some(vec![vid(0), vid(3), vid(2)]),
            cache_hit: false,
        };
        assert_eq!(a.path(), Some(&[vid(0), vid(3), vid(2)][..]));
    }
}
