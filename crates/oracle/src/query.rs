//! The request/response vocabulary of the oracle.

use ftspan::FaultSet;
use ftspan_graph::VertexId;

/// What a [`Query`] asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Only the distance `d_{H∖F}(u, v)`.
    Distance,
    /// The distance plus an explicit shortest path in `H ∖ F`.
    Path,
}

/// One request against the oracle: a vertex pair and the fault set the answer
/// must survive.
///
/// Edge fault identifiers follow the workspace convention: they refer to the
/// oracle's *input graph* and are translated to the spanner by endpoints.
#[derive(Clone, Debug)]
pub struct Query {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// The failed vertices or edges the answer must route around.
    pub faults: FaultSet,
    /// Whether an explicit path is requested.
    pub kind: QueryKind,
}

impl Query {
    /// A distance query.
    #[must_use]
    pub fn distance(u: VertexId, v: VertexId, faults: FaultSet) -> Self {
        Self {
            u,
            v,
            faults,
            kind: QueryKind::Distance,
        }
    }

    /// A path query.
    #[must_use]
    pub fn path(u: VertexId, v: VertexId, faults: FaultSet) -> Self {
        Self {
            u,
            v,
            faults,
            kind: QueryKind::Path,
        }
    }
}

/// The oracle's response to one [`Query`].
#[derive(Clone, Debug)]
pub struct Answer {
    /// The distance in the surviving spanner `H ∖ F`, or `None` when the
    /// endpoints are disconnected by the faults (or an endpoint itself
    /// failed).
    pub distance: Option<f64>,
    /// The witness path (source first), for [`QueryKind::Path`] queries that
    /// are reachable; `None` otherwise.
    pub path: Option<Vec<VertexId>>,
    /// Whether the answer was served from a cached shortest-path tree.
    pub cache_hit: bool,
}

impl Answer {
    /// Returns `true` when the pair is connected in `H ∖ F`.
    #[must_use]
    pub fn is_reachable(&self) -> bool {
        self.distance.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::vid;

    #[test]
    fn constructors_set_kind() {
        let f = FaultSet::vertices([vid(1)]);
        assert_eq!(
            Query::distance(vid(0), vid(2), f.clone()).kind,
            QueryKind::Distance
        );
        assert_eq!(Query::path(vid(0), vid(2), f).kind, QueryKind::Path);
    }

    #[test]
    fn reachability_mirrors_distance() {
        let yes = Answer {
            distance: Some(2.0),
            path: None,
            cache_hit: false,
        };
        let no = Answer {
            distance: None,
            path: None,
            cache_hit: true,
        };
        assert!(yes.is_reachable());
        assert!(!no.is_reachable());
    }
}
