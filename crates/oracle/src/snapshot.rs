//! Warm-restart snapshots: serialize an oracle's expensive state, restore it
//! without re-running construction.
//!
//! The paper's greedy construction dominates the cost of standing up an
//! oracle — on a thousand-vertex sharded deployment it is minutes of CPU,
//! while everything the serving layer derives from it (regions, boundary
//! index, frontiers) is a cheap pure function of the constructed state. A
//! [`Snapshot`] therefore persists exactly the expensive, non-derivable
//! state — graphs, spanner, parameters, certificates, accumulated damage,
//! shard plan, epochs — and [`Snapshot::restore`] rebuilds the derived
//! serving structures deterministically. Restored oracles give **bit-
//! identical answers**: the graphs round-trip through
//! [`ftspan_graph::wire`] with exact weight bits and identical CSR layout,
//! and every downstream structure is deterministic in them.
//!
//! Transient serving state — tree caches, metrics, scratch buffers — is
//! deliberately *not* captured; a restored oracle starts with cold caches
//! and zeroed counters, exactly like a freshly built one.
//!
//! Bit-identical restoration is also the **replication bootstrap handoff**:
//! a [`Replica`](crate::replication::Replica) starts life as
//! `Snapshot::restore` of a primary's capture, then replays the primary's
//! wave journal from the snapshot's epoch — determinism of both the restore
//! and of `apply_wave` is what lets a re-captured replica snapshot come out
//! byte-identical to the primary's (the `replication_vs_primary` suite pins
//! this).
//!
//! ## Wire format
//!
//! ```text
//! magic "FTSPANSS" (8) · version u32 · kind u8 · payload_len u64 ·
//! checksum u64 (FNV-1a-64 of payload) · payload
//! ```
//!
//! `kind` is `0` for a [`FaultOracle`], `1` for a [`ShardedOracle`], `2`
//! for a [`HierarchicalOracle`]. The
//! version is bumped on any payload layout change; [`Snapshot::restore`]
//! rejects unknown versions, foreign magic, checksum mismatches, and
//! snapshots of the wrong kind with a typed [`SnapshotError`] — never a
//! panic, since these bytes cross process boundaries.
//!
//! ```
//! use ftspan::SpannerParams;
//! use ftspan_graph::generators;
//! use ftspan_oracle::{FaultOracle, OracleOptions, Snapshot};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let graph = generators::connected_gnp(24, 0.3, &mut rng);
//! let oracle = FaultOracle::build(graph, SpannerParams::vertex(2, 1), OracleOptions::default());
//!
//! let bytes = Snapshot::capture(&oracle);
//! let warm: FaultOracle = Snapshot::restore(&bytes).unwrap();
//! assert_eq!(warm.spanner().edge_count(), oracle.spanner().edge_count());
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

use ftspan::wire::{decode_certificate, decode_params, encode_certificate, encode_params};
use ftspan_graph::wire::{fnv1a64, WireError, WireReader, WireWriter};
use ftspan_graph::{vid, Graph, VertexId};

use crate::boundary::BoundaryIndex;
use crate::cache::TreeCache;
use crate::hierarchy::{leaf_namespace, HierarchicalOptions, HierarchicalOracle};
use crate::metrics::OracleMetrics;
use crate::oracle::{FaultOracle, OracleOptions};
use crate::shard::{
    shard_namespace, Region, ShardPlan, ShardPlanOptions, ShardedMetrics, ShardedOptions,
    ShardedOracle,
};

/// Errors produced when restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The header names a kind this build does not know.
    UnknownKind {
        /// The kind byte found in the header.
        tag: u8,
    },
    /// The snapshot holds a different oracle kind than the one requested.
    WrongKind {
        /// The kind the caller asked to restore.
        expected: SnapshotKind,
        /// The kind recorded in the header.
        found: SnapshotKind,
    },
    /// The payload checksum does not match the header — the bytes were
    /// truncated or corrupted in storage or transit.
    ChecksumMismatch,
    /// The payload failed structural decoding.
    Wire(WireError),
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not an ftspan snapshot (bad magic)"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads version {})",
                    Snapshot::VERSION
                )
            }
            Self::UnknownKind { tag } => write!(f, "unknown snapshot kind tag {tag}"),
            Self::WrongKind { expected, found } => {
                write!(
                    f,
                    "snapshot holds a {found:?} oracle, expected {expected:?}"
                )
            }
            Self::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            Self::Wire(e) => write!(f, "snapshot payload malformed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Which oracle backend a snapshot holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A [`FaultOracle`].
    Single,
    /// A [`ShardedOracle`].
    Sharded,
    /// A [`HierarchicalOracle`].
    Hierarchical,
}

impl SnapshotKind {
    fn tag(self) -> u8 {
        match self {
            Self::Single => 0,
            Self::Sharded => 1,
            Self::Hierarchical => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            0 => Ok(Self::Single),
            1 => Ok(Self::Sharded),
            2 => Ok(Self::Hierarchical),
            tag => Err(SnapshotError::UnknownKind { tag }),
        }
    }
}

mod sealed {
    /// Restricts [`Snapshottable`](super::Snapshottable) to the shipped
    /// oracle backends — the payload codecs reassemble crate-private state.
    pub trait Sealed {}
    impl Sealed for crate::oracle::FaultOracle {}
    impl Sealed for crate::shard::ShardedOracle {}
    impl Sealed for crate::hierarchy::HierarchicalOracle {}
}

/// An oracle backend that can be captured into and restored from snapshot
/// bytes. Sealed: implemented by [`FaultOracle`], [`ShardedOracle`], and
/// [`HierarchicalOracle`] only.
pub trait Snapshottable: sealed::Sealed + Sized {
    /// The kind tag written into the snapshot header.
    #[doc(hidden)]
    const KIND: SnapshotKind;

    /// Encodes the non-derivable state onto `w`.
    #[doc(hidden)]
    fn encode_payload(&self, w: &mut WireWriter);

    /// Decodes a payload written by [`Snapshottable::encode_payload`] and
    /// rebuilds the derived serving state.
    #[doc(hidden)]
    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, SnapshotError>;
}

/// Capture and restore entry points for oracle snapshots. See the
/// [module docs](self) for the format and guarantees.
#[derive(Debug)]
pub struct Snapshot;

impl Snapshot {
    /// The magic bytes every snapshot starts with.
    pub const MAGIC: [u8; 8] = *b"FTSPANSS";
    /// The format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Serializes an oracle into self-contained snapshot bytes.
    #[must_use]
    pub fn capture<O: Snapshottable>(oracle: &O) -> Vec<u8> {
        let mut payload = WireWriter::new();
        oracle.encode_payload(&mut payload);
        let payload = payload.into_vec();
        let mut out = WireWriter::with_capacity(payload.len() + 64);
        for b in Self::MAGIC {
            out.put_u8(b);
        }
        out.put_u32(Self::VERSION);
        out.put_u8(O::KIND.tag());
        out.put_len(payload.len());
        out.put_u64(fnv1a64(&payload));
        let mut bytes = out.into_vec();
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Reads the kind of oracle a snapshot holds without decoding its
    /// payload, so a generic loader can dispatch.
    pub fn peek_kind(bytes: &[u8]) -> Result<SnapshotKind, SnapshotError> {
        Ok(Self::read_header(&mut WireReader::new(bytes))?.0)
    }

    /// Deserializes snapshot bytes back into a warm oracle.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the bytes are not a snapshot, were
    /// written by an unknown version, hold the wrong oracle kind, fail the
    /// checksum, or decode to structurally invalid state.
    pub fn restore<O: Snapshottable>(bytes: &[u8]) -> Result<O, SnapshotError> {
        let mut r = WireReader::new(bytes);
        let (kind, payload) = Self::read_header(&mut r)?;
        if kind != O::KIND {
            return Err(SnapshotError::WrongKind {
                expected: O::KIND,
                found: kind,
            });
        }
        let mut payload = WireReader::new(payload);
        let oracle = O::decode_payload(&mut payload)?;
        payload.finish()?;
        Ok(oracle)
    }

    /// Validates magic, version, length, and checksum; returns the kind and
    /// the checksummed payload slice.
    fn read_header<'a>(r: &mut WireReader<'a>) -> Result<(SnapshotKind, &'a [u8]), SnapshotError> {
        if r.take(Self::MAGIC.len())
            .map_err(|_| SnapshotError::BadMagic)?
            != Self::MAGIC
        {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != Self::VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let kind = SnapshotKind::from_tag(r.u8()?)?;
        let len = r.len(1)?;
        let checksum = r.u64()?;
        let payload = r.take(len)?;
        r.finish()?;
        if fnv1a64(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        Ok((kind, payload))
    }
}

fn encode_oracle_options(options: &OracleOptions, w: &mut WireWriter) {
    w.put_len(options.cache_capacity);
    w.put_len(options.workers);
    w.put_u8(u8::from(options.collect_certificates));
    w.put_u64(options.cache_namespace);
}

fn decode_oracle_options(r: &mut WireReader<'_>) -> Result<OracleOptions, SnapshotError> {
    Ok(OracleOptions {
        cache_capacity: r.len(0)?,
        workers: r.len(0)?,
        collect_certificates: r.u8()? != 0,
        cache_namespace: r.u64()?,
    })
}

fn decode_graph(r: &mut WireReader<'_>) -> Result<Graph, SnapshotError> {
    Ok(Graph::decode_wire(r)?)
}

impl Snapshottable for FaultOracle {
    const KIND: SnapshotKind = SnapshotKind::Single;

    fn encode_payload(&self, w: &mut WireWriter) {
        self.base_graph.encode_wire(w);
        self.graph.encode_wire(w);
        self.spanner.encode_wire(w);
        encode_params(self.params, w);
        encode_oracle_options(&self.options, w);
        w.put_len(self.certificates.len());
        for cert in &self.certificates {
            encode_certificate(cert, w);
        }
        w.put_len(self.damage_vertices.len());
        for &v in &self.damage_vertices {
            w.put_u32(v.as_u32());
        }
        w.put_len(self.damage_edges.len());
        for &(u, v) in &self.damage_edges {
            w.put_u32(u.as_u32());
            w.put_u32(v.as_u32());
        }
        w.put_u64(self.epoch);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, SnapshotError> {
        let base_graph = decode_graph(r)?;
        let graph = decode_graph(r)?;
        let spanner = decode_graph(r)?;
        let n = graph.vertex_count();
        if base_graph.vertex_count() != n || spanner.vertex_count() != n {
            return Err(
                WireError::malformed("base graph, graph, and spanner vertex sets differ").into(),
            );
        }
        let params = decode_params(r)?;
        let options = decode_oracle_options(r)?;
        let cert_count = r.len(9)?;
        let mut certificates = Vec::with_capacity(cert_count);
        for _ in 0..cert_count {
            certificates.push(decode_certificate(r)?);
        }
        let dv_count = r.len(4)?;
        let mut damage_vertices = Vec::with_capacity(dv_count);
        for _ in 0..dv_count {
            damage_vertices.push(read_vertex(r, n)?);
        }
        let de_count = r.len(8)?;
        let mut damage_edges = Vec::with_capacity(de_count);
        for _ in 0..de_count {
            damage_edges.push((read_vertex(r, n)?, read_vertex(r, n)?));
        }
        let epoch = r.u64()?;
        let cache = Mutex::new(TreeCache::new(options.cache_capacity));
        Ok(Self {
            base_graph,
            graph,
            spanner,
            params,
            options,
            certificates,
            damage_vertices,
            damage_edges,
            epoch,
            cache,
            metrics: OracleMetrics::default(),
            wave_scratch: crate::churn::WaveScratch::default(),
        })
    }
}

fn read_vertex(r: &mut WireReader<'_>, n: usize) -> Result<VertexId, SnapshotError> {
    let raw = r.u32()? as usize;
    if raw >= n {
        return Err(
            WireError::malformed(format!("vertex id {raw} out of range for {n} vertices")).into(),
        );
    }
    Ok(vid(raw))
}

impl Snapshottable for ShardedOracle {
    const KIND: SnapshotKind = SnapshotKind::Sharded;

    fn encode_payload(&self, w: &mut WireWriter) {
        self.global.encode_payload(w);
        w.put_len(self.plan.vertex_count());
        for i in 0..self.plan.vertex_count() {
            w.put_u32(self.plan.shard_of(vid(i)));
        }
        w.put_len(self.options.plan.shards);
        w.put_u64(self.options.plan.seed);
        w.put_f64(self.options.plan.beta);
        w.put_len(self.options.plan.partitions);
        match self.options.halo_radius {
            None => w.put_u8(0),
            Some(radius) => {
                w.put_u8(1);
                w.put_u32(radius);
            }
        }
        encode_oracle_options(&self.options.oracle, w);
        w.put_u32(self.halo_radius);
        w.put_len(self.shard_epochs.len());
        for &e in &self.shard_epochs {
            w.put_u64(e);
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, SnapshotError> {
        let global = FaultOracle::decode_payload(r)?;
        let n = r.len(4)?;
        if n != global.graph.vertex_count() {
            return Err(WireError::malformed(format!(
                "shard plan covers {n} vertices, graph has {}",
                global.graph.vertex_count()
            ))
            .into());
        }
        let mut shard_of = Vec::with_capacity(n);
        for _ in 0..n {
            shard_of.push(r.u32()?);
        }
        let plan = ShardPlan::from_shard_of(shard_of);
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards: r.len(0)?,
                seed: r.u64()?,
                beta: r.f64()?,
                partitions: r.len(0)?,
            },
            halo_radius: match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                tag => {
                    return Err(
                        WireError::malformed(format!("unknown halo radius tag {tag}")).into(),
                    )
                }
            },
            oracle: decode_oracle_options(r)?,
        };
        let halo_radius = r.u32()?;
        let epoch_count = r.len(8)?;
        if epoch_count != plan.shard_count() {
            return Err(WireError::malformed(format!(
                "{epoch_count} shard epochs for {} shards",
                plan.shard_count()
            ))
            .into());
        }
        let mut shard_epochs = Vec::with_capacity(epoch_count);
        for _ in 0..epoch_count {
            shard_epochs.push(r.u64()?);
        }

        // Everything below is *derived* state, rebuilt exactly the way
        // `ShardedOracle::from_result` and the churn fan-out build it — a
        // pure function of the restored graphs, spanner, and plan, so the
        // restored oracle serves bit-identical answers.
        let params = global.params;
        let boundary = BoundaryIndex::build(&global.spanner, &plan);
        // Each region is a pure function of (graph, spanner, plan), so a
        // restore may rebuild them on one scoped thread per shard; joining
        // in shard order keeps the result identical to the serial rebuild
        // `from_result` performs. Region rebuilding is the dominant cost of
        // a sharded restore (the greedy construction a cold build pays is
        // skipped entirely), so on multicore hosts the fan-out widens the
        // warm-restart win further; on a single core the threads would be
        // pure overhead, so the serial path is kept.
        let rebuild = |s: usize| {
            let members = global.spanner.halo_members(plan.core(s), halo_radius);
            Region::build(
                &global.graph,
                &global.spanner,
                params,
                &options.oracle,
                shard_namespace(s),
                &members,
            )
        };
        let rebuild = &rebuild;
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let built: Vec<Region> = if cores > 1 && plan.shard_count() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..plan.shard_count())
                    .map(|s| scope.spawn(move || rebuild(s)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("region rebuild must not panic"))
                    .collect()
            })
        } else {
            (0..plan.shard_count()).map(rebuild).collect()
        };
        // Intern sibling regions with identical member sets behind one Arc,
        // exactly as `from_result` does, so a restored oracle matches the
        // cold build's memory footprint.
        let mut regions: Vec<std::sync::Arc<Region>> = Vec::with_capacity(built.len());
        for region in built {
            let shared = regions
                .iter()
                .find(|r| r.remap.members() == region.remap.members())
                .map(std::sync::Arc::clone);
            regions.push(shared.unwrap_or_else(|| std::sync::Arc::new(region)));
        }
        Ok(Self {
            global,
            plan,
            boundary,
            regions,
            pair_regions: Mutex::new(HashMap::new()),
            shard_epochs,
            halo_radius,
            options,
            metrics: ShardedMetrics::default(),
            retired_cache_stats: (0, 0),
            wave_bfs: ftspan_graph::bfs::BfsScratch::default(),
        })
    }
}

impl Snapshottable for HierarchicalOracle {
    const KIND: SnapshotKind = SnapshotKind::Hierarchical;

    fn encode_payload(&self, w: &mut WireWriter) {
        self.global.encode_payload(w);
        w.put_len(self.leaf_plan.vertex_count());
        for i in 0..self.leaf_plan.vertex_count() {
            w.put_u32(self.leaf_plan.shard_of(vid(i)));
        }
        w.put_len(self.super_of_leaf.len());
        for &s in &self.super_of_leaf {
            w.put_u32(s);
        }
        w.put_len(self.options.plan.shards);
        w.put_u64(self.options.plan.seed);
        w.put_f64(self.options.plan.beta);
        w.put_len(self.options.plan.partitions);
        w.put_len(self.options.super_shards);
        match self.options.halo_radius {
            None => w.put_u8(0),
            Some(radius) => {
                w.put_u8(1);
                w.put_u32(radius);
            }
        }
        encode_oracle_options(&self.options.oracle, w);
        w.put_u32(self.halo_radius);
        w.put_len(self.leaf_epochs.len());
        for &e in &self.leaf_epochs {
            w.put_u64(e);
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, SnapshotError> {
        let global = FaultOracle::decode_payload(r)?;
        let n = r.len(4)?;
        if n != global.graph.vertex_count() {
            return Err(WireError::malformed(format!(
                "leaf plan covers {n} vertices, graph has {}",
                global.graph.vertex_count()
            ))
            .into());
        }
        let mut shard_of = Vec::with_capacity(n);
        for _ in 0..n {
            shard_of.push(r.u32()?);
        }
        let leaf_plan = ShardPlan::from_shard_of(shard_of);
        let leaf_count = r.len(4)?;
        if leaf_count != leaf_plan.shard_count() {
            return Err(WireError::malformed(format!(
                "{leaf_count} super assignments for {} leaves",
                leaf_plan.shard_count()
            ))
            .into());
        }
        let mut super_of_leaf = Vec::with_capacity(leaf_count);
        for _ in 0..leaf_count {
            super_of_leaf.push(r.u32()?);
        }
        let options = HierarchicalOptions {
            plan: ShardPlanOptions {
                shards: r.len(0)?,
                seed: r.u64()?,
                beta: r.f64()?,
                partitions: r.len(0)?,
            },
            super_shards: r.len(0)?,
            halo_radius: match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                tag => {
                    return Err(
                        WireError::malformed(format!("unknown halo radius tag {tag}")).into(),
                    )
                }
            },
            oracle: decode_oracle_options(r)?,
        };
        let halo_radius = r.u32()?;
        let epoch_count = r.len(8)?;
        if epoch_count != leaf_plan.shard_count() {
            return Err(WireError::malformed(format!(
                "{epoch_count} leaf epochs for {} leaves",
                leaf_plan.shard_count()
            ))
            .into());
        }
        let mut leaf_epochs = Vec::with_capacity(epoch_count);
        for _ in 0..epoch_count {
            leaf_epochs.push(r.u64()?);
        }

        // Derived state, rebuilt exactly as `HierarchicalOracle::from_result`
        // builds it: the vertex-level super plan composed from the leaf plan,
        // the level-2 boundary over it, and the interned leaf regions.
        let super_of_vertex: Vec<u32> = (0..leaf_plan.vertex_count())
            .map(|i| {
                super_of_leaf
                    .get(leaf_plan.shard_of(vid(i)) as usize)
                    .copied()
                    .ok_or_else(|| WireError::malformed("leaf id out of super assignment range"))
            })
            .collect::<Result<_, _>>()?;
        let super_plan = ShardPlan::from_shard_of(super_of_vertex);
        let params = global.params;
        let boundary = BoundaryIndex::build(&global.spanner, &super_plan);
        let rebuild = |leaf: usize| {
            let members = global
                .spanner
                .halo_members(leaf_plan.core(leaf), halo_radius);
            Region::build(
                &global.graph,
                &global.spanner,
                params,
                &options.oracle,
                leaf_namespace(leaf),
                &members,
            )
        };
        let rebuild = &rebuild;
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let built: Vec<Region> = if cores > 1 && leaf_plan.shard_count() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..leaf_plan.shard_count())
                    .map(|s| scope.spawn(move || rebuild(s)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("region rebuild must not panic"))
                    .collect()
            })
        } else {
            (0..leaf_plan.shard_count()).map(rebuild).collect()
        };
        let mut regions: Vec<std::sync::Arc<Region>> = Vec::with_capacity(built.len());
        for region in built {
            let shared = regions
                .iter()
                .find(|r| r.remap.members() == region.remap.members())
                .map(std::sync::Arc::clone);
            regions.push(shared.unwrap_or_else(|| std::sync::Arc::new(region)));
        }
        Ok(Self {
            global,
            leaf_plan,
            super_plan,
            super_of_leaf,
            boundary,
            regions,
            pair_regions: Mutex::new(HashMap::new()),
            leaf_epochs,
            halo_radius,
            options,
            metrics: ShardedMetrics::default(),
            retired_cache_stats: (0, 0),
            wave_bfs: ftspan_graph::bfs::BfsScratch::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan::{FaultSet, SpannerParams};
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::connected_gnp(40, 0.2, &mut rng)
    }

    fn single(seed: u64) -> FaultOracle {
        FaultOracle::build(
            workload(seed),
            SpannerParams::vertex(2, 1),
            OracleOptions::default(),
        )
    }

    #[test]
    fn single_oracle_round_trips_bit_identically() {
        let oracle = single(3);
        let bytes = Snapshot::capture(&oracle);
        let restored: FaultOracle = Snapshot::restore(&bytes).expect("restores");
        assert_eq!(restored.params(), oracle.params());
        assert_eq!(restored.epoch(), oracle.epoch());
        assert_eq!(restored.certificates().len(), oracle.certificates().len());
        for (u, v) in [(0, 17), (4, 31), (8, 8)] {
            for faults in [FaultSet::vertices([]), FaultSet::vertices([vid(5)])] {
                let want = oracle.distance(vid(u), vid(v), &faults);
                let got = restored.distance(vid(u), vid(v), &faults);
                assert_eq!(want.map(f64::to_bits), got.map(f64::to_bits));
            }
        }
        // Capturing the restored oracle reproduces the exact same bytes.
        assert_eq!(Snapshot::capture(&restored), bytes);
    }

    #[test]
    fn sharded_oracle_round_trips_with_derived_state() {
        let oracle = ShardedOracle::build(
            workload(4),
            SpannerParams::vertex(2, 1),
            ShardedOptions::default(),
        );
        let bytes = Snapshot::capture(&oracle);
        let restored: ShardedOracle = Snapshot::restore(&bytes).expect("restores");
        assert_eq!(restored.shard_count(), oracle.shard_count());
        assert_eq!(restored.plan(), oracle.plan());
        assert_eq!(restored.halo_radius(), oracle.halo_radius());
        assert_eq!(restored.shard_epochs(), oracle.shard_epochs());
        for s in 0..oracle.shard_count() {
            assert_eq!(restored.shard_members(s), oracle.shard_members(s));
        }
        assert_eq!(
            restored.boundary().cut_edges().len(),
            oracle.boundary().cut_edges().len()
        );
        assert_eq!(Snapshot::capture(&restored), bytes);
    }

    #[test]
    fn hierarchical_oracle_round_trips_with_derived_state() {
        let oracle = HierarchicalOracle::build(
            workload(8),
            SpannerParams::vertex(2, 1),
            HierarchicalOptions {
                super_shards: 2,
                ..HierarchicalOptions::default()
            },
        );
        let bytes = Snapshot::capture(&oracle);
        assert_eq!(
            Snapshot::peek_kind(&bytes).unwrap(),
            SnapshotKind::Hierarchical
        );
        let restored: HierarchicalOracle = Snapshot::restore(&bytes).expect("restores");
        assert_eq!(restored.leaf_count(), oracle.leaf_count());
        assert_eq!(restored.super_count(), oracle.super_count());
        assert_eq!(restored.leaf_epochs(), oracle.leaf_epochs());
        for leaf in 0..oracle.leaf_count() {
            assert_eq!(restored.super_of(leaf), oracle.super_of(leaf));
            assert_eq!(restored.leaf_members(leaf), oracle.leaf_members(leaf));
        }
        assert_eq!(
            restored.boundary().cut_edges().len(),
            oracle.boundary().cut_edges().len()
        );
        // Restored answers are bit-identical, including across a churn wave
        // applied to both copies.
        let mut warm = restored;
        let mut cold = oracle;
        let wave = FaultSet::vertices([vid(7)]);
        warm.apply_wave(&wave, &crate::ChurnConfig::default());
        cold.apply_wave(&wave, &crate::ChurnConfig::default());
        for (u, v) in [(0usize, 31usize), (3, 17), (12, 29)] {
            for faults in [FaultSet::vertices([]), FaultSet::vertices([vid(4)])] {
                assert_eq!(
                    warm.distance(vid(u), vid(v), &faults).map(f64::to_bits),
                    cold.distance(vid(u), vid(v), &faults).map(f64::to_bits)
                );
            }
        }
        assert_eq!(Snapshot::capture(&warm), Snapshot::capture(&cold));
    }

    #[test]
    fn peek_kind_reads_the_header_only() {
        let bytes = Snapshot::capture(&single(5));
        assert_eq!(Snapshot::peek_kind(&bytes).unwrap(), SnapshotKind::Single);
    }

    #[test]
    fn wrong_kind_is_a_typed_error() {
        let bytes = Snapshot::capture(&single(6));
        let err = Snapshot::restore::<ShardedOracle>(&bytes).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::WrongKind {
                expected: SnapshotKind::Sharded,
                found: SnapshotKind::Single,
            }
        );
    }

    #[test]
    fn corruption_and_truncation_are_rejected() {
        let bytes = Snapshot::capture(&single(7));
        // Flip one payload byte: checksum catches it.
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        assert_eq!(
            Snapshot::restore::<FaultOracle>(&corrupt).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
        // Truncation is caught before the checksum even runs.
        assert!(Snapshot::restore::<FaultOracle>(&bytes[..bytes.len() - 3]).is_err());
        // Foreign bytes are not a snapshot.
        assert_eq!(
            Snapshot::restore::<FaultOracle>(b"definitely not a snapshot").unwrap_err(),
            SnapshotError::BadMagic
        );
        // Future versions are refused, not misread.
        let mut future = bytes;
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Snapshot::restore::<FaultOracle>(&future).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99 }
        );
    }
}
