//! Hierarchical two-level sharding: shards of shards, with boundary state
//! kept **sub-linear** by indexing only super-shard portals.
//!
//! The flat [`ShardedOracle`](crate::ShardedOracle) keeps one
//! [`BoundaryIndex`] over the *leaf* partition. At 10⁵–10⁶ vertices that
//! index stops being small: the number of leaf shards grows, every leaf pair
//! can carry cut edges, and the per-pair bookkeeping approaches the size of
//! the spanner itself. The [`HierarchicalOracle`] interposes a second level:
//! leaves are grouped into **super-shards** (≈ √(leaf count) of them by
//! default), and the boundary index is built over the super partition only —
//! cut edges *inside* a super-shard are invisible to it, so its footprint
//! tracks the coarse partition, not the fine one.
//!
//! ## Exactness through both levels
//!
//! Hierarchical answers are bit-identical to the flat sharded oracle's and
//! to the single global oracle's, for the same reason flat answers are: a
//! region answer is returned **only** under the escape certificate of
//! [`Region::try_answer`] — `d(u, v) ≤ front(u) + front(v)` or an endpoint
//! cannot reach the region's frontier — and that certificate is sound for
//! *any* member set, no matter which level of the hierarchy produced it.
//! Same-leaf queries certify against the leaf region (core + halo); cross-
//! leaf queries certify against the lazily-stitched pair region (the union
//! of both leaf regions); anything the certificate cannot prove falls back
//! to the global oracle. The second level therefore changes *memory*, not
//! answers, and the `sharded_vs_single` differential suite pins all three
//! backends to the same bits across churn waves.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use ftspan::{poly_greedy_spanner_with, FaultSet, PolyGreedyOptions, SpannerParams, SpannerResult};
use ftspan_graph::dijkstra::DijkstraScratch;
use ftspan_graph::{Graph, VertexId};

use crate::boundary::BoundaryIndex;
use crate::churn::{ChurnConfig, WaveOutcome};
use crate::oracle::{FaultOracle, OracleOptions};
use crate::query::{Answer, Query, QueryKind};
use crate::shard::{
    region_signature, Region, Route, ShardPlan, ShardPlanOptions, ShardedMetrics, ShardedOptions,
};

/// Configuration of a [`HierarchicalOracle`].
#[derive(Clone, Debug, Default)]
pub struct HierarchicalOptions {
    /// How the **leaf** shard plan is derived (ignored by
    /// [`HierarchicalOracle::from_result`] when a plan is given).
    pub plan: ShardPlanOptions,
    /// Number of super-shards to group the leaves into. `0` picks
    /// `ceil(sqrt(leaf count))`, the balance point where both levels'
    /// boundary state grows like the square root of the leaf count.
    pub super_shards: usize,
    /// Hop radius of every leaf's halo (see
    /// [`ShardedOptions::halo_radius`]). `None` uses the stretch `2k − 1`.
    pub halo_radius: Option<u32>,
    /// Options of the global oracle and (with per-region cache namespaces)
    /// of every region oracle.
    pub oracle: OracleOptions,
}

impl HierarchicalOptions {
    /// The flat sharded options this configuration corresponds to — used by
    /// differential tests to build a flat twin of a hierarchical oracle.
    #[must_use]
    pub fn flat(&self) -> ShardedOptions {
        ShardedOptions {
            plan: self.plan.clone(),
            halo_radius: self.halo_radius,
            oracle: self.oracle.clone(),
        }
    }
}

/// Groups leaves into super-shards: leaves are taken largest first and each
/// goes to the currently lightest super-shard (ties to the lowest id) — the
/// classic LPT packing, deterministic in the leaf sizes.
fn group_leaves(leaf_sizes: &[usize], super_count: usize) -> Vec<u32> {
    let mut order: Vec<usize> = (0..leaf_sizes.len()).collect();
    order.sort_unstable_by(|&a, &b| leaf_sizes[b].cmp(&leaf_sizes[a]).then(a.cmp(&b)));
    let mut load = vec![0usize; super_count];
    let mut super_of_leaf = vec![0u32; leaf_sizes.len()];
    for leaf in order {
        let lightest = (0..super_count)
            .min_by_key(|&s| (load[s], s))
            .expect("at least one super-shard");
        super_of_leaf[leaf] = lightest as u32;
        load[lightest] += leaf_sizes[leaf];
    }
    super_of_leaf
}

/// What one [`HierarchicalOracle::apply_wave`] call did.
#[derive(Clone, Debug)]
pub struct HierarchyWaveOutcome {
    /// The global repair outcome (the wave is applied to the global oracle
    /// first; its localized repair carries the provable guarantees).
    pub global: WaveOutcome,
    /// Leaves whose region changed and was rebuilt from the repaired
    /// spanner. Untouched leaves keep their cached trees.
    pub rebuilt_leaves: Vec<usize>,
    /// Super-shard pairs that were adjacent before the wave and have no
    /// surviving cut edge afterwards — the coarse-grained severance signal
    /// the level-2 boundary index exists to provide.
    pub severed_super_pairs: Vec<(u32, u32)>,
}

/// A two-level sharded drop-in for
/// [`FaultOracle`](crate::FaultOracle) / [`ShardedOracle`](crate::ShardedOracle):
/// same query vocabulary, identical answers, with boundary state indexed at
/// super-shard granularity only.
///
/// See the [module docs](crate::hierarchy) for the architecture and the
/// exactness argument.
#[derive(Debug)]
pub struct HierarchicalOracle {
    pub(crate) global: FaultOracle,
    /// The fine partition queries are routed by.
    pub(crate) leaf_plan: ShardPlan,
    /// The coarse partition the boundary index is built over.
    pub(crate) super_plan: ShardPlan,
    /// `super_of_leaf[l]` is the super-shard leaf `l` belongs to.
    pub(crate) super_of_leaf: Vec<u32>,
    /// Level-2 boundary: cut edges and portals of the **super** partition
    /// only — the sub-linear half of the scale tier's memory story.
    pub(crate) boundary: BoundaryIndex,
    /// One region per leaf, interned like the flat oracle's (siblings with
    /// identical member sets share one extraction).
    pub(crate) regions: Vec<Arc<Region>>,
    pub(crate) pair_regions: Mutex<HashMap<(u32, u32), Arc<Region>>>,
    pub(crate) leaf_epochs: Vec<u64>,
    pub(crate) halo_radius: u32,
    pub(crate) options: HierarchicalOptions,
    pub(crate) metrics: ShardedMetrics,
    pub(crate) retired_cache_stats: (u64, u64),
    pub(crate) wave_bfs: ftspan_graph::bfs::BfsScratch,
}

impl HierarchicalOracle {
    /// Builds the global spanner, derives a leaf plan from the padded
    /// decomposition, groups the leaves into super-shards, and wires up the
    /// two-level serving state.
    #[must_use]
    pub fn build(graph: Graph, params: SpannerParams, options: HierarchicalOptions) -> Self {
        let plan = ShardPlan::build(&graph, &options.plan);
        let build_options = PolyGreedyOptions {
            collect_certificates: options.oracle.collect_certificates,
            ..PolyGreedyOptions::default()
        };
        let result = poly_greedy_spanner_with(&graph, params, &build_options);
        Self::from_result(graph, result, plan, options)
    }

    /// Wraps an already-built spanner in a hierarchical oracle under an
    /// explicit **leaf** plan.
    ///
    /// # Panics
    ///
    /// Panics if the spanner or the plan does not cover the graph's vertex
    /// set.
    #[must_use]
    pub fn from_result(
        graph: Graph,
        result: SpannerResult,
        leaf_plan: ShardPlan,
        options: HierarchicalOptions,
    ) -> Self {
        assert_eq!(
            graph.vertex_count(),
            leaf_plan.vertex_count(),
            "leaf plan must cover the graph's vertex set"
        );
        let params = result.params;
        let global = FaultOracle::from_result(graph, result, options.oracle.clone());
        let halo_radius = options.halo_radius.unwrap_or_else(|| params.stretch());

        let leaf_count = leaf_plan.shard_count();
        let super_count = if options.super_shards == 0 {
            (leaf_count as f64).sqrt().ceil() as usize
        } else {
            options.super_shards
        }
        .clamp(1, leaf_count.max(1));
        let leaf_sizes: Vec<usize> = (0..leaf_count).map(|l| leaf_plan.core(l).len()).collect();
        let super_of_leaf = group_leaves(&leaf_sizes, super_count);
        let super_of_vertex: Vec<u32> = (0..leaf_plan.vertex_count())
            .map(|i| super_of_leaf[leaf_plan.shard_of(VertexId::new(i)) as usize])
            .collect();
        let super_plan = ShardPlan::from_shard_of(super_of_vertex);

        let boundary = BoundaryIndex::build(global.spanner(), &super_plan);
        let mut regions: Vec<Arc<Region>> = Vec::with_capacity(leaf_count);
        for leaf in 0..leaf_count {
            let members = global
                .spanner()
                .halo_members(leaf_plan.core(leaf), halo_radius);
            let shared = regions
                .iter()
                .find(|r| r.remap.members() == members.as_slice())
                .map(Arc::clone);
            regions.push(shared.unwrap_or_else(|| {
                Arc::new(Region::build(
                    global.graph(),
                    global.spanner(),
                    params,
                    &options.oracle,
                    leaf_namespace(leaf),
                    &members,
                ))
            }));
        }
        let leaf_epochs = vec![0; leaf_count];
        Self {
            global,
            leaf_plan,
            super_plan,
            super_of_leaf,
            boundary,
            regions,
            pair_regions: Mutex::new(HashMap::new()),
            leaf_epochs,
            halo_radius,
            options,
            metrics: ShardedMetrics::default(),
            retired_cache_stats: (0, 0),
            wave_bfs: ftspan_graph::bfs::BfsScratch::default(),
        }
    }

    /// The leaf shard plan queries are routed by.
    #[inline]
    #[must_use]
    pub fn leaf_plan(&self) -> &ShardPlan {
        &self.leaf_plan
    }

    /// The super-shard plan the level-2 boundary index covers.
    #[inline]
    #[must_use]
    pub fn super_plan(&self) -> &ShardPlan {
        &self.super_plan
    }

    /// The super-shard a leaf belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    #[inline]
    #[must_use]
    pub fn super_of(&self, leaf: usize) -> u32 {
        self.super_of_leaf[leaf]
    }

    /// The level-2 boundary index (super-shard portals only).
    #[inline]
    #[must_use]
    pub fn boundary(&self) -> &BoundaryIndex {
        &self.boundary
    }

    /// The global fallback oracle.
    #[inline]
    #[must_use]
    pub fn global(&self) -> &FaultOracle {
        &self.global
    }

    /// Number of leaf shards.
    #[inline]
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaf_plan.shard_count()
    }

    /// Number of super-shards.
    #[inline]
    #[must_use]
    pub fn super_count(&self) -> usize {
        self.super_plan.shard_count()
    }

    /// The current effective input graph (see [`FaultOracle::graph`]).
    #[inline]
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.global.graph()
    }

    /// The global spanner being served.
    #[inline]
    #[must_use]
    pub fn spanner(&self) -> &Graph {
        self.global.spanner()
    }

    /// The parameters the spanner targets.
    #[inline]
    #[must_use]
    pub fn params(&self) -> SpannerParams {
        self.global.params()
    }

    /// The stretch bound `2k − 1` as a float.
    #[inline]
    #[must_use]
    pub fn stretch_bound(&self) -> f64 {
        self.global.stretch_bound()
    }

    /// The halo radius every leaf region was expanded by.
    #[inline]
    #[must_use]
    pub fn halo_radius(&self) -> u32 {
        self.halo_radius
    }

    /// Serving metrics (lock-free; safe to read at any time).
    #[inline]
    #[must_use]
    pub fn metrics(&self) -> &ShardedMetrics {
        &self.metrics
    }

    /// The number of structural changes (fault waves) applied so far.
    #[inline]
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.global.epoch()
    }

    /// Per-leaf rebuild epochs, mirroring
    /// [`ShardedOracle::shard_epochs`](crate::ShardedOracle::shard_epochs).
    #[must_use]
    pub fn leaf_epochs(&self) -> &[u64] {
        &self.leaf_epochs
    }

    /// The global ids of the vertices leaf `l` serves (core plus halo).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    #[must_use]
    pub fn leaf_members(&self, leaf: usize) -> &[VertexId] {
        self.regions[leaf].remap.members()
    }

    /// Aggregated tree-cache statistics `(cache_hits, trees_built)` across
    /// the global oracle and every distinct region allocation, live or
    /// retired.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        let (mut hits, mut built) = self.retired_cache_stats;
        let mut seen: Vec<*const Region> = Vec::new();
        let mut add = |region: &Arc<Region>| {
            let ptr = Arc::as_ptr(region);
            if seen.contains(&ptr) {
                return;
            }
            seen.push(ptr);
            let snap = region.oracle.metrics().snapshot();
            hits += snap.cache_hits;
            built += snap.trees_built;
        };
        for region in &self.regions {
            add(region);
        }
        for region in self
            .pair_regions
            .lock()
            .expect("pair region cache poisoned")
            .values()
        {
            add(region);
        }
        let snap = self.global.metrics().snapshot();
        hits += snap.cache_hits;
        built += snap.trees_built;
        (hits, built)
    }

    /// Heap bytes held by the hierarchical serving state: the global
    /// oracle, the **super-level** boundary index, and every distinct
    /// region allocation. Comparing this against
    /// [`ShardedOracle::memory_bytes`](crate::ShardedOracle::memory_bytes)
    /// on the same graph shows the level-2 saving directly.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.global.memory_bytes() + self.boundary.memory_bytes();
        let mut seen: Vec<*const Region> = Vec::new();
        let mut add = |region: &Arc<Region>| {
            let ptr = Arc::as_ptr(region);
            if seen.contains(&ptr) {
                return;
            }
            seen.push(ptr);
            bytes += region.memory_bytes();
        };
        for region in &self.regions {
            add(region);
        }
        for region in self
            .pair_regions
            .lock()
            .expect("pair region cache poisoned")
            .values()
        {
            add(region);
        }
        bytes
    }

    /// Distance in `H ∖ F` — identical to [`FaultOracle::distance`] on the
    /// same spanner.
    #[must_use]
    pub fn distance(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<f64> {
        self.global
            .with_scratch(|scratch| self.answer_parts(u, v, QueryKind::Distance, faults, scratch))
            .distance
    }

    /// Distance plus an explicit shortest path in `H ∖ F`.
    #[must_use]
    pub fn path(
        &self,
        u: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Option<(f64, Vec<VertexId>)> {
        let answer = self
            .global
            .with_scratch(|scratch| self.answer_parts(u, v, QueryKind::Path, faults, scratch));
        Some((answer.distance?, answer.path?))
    }

    /// Answers one query. For batches prefer
    /// [`HierarchicalOracle::answer_batch`](crate::batch).
    #[must_use]
    pub fn answer(&self, query: &Query) -> Answer {
        self.global
            .with_scratch(|scratch| self.answer_with_scratch(query, scratch))
    }

    /// The shared single-query path: route to a leaf or pair region,
    /// certify, fall back.
    pub(crate) fn answer_with_scratch(
        &self,
        query: &Query,
        scratch: &mut DijkstraScratch,
    ) -> Answer {
        self.answer_parts(query.u, query.v, query.kind, &query.faults, scratch)
    }

    fn answer_parts(
        &self,
        u: VertexId,
        v: VertexId,
        kind: QueryKind,
        faults: &FaultSet,
        scratch: &mut DijkstraScratch,
    ) -> Answer {
        match self.route(u, v) {
            Route::Local(leaf) => {
                if let Some(answer) = self.regions[leaf as usize].try_answer(
                    u,
                    v,
                    kind,
                    faults,
                    self.global.graph(),
                    scratch,
                ) {
                    self.metrics.record_local();
                    return answer;
                }
            }
            Route::Pair(a, b) => {
                let region = self.pair_region(a, b);
                if let Some(answer) =
                    region.try_answer(u, v, kind, faults, self.global.graph(), scratch)
                {
                    self.metrics.record_stitched();
                    return answer;
                }
            }
        }
        self.metrics.record_global_fallback();
        let key = self.global.key_ref(faults);
        self.global.answer_with_key(u, v, kind, &key, scratch)
    }

    /// Which region a vertex pair is served from (routes are at **leaf**
    /// granularity; the super level only scopes the boundary index).
    pub(crate) fn route(&self, u: VertexId, v: VertexId) -> Route {
        let lu = self.leaf_plan.shard_of(u);
        let lv = self.leaf_plan.shard_of(v);
        if lu == lv {
            Route::Local(lu)
        } else {
            Route::Pair(lu.min(lv), lu.max(lv))
        }
    }

    /// Fetches (or lazily builds) the stitched pair region for two leaves.
    pub(crate) fn pair_region(&self, a: u32, b: u32) -> Arc<Region> {
        if let Some(region) = self
            .pair_regions
            .lock()
            .expect("pair region cache poisoned")
            .get(&(a, b))
        {
            return Arc::clone(region);
        }
        let mut members: Vec<VertexId> = self.regions[a as usize]
            .remap
            .members()
            .iter()
            .chain(self.regions[b as usize].remap.members())
            .copied()
            .collect();
        members.sort_unstable();
        members.dedup();
        let region = [a, b]
            .iter()
            .map(|&l| &self.regions[l as usize])
            .find(|r| r.remap.members() == members.as_slice())
            .map(Arc::clone)
            .unwrap_or_else(|| {
                Arc::new(Region::build(
                    self.global.graph(),
                    self.global.spanner(),
                    self.global.params(),
                    &self.options.oracle,
                    hierarchy_pair_namespace(a, b),
                    &members,
                ))
            });
        let mut cache = self
            .pair_regions
            .lock()
            .expect("pair region cache poisoned");
        Arc::clone(cache.entry((a, b)).or_insert(region))
    }

    /// Applies a permanent fault wave and fans the repair out across the
    /// leaves, mirroring
    /// [`ShardedOracle::apply_wave`](crate::ShardedOracle::apply_wave):
    /// global churn loop first, then signature-gated leaf rebuilds, with
    /// super-pair severance read off the rebuilt level-2 boundary index.
    pub fn apply_wave(&mut self, wave: &FaultSet, config: &ChurnConfig) -> HierarchyWaveOutcome {
        let pairs_before = self.boundary.adjacent_pairs();
        let global = self.global.apply_wave(wave, config);

        self.boundary = BoundaryIndex::build(self.global.spanner(), &self.super_plan);
        let severed_super_pairs = {
            let after: HashSet<(u32, u32)> = self.boundary.adjacent_pairs().into_iter().collect();
            pairs_before
                .into_iter()
                .filter(|p| !after.contains(p))
                .collect()
        };

        let mut rebuilt_leaves = Vec::new();
        let mut folded: Vec<*const Region> = Vec::new();
        for leaf in 0..self.leaf_plan.shard_count() {
            let members = self.global.spanner().halo_members_with(
                &mut self.wave_bfs,
                self.leaf_plan.core(leaf),
                self.halo_radius,
            );
            let signature = region_signature(self.global.graph(), self.global.spanner(), &members);
            if signature == self.regions[leaf].signature {
                continue;
            }
            let retired_ptr = Arc::as_ptr(&self.regions[leaf]);
            if !folded.contains(&retired_ptr) {
                folded.push(retired_ptr);
                let retired = self.regions[leaf].oracle.metrics().snapshot();
                self.retired_cache_stats.0 += retired.cache_hits;
                self.retired_cache_stats.1 += retired.trees_built;
            }
            let shared = self
                .regions
                .iter()
                .enumerate()
                .find(|&(other, r)| {
                    other != leaf
                        && r.signature == signature
                        && r.remap.members() == members.as_slice()
                })
                .map(|(_, r)| Arc::clone(r));
            self.regions[leaf] = shared.unwrap_or_else(|| {
                Arc::new(Region::build(
                    self.global.graph(),
                    self.global.spanner(),
                    self.global.params(),
                    &self.options.oracle,
                    leaf_namespace(leaf),
                    &members,
                ))
            });
            self.leaf_epochs[leaf] += 1;
            rebuilt_leaves.push(leaf);
        }
        {
            let mut pairs = self
                .pair_regions
                .lock()
                .expect("pair region cache poisoned");
            for region in pairs.values() {
                let ptr = Arc::as_ptr(region);
                if folded.contains(&ptr) || self.regions.iter().any(|r| Arc::ptr_eq(r, region)) {
                    continue;
                }
                folded.push(ptr);
                let retired = region.oracle.metrics().snapshot();
                self.retired_cache_stats.0 += retired.cache_hits;
                self.retired_cache_stats.1 += retired.trees_built;
            }
            pairs.clear();
        }
        self.metrics.record_wave();

        HierarchyWaveOutcome {
            global,
            rebuilt_leaves,
            severed_super_pairs,
        }
    }
}

/// Cache namespace of a leaf region. Bit 48 keeps the hierarchy's
/// namespaces disjoint from the flat oracle's (`s + 1` and
/// `(a+1) << 32 | (b+1)`) and from the reserved global `0`.
pub(crate) fn leaf_namespace(leaf: usize) -> u64 {
    (1 << 48) | (leaf as u64 + 1)
}

/// Cache namespace of a leaf-pair region, disjoint from every leaf
/// namespace (bit 49 vs bit 48) for any realistic leaf count.
pub(crate) fn hierarchy_pair_namespace(a: u32, b: u32) -> u64 {
    (1 << 49) | (u64::from(a) + 1) << 24 | (u64::from(b) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedOracle;
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn hierarchical(seed: u64, shards: usize, supers: usize, f: u32) -> HierarchicalOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(48, 0.15, &mut rng);
        let options = HierarchicalOptions {
            plan: ShardPlanOptions {
                shards,
                ..ShardPlanOptions::default()
            },
            super_shards: supers,
            ..HierarchicalOptions::default()
        };
        HierarchicalOracle::build(graph, SpannerParams::vertex(2, f), options)
    }

    #[test]
    fn leaf_grouping_is_a_deterministic_cover() {
        let oracle = hierarchical(1, 4, 2, 1);
        assert_eq!(oracle.super_count(), 2);
        assert_eq!(oracle.leaf_count(), 4);
        // Every leaf maps to a super-shard, and the vertex-level super plan
        // agrees with the composition leaf → super.
        for leaf in 0..oracle.leaf_count() {
            let sup = oracle.super_of(leaf);
            assert!((sup as usize) < oracle.super_count());
            for &v in oracle.leaf_plan().core(leaf) {
                assert_eq!(oracle.super_plan().shard_of(v), sup);
            }
        }
        // Rebuilding from the same inputs reproduces the same grouping.
        let again = hierarchical(1, 4, 2, 1);
        assert_eq!(oracle.super_of_leaf, again.super_of_leaf);
    }

    #[test]
    fn default_super_count_is_sqrt_of_leaves() {
        let oracle = hierarchical(2, 4, 0, 1);
        assert_eq!(oracle.super_count(), 2);
        let one = hierarchical(2, 1, 0, 1);
        assert_eq!(one.super_count(), 1);
    }

    #[test]
    fn answers_match_the_global_oracle_exactly() {
        let oracle = hierarchical(3, 4, 2, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let n = oracle.graph().vertex_count();
        for _ in 0..60 {
            let u = vid(rng.gen_range(0..n));
            let v = vid(rng.gen_range(0..n));
            let faults = ftspan::sample_fault_set(
                oracle.graph(),
                ftspan::FaultModel::Vertex,
                1,
                &[],
                &mut rng,
            );
            assert_eq!(
                oracle.distance(u, v, &faults).map(f64::to_bits),
                oracle.global().distance(u, v, &faults).map(f64::to_bits),
                "u {u} v {v} faults {faults:?}"
            );
        }
        assert_eq!(oracle.metrics().snapshot().queries, 60);
    }

    #[test]
    fn matches_the_flat_sharded_oracle_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(4);
        let graph = generators::connected_gnp(48, 0.15, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let options = HierarchicalOptions {
            plan: ShardPlanOptions {
                shards: 4,
                ..ShardPlanOptions::default()
            },
            super_shards: 2,
            ..HierarchicalOptions::default()
        };
        let flat = ShardedOracle::build(graph.clone(), params, options.flat());
        let deep = HierarchicalOracle::build(graph, params, options);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let u = vid(rng.gen_range(0..48));
            let v = vid(rng.gen_range(0..48));
            let faults = FaultSet::vertices([vid(rng.gen_range(0..48))]);
            assert_eq!(
                deep.distance(u, v, &faults).map(f64::to_bits),
                flat.distance(u, v, &faults).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn super_boundary_is_no_larger_than_the_leaf_boundary() {
        let oracle = hierarchical(5, 4, 2, 1);
        // The leaf partition refines the super partition, so every
        // super-level cut edge is also a leaf-level cut edge.
        let leaf_boundary = BoundaryIndex::build(oracle.spanner(), oracle.leaf_plan());
        assert!(oracle.boundary().cut_edges().len() <= leaf_boundary.cut_edges().len());
        assert!(
            oracle.boundary().adjacent_pairs().len() <= leaf_boundary.adjacent_pairs().len(),
            "the coarse partition cannot have more adjacent pairs than the fine one"
        );
        // (Byte totals are only compared at bench scale — Vec capacity
        // rounding makes them noisy on toy graphs.)
    }

    #[test]
    fn waves_rebuild_only_touched_leaves() {
        let mut oracle = hierarchical(6, 4, 2, 1);
        let outcome = oracle.apply_wave(&FaultSet::vertices([vid(3)]), &ChurnConfig::default());
        assert_eq!(oracle.epoch(), 1);
        for leaf in 0..oracle.leaf_count() {
            let expected = u64::from(outcome.rebuilt_leaves.contains(&leaf));
            assert_eq!(oracle.leaf_epochs()[leaf], expected);
        }
        // Answers stay exact after the wave.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let u = vid(rng.gen_range(0..48));
            let v = vid(rng.gen_range(0..48));
            let faults = FaultSet::vertices([vid(rng.gen_range(0..48))]);
            assert_eq!(
                oracle.distance(u, v, &faults).map(f64::to_bits),
                oracle.global().distance(u, v, &faults).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn namespaces_are_disjoint_across_levels_and_backends() {
        let mut seen = std::collections::HashSet::new();
        seen.insert(0u64); // reserved global
        for s in 0..64 {
            assert!(seen.insert(crate::shard::shard_namespace(s)));
            assert!(seen.insert(leaf_namespace(s)));
        }
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                assert!(seen.insert(crate::shard::pair_namespace(a, b)));
                assert!(seen.insert(hierarchy_pair_namespace(a, b)));
            }
        }
    }

    #[test]
    fn memory_accounting_dedups_shared_regions() {
        let oracle = hierarchical(8, 4, 2, 1);
        let bytes = oracle.memory_bytes();
        assert!(bytes > 0);
        // Materializing a pair that interns to a leaf must not change the
        // accounted total.
        let Route::Pair(a, b) =
            oracle.route(oracle.leaf_plan().core(0)[0], oracle.leaf_plan().core(1)[0])
        else {
            panic!("cores 0 and 1 must be distinct leaves");
        };
        let pair = oracle.pair_region(a, b);
        let grew = oracle.memory_bytes() - bytes;
        if oracle.regions.iter().any(|r| Arc::ptr_eq(r, &pair)) {
            assert_eq!(grew, 0, "interned pair must not be double counted");
        } else {
            assert!(grew > 0, "distinct pair allocation must be accounted");
        }
    }
}
