//! Batched query answering over a worker pool.
//!
//! Batches are grouped by fault set before being handed to workers: all
//! queries under the same `F` land in the same group, so the group's first
//! query computes (or finds) the shortest-path trees and the rest hit the
//! cache without ever contending for it from another thread. Groups are
//! distributed over the pool through a simple atomic cursor — group sizes
//! are uneven, so work stealing at group granularity beats static chunking.
//!
//! Results are written into **disjoint pre-sized output windows**: one
//! contiguous answer buffer is `split_at_mut` into per-group slices up
//! front, and whichever worker claims a group writes that group's answers
//! by index into its own window. Each window's lock is taken exactly once,
//! by exactly one worker, so result collection is contention-free (the
//! previous design funneled every worker's output through one shared
//! `Mutex<Vec<(usize, Answer)>>`).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use ftspan_graph::dijkstra::{DijkstraScratch, ShortestPathTree};

use crate::cache::KeyRef;
use crate::hierarchy::HierarchicalOracle;
use crate::oracle::FaultOracle;
use crate::query::{Answer, Query};
use crate::shard::{Route, ShardedOracle};

/// A batch partitioned into fault-set groups: `groups[g]` lists the indices
/// of the queries sharing the `g`-th fault set, sorted by source vertex so
/// consecutive queries can reuse the same cached tree without re-probing the
/// cache. Grouping hashes only the `u64` fingerprint — per-query work is
/// allocation-free; a (astronomically unlikely) fingerprint collision merely
/// merges two groups, whose queries still resolve exactly by their own fault
/// sets.
fn group_by_fingerprint(queries: &[Query], namespace: u64) -> Vec<(u64, Vec<usize>)> {
    let mut by_fault: HashMap<u64, Vec<usize>> = HashMap::new();
    for (idx, query) in queries.iter().enumerate() {
        let fp = KeyRef::new(namespace, &query.faults).fingerprint();
        by_fault.entry(fp).or_default().push(idx);
    }
    let mut groups: Vec<(u64, Vec<usize>)> = by_fault.into_iter().collect();
    for (_, idxs) in &mut groups {
        idxs.sort_unstable_by_key(|&i| (queries[i].u, queries[i].v, i));
    }
    groups
}

/// Splits one contiguous answer buffer into per-group windows. Window `g`
/// holds `groups[g].1.len()` slots; the scatter step maps them back to
/// request order.
fn split_windows<'a, T>(
    mut rest: &'a mut [Option<Answer>],
    groups: &[(T, Vec<usize>)],
) -> Vec<Mutex<&'a mut [Option<Answer>]>> {
    let mut windows = Vec::with_capacity(groups.len());
    for (_, idxs) in groups {
        let (window, tail) = rest.split_at_mut(idxs.len());
        windows.push(Mutex::new(window));
        rest = tail;
    }
    windows
}

/// Reassembles group-major answers into request order.
fn scatter<T>(
    grouped: Vec<Option<Answer>>,
    groups: &[(T, Vec<usize>)],
    total: usize,
) -> Vec<Answer> {
    let mut slots: Vec<Option<Answer>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    let mut cursor = grouped.into_iter();
    for (_, idxs) in groups {
        for &idx in idxs {
            slots[idx] = cursor.next().expect("window sized to its group");
        }
    }
    slots
        .into_iter()
        .map(|a| a.expect("every query index answered exactly once"))
        .collect()
}

impl FaultOracle {
    /// Answers a batch of queries, returning answers in request order.
    ///
    /// Queries are grouped by fault set and the groups are served by a pool
    /// of `options.workers` threads (machine parallelism when 0). Each worker
    /// owns a [`DijkstraScratch`], holds the group's most recent tree to skip
    /// repeat cache probes, and writes into its group's disjoint output
    /// window; the tree cache is shared through the oracle.
    #[must_use]
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        self.metrics().record_batch();
        if queries.is_empty() {
            return Vec::new();
        }

        let groups = group_by_fingerprint(queries, self.cache_namespace());
        let workers = self.effective_workers(groups.len());
        let mut grouped: Vec<Option<Answer>> = Vec::with_capacity(queries.len());
        grouped.resize_with(queries.len(), || None);

        if workers <= 1 {
            let mut scratch = DijkstraScratch::new();
            let mut out = grouped.iter_mut();
            for (fp, idxs) in &groups {
                let mut held: Option<(&Query, Arc<ShortestPathTree>)> = None;
                for &idx in idxs {
                    let slot = out.next().expect("buffer sized to the batch");
                    *slot =
                        Some(self.answer_group_query(queries, *fp, idx, &mut held, &mut scratch));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let windows = split_windows(&mut grouped, &groups);
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut scratch = DijkstraScratch::new();
                        loop {
                            let g = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some((fp, idxs)) = groups.get(g) else {
                                break;
                            };
                            // Exactly one worker claims group `g`, so this
                            // lock is uncontended and taken once per group.
                            let mut window =
                                windows[g].lock().expect("batch output window poisoned");
                            let mut held: Option<(&Query, Arc<ShortestPathTree>)> = None;
                            for (slot, &idx) in window.iter_mut().zip(idxs) {
                                *slot = Some(self.answer_group_query(
                                    queries,
                                    *fp,
                                    idx,
                                    &mut held,
                                    &mut scratch,
                                ));
                            }
                        }
                    });
                }
            });
            drop(windows);
        }

        scatter(grouped, &groups, queries.len())
    }

    /// Answers one query of a fault-set group, reusing the group's held tree
    /// when the roots line up (skipping the cache mutex entirely). The memo
    /// is bypassed when caching is disabled so `cache_capacity: 0` keeps its
    /// meaning as the recompute-everything baseline.
    ///
    /// LRU semantics: a group's first query probes the cache and refreshes
    /// its fault set's recency once per group claim; memo-served queries
    /// deliberately do not touch the cache again. Recency therefore means
    /// "when was this fault set last *claimed*", not a per-query counter —
    /// the trade that keeps thousands of repeat queries off the cache
    /// mutex. Memo answers report `cache_hit = true` because the tree they
    /// read did come from the cache (or was computed and inserted for this
    /// very group).
    fn answer_group_query<'q>(
        &self,
        queries: &'q [Query],
        fingerprint: u64,
        idx: usize,
        held: &mut Option<(&'q Query, Arc<ShortestPathTree>)>,
        scratch: &mut DijkstraScratch,
    ) -> Answer {
        let query = &queries[idx];
        if let Some((held_query, tree)) = held {
            let root = tree.source();
            if (root == query.u || root == query.v) && held_query.faults == query.faults {
                return self.answer_from_tree(query.u, query.v, query.kind, tree, true);
            }
        }
        let key = KeyRef::with_fingerprint(self.cache_namespace(), fingerprint, &query.faults);
        let (tree, cache_hit) = self.tree_for(&key, query.u, query.v, scratch);
        let answer = self.answer_from_tree(query.u, query.v, query.kind, &tree, cache_hit);
        if self.options.cache_capacity > 0 {
            *held = Some((query, tree));
        }
        answer
    }

    pub(crate) fn effective_workers(&self, groups: usize) -> usize {
        let configured = if self.options.workers == 0 {
            thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.options.workers
        };
        configured.min(groups).max(1)
    }
}

impl ShardedOracle {
    /// Answers a batch of queries, returning answers in request order —
    /// identical answers to [`FaultOracle::answer_batch`] on the same
    /// spanner, but routed through the shards.
    ///
    /// Queries are grouped by `(region route, fault set)` so each group
    /// shares its region's cached trees, and the groups are fanned out over
    /// the same kind of work-stealing worker pool the single oracle uses,
    /// with the same disjoint per-group output windows. Pair regions for
    /// every cross-shard route in the batch are materialized up front, so
    /// workers never contend on the pair cache.
    #[must_use]
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        self.metrics().record_batch();
        if queries.is_empty() {
            return Vec::new();
        }

        let mut by_group: HashMap<(Route, u64), Vec<usize>> = HashMap::new();
        let mut pairs: HashSet<(u32, u32)> = HashSet::new();
        for (idx, query) in queries.iter().enumerate() {
            let route = self.route(query.u, query.v);
            if let Route::Pair(a, b) = route {
                pairs.insert((a, b));
            }
            let fp = KeyRef::new(0, &query.faults).fingerprint();
            by_group.entry((route, fp)).or_default().push(idx);
        }
        for (a, b) in pairs {
            let _ = self.pair_region(a, b);
        }
        let groups: Vec<(Route, Vec<usize>)> = by_group
            .into_iter()
            .map(|((route, _), idxs)| (route, idxs))
            .collect();

        let workers = self.global().effective_workers(groups.len());
        let mut grouped: Vec<Option<Answer>> = Vec::with_capacity(queries.len());
        grouped.resize_with(queries.len(), || None);

        if workers <= 1 {
            let mut scratch = DijkstraScratch::new();
            let mut out = grouped.iter_mut();
            for (_, idxs) in &groups {
                for &idx in idxs {
                    let slot = out.next().expect("buffer sized to the batch");
                    *slot = Some(self.answer_with_scratch(&queries[idx], &mut scratch));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let windows = split_windows(&mut grouped, &groups);
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut scratch = DijkstraScratch::new();
                        loop {
                            let g = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some((_, idxs)) = groups.get(g) else {
                                break;
                            };
                            let mut window =
                                windows[g].lock().expect("batch output window poisoned");
                            for (slot, &idx) in window.iter_mut().zip(idxs) {
                                *slot = Some(self.answer_with_scratch(&queries[idx], &mut scratch));
                            }
                        }
                    });
                }
            });
            drop(windows);
        }

        scatter(grouped, &groups, queries.len())
    }
}

impl HierarchicalOracle {
    /// Answers a batch of queries, returning answers in request order —
    /// identical answers to [`FaultOracle::answer_batch`] and
    /// [`ShardedOracle::answer_batch`] on the same spanner, routed through
    /// the two-level hierarchy.
    ///
    /// Same shape as the flat sharded batch: queries grouped by
    /// `(leaf route, fault set)`, pair regions prematerialized, groups
    /// work-stolen by a pool writing into disjoint output windows.
    #[must_use]
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        self.metrics().record_batch();
        if queries.is_empty() {
            return Vec::new();
        }

        let mut by_group: HashMap<(Route, u64), Vec<usize>> = HashMap::new();
        let mut pairs: HashSet<(u32, u32)> = HashSet::new();
        for (idx, query) in queries.iter().enumerate() {
            let route = self.route(query.u, query.v);
            if let Route::Pair(a, b) = route {
                pairs.insert((a, b));
            }
            let fp = KeyRef::new(0, &query.faults).fingerprint();
            by_group.entry((route, fp)).or_default().push(idx);
        }
        for (a, b) in pairs {
            let _ = self.pair_region(a, b);
        }
        let groups: Vec<(Route, Vec<usize>)> = by_group
            .into_iter()
            .map(|((route, _), idxs)| (route, idxs))
            .collect();

        let workers = self.global().effective_workers(groups.len());
        let mut grouped: Vec<Option<Answer>> = Vec::with_capacity(queries.len());
        grouped.resize_with(queries.len(), || None);

        if workers <= 1 {
            let mut scratch = DijkstraScratch::new();
            let mut out = grouped.iter_mut();
            for (_, idxs) in &groups {
                for &idx in idxs {
                    let slot = out.next().expect("buffer sized to the batch");
                    *slot = Some(self.answer_with_scratch(&queries[idx], &mut scratch));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let windows = split_windows(&mut grouped, &groups);
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut scratch = DijkstraScratch::new();
                        loop {
                            let g = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some((_, idxs)) = groups.get(g) else {
                                break;
                            };
                            let mut window =
                                windows[g].lock().expect("batch output window poisoned");
                            for (slot, &idx) in window.iter_mut().zip(idxs) {
                                *slot = Some(self.answer_with_scratch(&queries[idx], &mut scratch));
                            }
                        }
                    });
                }
            });
            drop(windows);
        }

        scatter(grouped, &groups, queries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleOptions;
    use ftspan::{FaultModel, FaultSet, SpannerParams};
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn oracle_with_workers(workers: usize, cache_capacity: usize) -> FaultOracle {
        let mut rng = StdRng::seed_from_u64(31);
        let graph = generators::connected_gnp(30, 0.25, &mut rng);
        let options = OracleOptions {
            workers,
            cache_capacity,
            ..OracleOptions::default()
        };
        FaultOracle::build(graph, SpannerParams::vertex(2, 1), options)
    }

    fn mixed_batch(n: usize, vertices: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let u = vid(rng.gen_range(0..vertices));
                let mut v = vid(rng.gen_range(0..vertices));
                while v == u {
                    v = vid(rng.gen_range(0..vertices));
                }
                // A handful of distinct fault sets so grouping matters.
                let victim = vid(rng.gen_range(0..4usize) + 10);
                let faults = if victim == u || victim == v {
                    FaultSet::empty(FaultModel::Vertex)
                } else {
                    FaultSet::vertices([victim])
                };
                if i % 3 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect()
    }

    #[test]
    fn batch_matches_single_query_answers() {
        let parallel = oracle_with_workers(4, 64);
        let queries = mixed_batch(120, 30, 7);
        let batched = parallel.answer_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (query, answer) in queries.iter().zip(&batched) {
            let single = parallel.answer(query);
            assert_eq!(single.distance, answer.distance, "query {query:?}");
            assert_eq!(single.path, answer.path);
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let sequential = oracle_with_workers(1, 64);
        let parallel = oracle_with_workers(6, 64);
        let queries = mixed_batch(90, 30, 8);
        let a = sequential.answer_batch(&queries);
        let b = parallel.answer_batch(&queries);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.distance, y.distance);
            assert_eq!(x.path, y.path);
        }
    }

    #[test]
    fn grouping_yields_high_cache_hit_rate() {
        let oracle = oracle_with_workers(1, 64);
        let queries = mixed_batch(200, 30, 9);
        let _ = oracle.answer_batch(&queries);
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.queries, 200);
        // A few fault sets serve 200 queries: most answers must be hits.
        assert!(
            snap.hit_rate() > 0.5,
            "hit rate {:.2} unexpectedly low",
            snap.hit_rate()
        );
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn cache_off_batches_never_reuse_trees() {
        // With capacity 0 the held-tree memo must stay disabled: every query
        // recomputes, keeping the cache-off bench an honest baseline.
        let oracle = oracle_with_workers(1, 0);
        let queries = mixed_batch(40, 30, 10);
        let _ = oracle.answer_batch(&queries);
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.queries, 40);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.trees_built, 40);
    }

    #[test]
    fn empty_batch_is_fine() {
        let oracle = oracle_with_workers(4, 64);
        assert!(oracle.answer_batch(&[]).is_empty());
    }

    fn sharded_with_workers(workers: usize, shards: usize) -> crate::ShardedOracle {
        let mut rng = StdRng::seed_from_u64(31);
        let graph = generators::connected_gnp(30, 0.25, &mut rng);
        let options = crate::ShardedOptions {
            plan: crate::ShardPlanOptions {
                shards,
                ..crate::ShardPlanOptions::default()
            },
            oracle: OracleOptions {
                workers,
                ..OracleOptions::default()
            },
            ..crate::ShardedOptions::default()
        };
        crate::ShardedOracle::build(graph, SpannerParams::vertex(2, 1), options)
    }

    #[test]
    fn sharded_batch_matches_single_oracle_batch() {
        // Same graph and spanner construction as `oracle_with_workers`, so
        // the sharded batch must reproduce the single oracle's answers.
        let single = oracle_with_workers(4, 64);
        for shards in [1usize, 3] {
            let sharded = sharded_with_workers(4, shards);
            let queries = mixed_batch(150, 30, 12);
            let a = single.answer_batch(&queries);
            let b = sharded.answer_batch(&queries);
            assert_eq!(a.len(), b.len());
            for ((query, x), y) in queries.iter().zip(&a).zip(&b) {
                assert_eq!(x.distance, y.distance, "shards {shards}: {query:?}");
                match (&x.path, &y.path) {
                    (None, None) => {}
                    (Some(p), Some(q)) => {
                        // Shortest paths need not be unique; both must be
                        // walks of the same length with the right endpoints.
                        assert_eq!(p.first(), q.first());
                        assert_eq!(p.last(), q.last());
                    }
                    other => panic!("path presence diverged: {other:?}"),
                }
            }
            assert_eq!(sharded.metrics().snapshot().queries, 150);
        }
    }

    #[test]
    fn hierarchical_batch_matches_single_oracle_batch() {
        let single = oracle_with_workers(4, 64);
        let mut rng = StdRng::seed_from_u64(31);
        let graph = generators::connected_gnp(30, 0.25, &mut rng);
        let deep = crate::HierarchicalOracle::build(
            graph,
            SpannerParams::vertex(2, 1),
            crate::HierarchicalOptions {
                plan: crate::ShardPlanOptions {
                    shards: 4,
                    ..crate::ShardPlanOptions::default()
                },
                super_shards: 2,
                oracle: OracleOptions {
                    workers: 4,
                    ..OracleOptions::default()
                },
                ..crate::HierarchicalOptions::default()
            },
        );
        let queries = mixed_batch(150, 30, 12);
        let a = single.answer_batch(&queries);
        let b = deep.answer_batch(&queries);
        assert_eq!(a.len(), b.len());
        for ((query, x), y) in queries.iter().zip(&a).zip(&b) {
            assert_eq!(x.distance, y.distance, "{query:?}");
        }
        assert_eq!(deep.metrics().snapshot().queries, 150);
        assert!(deep.answer_batch(&[]).is_empty());
    }

    #[test]
    fn sharded_sequential_and_parallel_agree() {
        let sequential = sharded_with_workers(1, 3);
        let parallel = sharded_with_workers(6, 3);
        let queries = mixed_batch(90, 30, 13);
        let a = sequential.answer_batch(&queries);
        let b = parallel.answer_batch(&queries);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.distance, y.distance);
        }
        assert!(sequential.answer_batch(&[]).is_empty());
    }
}
