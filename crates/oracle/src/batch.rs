//! Batched query answering over a worker pool.
//!
//! Batches are grouped by fault set before being handed to workers: all
//! queries under the same `F` land in the same group, so the group's first
//! query computes (or finds) the shortest-path trees and the rest hit the
//! cache without ever contending for it from another thread. Groups are
//! distributed over the pool through a simple atomic cursor — group sizes
//! are uneven, so work stealing at group granularity beats static chunking.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use ftspan_graph::dijkstra::DijkstraScratch;

use crate::cache::CacheKey;
use crate::oracle::FaultOracle;
use crate::query::{Answer, Query};
use crate::shard::{Route, ShardedOracle};

impl FaultOracle {
    /// Answers a batch of queries, returning answers in request order.
    ///
    /// Queries are grouped by fault set and the groups are served by a pool
    /// of `options.workers` threads (machine parallelism when 0). Each worker
    /// owns a [`DijkstraScratch`], so per-query allocations are amortized
    /// away; the tree cache is shared through the oracle.
    #[must_use]
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        self.metrics().record_batch();
        if queries.is_empty() {
            return Vec::new();
        }

        // Group query indices by fault set; each group carries its cache key
        // so the per-query path never re-derives it.
        let mut by_fault: HashMap<CacheKey, Vec<usize>> = HashMap::new();
        for (idx, query) in queries.iter().enumerate() {
            by_fault
                .entry(self.cache_key(&query.faults))
                .or_default()
                .push(idx);
        }
        let groups: Vec<(CacheKey, Vec<usize>)> = by_fault.into_iter().collect();

        let workers = self.effective_workers(groups.len());
        let mut slots: Vec<Option<Answer>> = vec![None; queries.len()];

        if workers <= 1 {
            let mut scratch = DijkstraScratch::new();
            for (key, group) in &groups {
                for &idx in group {
                    slots[idx] = Some(self.answer_with_key(&queries[idx], key, &mut scratch));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, Answer)>> =
                Mutex::new(Vec::with_capacity(queries.len()));
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut scratch = DijkstraScratch::new();
                        let mut local: Vec<(usize, Answer)> = Vec::new();
                        loop {
                            let g = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some((key, group)) = groups.get(g) else {
                                break;
                            };
                            for &idx in group {
                                local.push((
                                    idx,
                                    self.answer_with_key(&queries[idx], key, &mut scratch),
                                ));
                            }
                        }
                        collected
                            .lock()
                            .expect("batch result sink poisoned")
                            .extend(local);
                    });
                }
            });
            for (idx, answer) in collected.into_inner().expect("batch result sink poisoned") {
                slots[idx] = Some(answer);
            }
        }

        slots
            .into_iter()
            .map(|a| a.expect("every query index answered exactly once"))
            .collect()
    }

    pub(crate) fn effective_workers(&self, groups: usize) -> usize {
        let configured = if self.options.workers == 0 {
            thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.options.workers
        };
        configured.min(groups).max(1)
    }
}

impl ShardedOracle {
    /// Answers a batch of queries, returning answers in request order —
    /// identical answers to [`FaultOracle::answer_batch`] on the same
    /// spanner, but routed through the shards.
    ///
    /// Queries are grouped by `(region route, fault set)` so each group
    /// shares its region's cached trees, and the groups are fanned out over
    /// the same kind of work-stealing worker pool the single oracle uses.
    /// Pair regions for every cross-shard route in the batch are
    /// materialized up front, so workers never contend on the pair cache.
    #[must_use]
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        self.metrics().record_batch();
        if queries.is_empty() {
            return Vec::new();
        }

        let mut by_group: HashMap<(Route, CacheKey), Vec<usize>> = HashMap::new();
        let mut pairs: HashSet<(u32, u32)> = HashSet::new();
        for (idx, query) in queries.iter().enumerate() {
            let route = self.route(query.u, query.v);
            if let Route::Pair(a, b) = route {
                pairs.insert((a, b));
            }
            by_group
                .entry((route, CacheKey::from_fault_set(&query.faults)))
                .or_default()
                .push(idx);
        }
        for (a, b) in pairs {
            let _ = self.pair_region(a, b);
        }
        let groups: Vec<(Route, Vec<usize>)> = by_group
            .into_iter()
            .map(|((route, _), idxs)| (route, idxs))
            .collect();

        let workers = self.global().effective_workers(groups.len());
        let mut slots: Vec<Option<Answer>> = vec![None; queries.len()];

        if workers <= 1 {
            let mut scratch = DijkstraScratch::new();
            for (_, group) in &groups {
                for &idx in group {
                    slots[idx] = Some(self.answer_with_scratch(&queries[idx], &mut scratch));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, Answer)>> =
                Mutex::new(Vec::with_capacity(queries.len()));
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut scratch = DijkstraScratch::new();
                        let mut local: Vec<(usize, Answer)> = Vec::new();
                        loop {
                            let g = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some((_, group)) = groups.get(g) else {
                                break;
                            };
                            for &idx in group {
                                local.push((
                                    idx,
                                    self.answer_with_scratch(&queries[idx], &mut scratch),
                                ));
                            }
                        }
                        collected
                            .lock()
                            .expect("batch result sink poisoned")
                            .extend(local);
                    });
                }
            });
            for (idx, answer) in collected.into_inner().expect("batch result sink poisoned") {
                slots[idx] = Some(answer);
            }
        }

        slots
            .into_iter()
            .map(|a| a.expect("every query index answered exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleOptions;
    use ftspan::{FaultModel, FaultSet, SpannerParams};
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn oracle_with_workers(workers: usize, cache_capacity: usize) -> FaultOracle {
        let mut rng = StdRng::seed_from_u64(31);
        let graph = generators::connected_gnp(30, 0.25, &mut rng);
        let options = OracleOptions {
            workers,
            cache_capacity,
            ..OracleOptions::default()
        };
        FaultOracle::build(graph, SpannerParams::vertex(2, 1), options)
    }

    fn mixed_batch(n: usize, vertices: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let u = vid(rng.gen_range(0..vertices));
                let mut v = vid(rng.gen_range(0..vertices));
                while v == u {
                    v = vid(rng.gen_range(0..vertices));
                }
                // A handful of distinct fault sets so grouping matters.
                let victim = vid(rng.gen_range(0..4usize) + 10);
                let faults = if victim == u || victim == v {
                    FaultSet::empty(FaultModel::Vertex)
                } else {
                    FaultSet::vertices([victim])
                };
                if i % 3 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect()
    }

    #[test]
    fn batch_matches_single_query_answers() {
        let parallel = oracle_with_workers(4, 64);
        let queries = mixed_batch(120, 30, 7);
        let batched = parallel.answer_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (query, answer) in queries.iter().zip(&batched) {
            let single = parallel.answer(query);
            assert_eq!(single.distance, answer.distance, "query {query:?}");
            assert_eq!(single.path, answer.path);
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let sequential = oracle_with_workers(1, 64);
        let parallel = oracle_with_workers(6, 64);
        let queries = mixed_batch(90, 30, 8);
        let a = sequential.answer_batch(&queries);
        let b = parallel.answer_batch(&queries);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.distance, y.distance);
            assert_eq!(x.path, y.path);
        }
    }

    #[test]
    fn grouping_yields_high_cache_hit_rate() {
        let oracle = oracle_with_workers(1, 64);
        let queries = mixed_batch(200, 30, 9);
        let _ = oracle.answer_batch(&queries);
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.queries, 200);
        // A few fault sets serve 200 queries: most answers must be hits.
        assert!(
            snap.hit_rate() > 0.5,
            "hit rate {:.2} unexpectedly low",
            snap.hit_rate()
        );
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let oracle = oracle_with_workers(4, 64);
        assert!(oracle.answer_batch(&[]).is_empty());
    }

    fn sharded_with_workers(workers: usize, shards: usize) -> crate::ShardedOracle {
        let mut rng = StdRng::seed_from_u64(31);
        let graph = generators::connected_gnp(30, 0.25, &mut rng);
        let options = crate::ShardedOptions {
            plan: crate::ShardPlanOptions {
                shards,
                ..crate::ShardPlanOptions::default()
            },
            oracle: OracleOptions {
                workers,
                ..OracleOptions::default()
            },
            ..crate::ShardedOptions::default()
        };
        crate::ShardedOracle::build(graph, SpannerParams::vertex(2, 1), options)
    }

    #[test]
    fn sharded_batch_matches_single_oracle_batch() {
        // Same graph and spanner construction as `oracle_with_workers`, so
        // the sharded batch must reproduce the single oracle's answers.
        let single = oracle_with_workers(4, 64);
        for shards in [1usize, 3] {
            let sharded = sharded_with_workers(4, shards);
            let queries = mixed_batch(150, 30, 12);
            let a = single.answer_batch(&queries);
            let b = sharded.answer_batch(&queries);
            assert_eq!(a.len(), b.len());
            for ((query, x), y) in queries.iter().zip(&a).zip(&b) {
                assert_eq!(x.distance, y.distance, "shards {shards}: {query:?}");
                match (&x.path, &y.path) {
                    (None, None) => {}
                    (Some(p), Some(q)) => {
                        // Shortest paths need not be unique; both must be
                        // walks of the same length with the right endpoints.
                        assert_eq!(p.first(), q.first());
                        assert_eq!(p.last(), q.last());
                    }
                    other => panic!("path presence diverged: {other:?}"),
                }
            }
            assert_eq!(sharded.metrics().snapshot().queries, 150);
        }
    }

    #[test]
    fn sharded_sequential_and_parallel_agree() {
        let sequential = sharded_with_workers(1, 3);
        let parallel = sharded_with_workers(6, 3);
        let queries = mixed_batch(90, 30, 13);
        let a = sequential.answer_batch(&queries);
        let b = parallel.answer_batch(&queries);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.distance, y.distance);
        }
        assert!(sequential.answer_batch(&[]).is_empty());
    }
}
