//! Neighbourhood extraction for localized repair.
//!
//! After a fault wave, the spanner property can only have broken near the
//! damage: a pair whose witness paths never came close to a failed element
//! still has them. Repair therefore collects the edges of the effective
//! graph within a small hop radius of the *seeds* (failed elements, their
//! former neighbours, endpoints of detected violations, and edges whose LBC
//! certificates the damage invalidated) and re-runs the modified greedy on
//! exactly those candidates ([`ftspan::repair::respan_candidates`]).

use ftspan_graph::bfs::BfsScratch;
use ftspan_graph::{EdgeId, Graph, VertexId};

/// Marks every vertex within `radius` hops of any seed in `graph` and
/// returns the identifiers of all edges with at least one marked endpoint —
/// the candidate set of a localized repair.
///
/// Runs one multi-source hop-bounded BFS
/// ([`BfsScratch::multi_source_hop_distances`]): `O(n + m)` worst case,
/// typically far less for small radii. Out-of-range seeds are ignored.
#[must_use]
pub fn neighborhood_candidates(graph: &Graph, seeds: &[VertexId], radius: u32) -> Vec<EdgeId> {
    let mut scratch = BfsScratch::new();
    neighborhood_candidates_with(&mut scratch, graph, seeds, radius)
}

/// Like [`neighborhood_candidates`] but reusing caller-owned BFS buffers —
/// the churn loop threads one scratch through every stage of a wave
/// (violation detection, candidate collection, shard fan-out) instead of
/// allocating per stage.
#[must_use]
pub fn neighborhood_candidates_with(
    scratch: &mut BfsScratch,
    graph: &Graph,
    seeds: &[VertexId],
    radius: u32,
) -> Vec<EdgeId> {
    let dist = scratch.multi_source_hop_distances(graph, seeds.iter().copied(), radius);
    graph
        .edges()
        .filter(|(_, e)| dist[e.source().index()].is_some() || dist[e.target().index()].is_some())
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generators, vid};

    #[test]
    fn radius_zero_takes_only_incident_edges() {
        let g = generators::path(6); // 0-1-2-3-4-5
        let candidates = neighborhood_candidates(&g, &[vid(2)], 0);
        let pairs: Vec<_> = candidates
            .iter()
            .map(|&e| {
                let (u, v) = g.edge(e).endpoints();
                (u.index(), v.index())
            })
            .collect();
        assert_eq!(pairs, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn radius_grows_the_ball() {
        let g = generators::path(8);
        let r1 = neighborhood_candidates(&g, &[vid(3)], 1);
        let r2 = neighborhood_candidates(&g, &[vid(3)], 2);
        assert!(r1.len() < r2.len());
        let all = neighborhood_candidates(&g, &[vid(3)], 10);
        assert_eq!(all.len(), g.edge_count());
    }

    #[test]
    fn multiple_seeds_union_their_balls() {
        let g = generators::path(10);
        let left = neighborhood_candidates(&g, &[vid(0)], 1);
        let right = neighborhood_candidates(&g, &[vid(9)], 1);
        let both = neighborhood_candidates(&g, &[vid(0), vid(9)], 1);
        assert_eq!(both.len(), left.len() + right.len());
    }

    #[test]
    fn out_of_range_and_duplicate_seeds_are_tolerated() {
        let g = generators::path(4);
        let candidates = neighborhood_candidates(&g, &[vid(1), vid(1), vid(99)], 1);
        assert!(!candidates.is_empty());
    }

    #[test]
    fn empty_seed_set_yields_nothing() {
        let g = generators::complete(5);
        assert!(neighborhood_candidates(&g, &[], 3).is_empty());
    }
}
