//! The [`FaultOracle`]: state, construction, and the single-query path.

use std::sync::{Arc, Mutex};

use ftspan::{
    poly_greedy_spanner_with, EdgeCertificate, FaultSet, PolyGreedyOptions, SpannerParams,
    SpannerResult,
};
use ftspan_graph::dijkstra::{DijkstraScratch, ShortestPathTree};
use ftspan_graph::{Graph, VertexId};

use crate::cache::{KeyRef, TreeCache};
use crate::metrics::OracleMetrics;
use crate::query::{Answer, Query, QueryKind};

/// Configuration of a [`FaultOracle`].
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OracleOptions {
    /// Maximum number of fault sets whose shortest-path trees stay cached
    /// (LRU). `0` disables caching entirely — every query recomputes, which
    /// is the baseline the `oracle` bench compares against.
    ///
    /// Lookups scan a dense per-fault-set fingerprint array, so size this to
    /// the number of *concurrently hot* fault sets (hundreds to a few
    /// thousand), not the total ever observed — see
    /// [`TreeCache`](crate::TreeCache) for the cost model.
    pub cache_capacity: usize,
    /// Worker threads for [`FaultOracle::answer_batch`]. `0` means "use the
    /// machine's available parallelism".
    pub workers: usize,
    /// Record LBC certificates during construction and repair. Certificates
    /// let the churn loop seed localized repair from the spots where the
    /// spanner's redundancy was thinnest; disable to save memory.
    pub collect_certificates: bool,
    /// Namespace folded into every cache key fingerprint. Oracles serving a
    /// *remapped region* of a larger graph (shards) must use a region-unique
    /// namespace: their local element ids overlap, so unqualified keys of
    /// identical local fault patterns would collide across regions. `0` (the
    /// default) is the global namespace and keeps fingerprints unchanged.
    pub cache_namespace: u64,
}

impl Default for OracleOptions {
    fn default() -> Self {
        Self {
            cache_capacity: 128,
            workers: 0,
            collect_certificates: true,
            cache_namespace: 0,
        }
    }
}

/// A query-serving engine over a fault-tolerant spanner.
///
/// The oracle owns the input graph `G`, the spanner `H`, and the serving
/// state (tree cache, metrics, accumulated damage). Queries take `&self` and
/// are safe to issue from many threads; the churn loop
/// ([`FaultOracle::apply_wave`](crate::churn)) takes `&mut self` because it
/// swaps the graphs.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct FaultOracle {
    pub(crate) base_graph: Graph,
    pub(crate) graph: Graph,
    pub(crate) spanner: Graph,
    pub(crate) params: SpannerParams,
    pub(crate) options: OracleOptions,
    pub(crate) certificates: Vec<EdgeCertificate>,
    pub(crate) damage_vertices: Vec<VertexId>,
    pub(crate) damage_edges: Vec<(VertexId, VertexId)>,
    pub(crate) epoch: u64,
    pub(crate) cache: Mutex<TreeCache>,
    pub(crate) metrics: OracleMetrics,
    /// Pooled buffers for the churn loop, alive across waves so steady-state
    /// repair never re-pays graph-sized setup allocations (see
    /// [`crate::churn::WaveScratch`]).
    pub(crate) wave_scratch: crate::churn::WaveScratch,
}

std::thread_local! {
    /// Recycled Dijkstra buffers for entry points that have no caller-owned
    /// scratch (single queries). Thread-local, so concurrent `distance()`
    /// callers never serialize on a shared pool lock and the cached hit
    /// path stays allocation-free after the first query on a thread.
    static QUERY_SCRATCH: std::cell::RefCell<DijkstraScratch> =
        std::cell::RefCell::new(DijkstraScratch::new());
}

impl FaultOracle {
    /// Builds the spanner with the paper's polynomial-time modified greedy
    /// and wraps it in an oracle.
    #[must_use]
    pub fn build(graph: Graph, params: SpannerParams, options: OracleOptions) -> Self {
        let build_options = PolyGreedyOptions {
            collect_certificates: options.collect_certificates,
            ..PolyGreedyOptions::default()
        };
        let result = poly_greedy_spanner_with(&graph, params, &build_options);
        Self::from_result(graph, result, options)
    }

    /// Wraps an already-built spanner (from any construction in the
    /// workspace) in an oracle.
    ///
    /// # Panics
    ///
    /// Panics if the spanner is not over the same vertex set as the graph.
    #[must_use]
    pub fn from_result(graph: Graph, result: SpannerResult, options: OracleOptions) -> Self {
        assert_eq!(
            graph.vertex_count(),
            result.spanner.vertex_count(),
            "spanner must be over the graph's vertex set"
        );
        // Serving reads flat CSR slices; fold any construction-time append
        // buffers into the core once, up front.
        let mut graph = graph;
        graph.compact();
        let mut spanner = result.spanner;
        spanner.compact();
        let cache = Mutex::new(TreeCache::new(options.cache_capacity));
        Self {
            base_graph: graph.clone(),
            graph,
            spanner,
            params: result.params,
            options,
            certificates: result.certificates,
            damage_vertices: Vec::new(),
            damage_edges: Vec::new(),
            epoch: 0,
            cache,
            metrics: OracleMetrics::default(),
            wave_scratch: crate::churn::WaveScratch::default(),
        }
    }

    /// The current effective input graph (base graph minus accumulated
    /// damage). Query edge-fault identifiers refer to this graph.
    #[inline]
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current spanner being served.
    #[inline]
    #[must_use]
    pub fn spanner(&self) -> &Graph {
        &self.spanner
    }

    /// The pristine input graph from before any fault wave.
    #[inline]
    #[must_use]
    pub fn base_graph(&self) -> &Graph {
        &self.base_graph
    }

    /// The parameters the spanner targets.
    #[inline]
    #[must_use]
    pub fn params(&self) -> SpannerParams {
        self.params
    }

    /// The stretch bound `2k − 1` as a float, for stretch audits.
    #[inline]
    #[must_use]
    pub fn stretch_bound(&self) -> f64 {
        f64::from(self.params.stretch())
    }

    /// Serving metrics (lock-free; safe to read at any time).
    #[inline]
    #[must_use]
    pub fn metrics(&self) -> &OracleMetrics {
        &self.metrics
    }

    /// The number of structural changes (fault waves / repairs) applied so
    /// far. Cached artifacts never survive an epoch change.
    #[inline]
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The LBC certificates currently held (construction plus repairs),
    /// relative to [`FaultOracle::graph`] / [`FaultOracle::spanner`].
    #[must_use]
    pub fn certificates(&self) -> &[EdgeCertificate] {
        &self.certificates
    }

    /// Heap bytes held by the serving working set: the base and effective
    /// graphs, the spanner, and the tree cache. Certificates and damage
    /// lists are excluded — they scale with churn history, not with what a
    /// query touches.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.base_graph.memory_bytes()
            + self.graph.memory_bytes()
            + self.spanner.memory_bytes()
            + self
                .cache
                .lock()
                .expect("tree cache poisoned")
                .memory_bytes()
    }

    /// Distance in `H ∖ F`, or `None` when the faults disconnect the pair
    /// (or fault an endpoint).
    ///
    /// On a cached-tree hit this path performs **no heap allocation**: the
    /// borrowed cache key is derived in place, the tree is read through an
    /// `Arc` handle, and no `Query`/`FaultSet` is cloned.
    #[must_use]
    pub fn distance(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<f64> {
        self.with_scratch(|scratch| {
            let key = self.key_ref(faults);
            self.answer_with_key(u, v, QueryKind::Distance, &key, scratch)
        })
        .distance
    }

    /// Distance plus an explicit shortest path in `H ∖ F`.
    #[must_use]
    pub fn path(
        &self,
        u: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Option<(f64, Vec<VertexId>)> {
        let answer = self.with_scratch(|scratch| {
            let key = self.key_ref(faults);
            self.answer_with_key(u, v, QueryKind::Path, &key, scratch)
        });
        Some((answer.distance?, answer.path?))
    }

    /// Answers one query. For batches prefer
    /// [`FaultOracle::answer_batch`](crate::batch), which reuses scratch
    /// buffers and parallelizes across fault-set groups.
    #[must_use]
    pub fn answer(&self, query: &Query) -> Answer {
        self.with_scratch(|scratch| self.answer_with_scratch(query, scratch))
    }

    /// Runs `f` with this thread's recycled [`DijkstraScratch`]. No lock, no
    /// allocation; the buffers persist for the thread's lifetime. Must not
    /// be nested (the query paths never do).
    pub(crate) fn with_scratch<T>(&self, f: impl FnOnce(&mut DijkstraScratch) -> T) -> T {
        QUERY_SCRATCH.with(|scratch| {
            f(&mut scratch
                .try_borrow_mut()
                .expect("query scratch must not be borrowed re-entrantly"))
        })
    }

    /// The shared single-query path: tree lookup / compute, then read.
    pub(crate) fn answer_with_scratch(
        &self,
        query: &Query,
        scratch: &mut DijkstraScratch,
    ) -> Answer {
        let key = self.key_ref(&query.faults);
        self.answer_with_key(query.u, query.v, query.kind, &key, scratch)
    }

    /// Derives the borrowed (allocation-free) cache key for a fault set
    /// under this oracle's namespace.
    pub(crate) fn key_ref<'a>(&self, faults: &'a FaultSet) -> KeyRef<'a> {
        KeyRef::new(self.options.cache_namespace, faults)
    }

    /// The cache namespace this oracle keys its trees under.
    pub(crate) fn cache_namespace(&self) -> u64 {
        self.options.cache_namespace
    }

    /// Like [`FaultOracle::answer_with_scratch`] but with the cache key
    /// already derived — the batch path computes one fingerprint per
    /// fault-set group and reuses it per query.
    pub(crate) fn answer_with_key(
        &self,
        u: VertexId,
        v: VertexId,
        kind: QueryKind,
        key: &KeyRef<'_>,
        scratch: &mut DijkstraScratch,
    ) -> Answer {
        let (tree, cache_hit) = self.tree_for(key, u, v, scratch);
        self.answer_from_tree(u, v, kind, &tree, cache_hit)
    }

    /// Reads one answer off an already-resolved tree rooted at `u` or `v`.
    /// The batch path holds the group's last tree and short-circuits the
    /// cache lookup entirely when consecutive queries share a root.
    pub(crate) fn answer_from_tree(
        &self,
        u: VertexId,
        v: VertexId,
        kind: QueryKind,
        tree: &ShortestPathTree,
        cache_hit: bool,
    ) -> Answer {
        self.metrics.record_query(cache_hit);
        let root = tree.source();
        let other = if root == u { v } else { u };

        let distance = tree.distance_to(other);
        let path = match (kind, distance) {
            (QueryKind::Path, Some(_)) => tree.path_to(other).map(|mut p| {
                // Orient the path u → v regardless of which endpoint the
                // cached tree happens to be rooted at.
                if root != u {
                    p.reverse();
                }
                p
            }),
            _ => None,
        };
        Answer {
            distance,
            path,
            cache_hit,
        }
    }

    /// Fetches a cached shortest-path tree rooted at either endpoint of the
    /// query, or computes (and caches) one rooted at `u`.
    pub(crate) fn tree_for(
        &self,
        key: &KeyRef<'_>,
        u: VertexId,
        v: VertexId,
        scratch: &mut DijkstraScratch,
    ) -> (Arc<ShortestPathTree>, bool) {
        if self.options.cache_capacity > 0 {
            let mut cache = self.cache.lock().expect("tree cache poisoned");
            // The graph is undirected, so a tree rooted at either endpoint
            // answers the pair; hot-source traffic hits on `u`, symmetric
            // repeat traffic hits on `v`. One slot scan probes both roots.
            if let Some(tree) = cache.get_either_ref(key, u, v) {
                return (tree, true);
            }
        }
        self.compute_tree(key, u, scratch)
    }

    /// Fetches or computes the shortest-path tree rooted at exactly `root`
    /// under the given fault set. The sharded serving layer uses this to read
    /// frontier distances off both endpoints' trees for its escape
    /// certificate, where a tree rooted at the "wrong" endpoint would not do.
    pub(crate) fn tree_rooted_at(
        &self,
        key: &KeyRef<'_>,
        root: VertexId,
        scratch: &mut DijkstraScratch,
    ) -> (Arc<ShortestPathTree>, bool) {
        if self.options.cache_capacity > 0 {
            let mut cache = self.cache.lock().expect("tree cache poisoned");
            if let Some(tree) = cache.get_ref(key, root) {
                return (tree, true);
            }
        }
        self.compute_tree(key, root, scratch)
    }

    /// Computes (and caches) a tree rooted at `root` on the faulted spanner.
    /// This is the miss path: translating edge faults and materializing the
    /// owned cache key may allocate.
    fn compute_tree(
        &self,
        key: &KeyRef<'_>,
        root: VertexId,
        scratch: &mut DijkstraScratch,
    ) -> (Arc<ShortestPathTree>, bool) {
        // Compute outside the lock; concurrent workers may race on the same
        // tree, in which case the last insert simply wins.
        let spanner_faults = key.faults().translate_edges(&self.graph, &self.spanner);
        let view = spanner_faults.apply(&self.spanner);
        let tree = Arc::new(scratch.shortest_path_tree(&view, root));
        self.metrics.record_tree_built();
        if self.options.cache_capacity > 0 {
            let mut cache = self.cache.lock().expect("tree cache poisoned");
            cache.insert(key.to_owned_key(), root, Arc::clone(&tree));
        }
        (tree, false)
    }

    /// Drops every cached tree and bumps the epoch; called by every
    /// structural mutation.
    pub(crate) fn invalidate_serving_state(&mut self) {
        self.epoch += 1;
        self.cache.lock().expect("tree cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::dijkstra::weighted_distance;
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_oracle(seed: u64, f: u32) -> FaultOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(24, 0.3, &mut rng);
        FaultOracle::build(graph, SpannerParams::vertex(2, f), OracleOptions::default())
    }

    #[test]
    fn distances_match_dijkstra_on_the_spanner() {
        let oracle = small_oracle(1, 1);
        let spanner = oracle.spanner().clone();
        for (u, v) in [(0, 5), (3, 9), (11, 2)] {
            let faults = FaultSet::vertices([vid(7)]);
            let expected = {
                let view = faults.apply(&spanner);
                weighted_distance(&view, vid(u), vid(v))
            };
            assert_eq!(oracle.distance(vid(u), vid(v), &faults), expected);
        }
    }

    #[test]
    fn paths_are_valid_spanner_walks_with_matching_length() {
        let oracle = small_oracle(2, 1);
        let faults = FaultSet::vertices([vid(4)]);
        let (d, path) = oracle.path(vid(0), vid(13), &faults).expect("connected");
        assert_eq!(path.first(), Some(&vid(0)));
        assert_eq!(path.last(), Some(&vid(13)));
        let mut walked = 0.0;
        for pair in path.windows(2) {
            let e = oracle
                .spanner()
                .edge_between(pair[0], pair[1])
                .expect("path must use spanner edges");
            walked += oracle.spanner().weight(e);
            assert!(!faults.contains_vertex(pair[0]));
        }
        assert!((walked - d).abs() < 1e-9);
    }

    #[test]
    fn path_orientation_follows_the_query() {
        let oracle = small_oracle(3, 1);
        let faults = FaultSet::empty(ftspan::FaultModel::Vertex);
        let (_, forward) = oracle.path(vid(2), vid(17), &faults).unwrap();
        let (_, backward) = oracle.path(vid(17), vid(2), &faults).unwrap();
        assert_eq!(forward.first(), Some(&vid(2)));
        assert_eq!(backward.first(), Some(&vid(17)));
        let mut reversed = backward.clone();
        reversed.reverse();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn faulted_endpoint_yields_none() {
        let oracle = small_oracle(4, 1);
        let faults = FaultSet::vertices([vid(5)]);
        assert_eq!(oracle.distance(vid(5), vid(1), &faults), None);
        assert_eq!(oracle.distance(vid(1), vid(5), &faults), None);
        assert!(oracle.path(vid(5), vid(1), &faults).is_none());
    }

    #[test]
    fn repeated_fault_sets_hit_the_cache() {
        let oracle = small_oracle(5, 1);
        let faults = FaultSet::vertices([vid(3)]);
        let first = oracle.answer(&Query::distance(vid(0), vid(8), faults.clone()));
        assert!(!first.cache_hit);
        let second = oracle.answer(&Query::distance(vid(0), vid(9), faults.clone()));
        assert!(second.cache_hit, "same fault set and root must hit");
        // Symmetric query shares the min-endpoint-rooted tree.
        let third = oracle.answer(&Query::distance(vid(8), vid(0), faults));
        assert!(third.cache_hit);
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.trees_built, 1);
    }

    #[test]
    fn cache_capacity_zero_never_hits() {
        let mut rng = StdRng::seed_from_u64(6);
        let graph = generators::connected_gnp(16, 0.3, &mut rng);
        let options = OracleOptions {
            cache_capacity: 0,
            ..OracleOptions::default()
        };
        let oracle = FaultOracle::build(graph, SpannerParams::vertex(2, 1), options);
        let faults = FaultSet::vertices([vid(2)]);
        for _ in 0..3 {
            let a = oracle.answer(&Query::distance(vid(0), vid(5), faults.clone()));
            assert!(!a.cache_hit);
        }
        assert_eq!(oracle.metrics().snapshot().trees_built, 3);
    }

    #[test]
    fn edge_fault_queries_translate_to_the_spanner() {
        let mut rng = StdRng::seed_from_u64(7);
        let graph = generators::connected_gnp(18, 0.35, &mut rng);
        let params = SpannerParams::edge(2, 1);
        let oracle = FaultOracle::build(graph, params, OracleOptions::default());
        // Fault a spanner edge by its *input graph* id and check the oracle
        // routes around it exactly like Dijkstra on H minus that edge.
        let (graph_id, _) = oracle
            .graph()
            .edges()
            .find(|(_, e)| {
                oracle
                    .spanner()
                    .edge_between(e.source(), e.target())
                    .is_some()
            })
            .expect("spanner edges exist");
        let (u, v) = oracle.graph().edge(graph_id).endpoints();
        let faults = FaultSet::edges([graph_id]);
        let expected = {
            let spanner = oracle.spanner();
            let translated = faults.translate_edges(oracle.graph(), spanner);
            let view = translated.apply(spanner);
            weighted_distance(&view, u, v)
        };
        assert_eq!(oracle.distance(u, v, &faults), expected);
        // The direct edge is faulted, so any finite answer is a detour.
        if let Some(d) = expected {
            assert!(d >= 2.0 - 1e-9);
        }
    }

    #[test]
    fn stale_out_of_range_edge_fault_ids_do_not_panic() {
        // Clients may resend fault sets built against an older epoch whose
        // edge ids no longer exist; the oracle must serve, not crash.
        let mut rng = StdRng::seed_from_u64(10);
        let graph = generators::connected_gnp(16, 0.35, &mut rng);
        let oracle = FaultOracle::build(graph, SpannerParams::edge(2, 1), OracleOptions::default());
        let stale = FaultSet::edges([ftspan_graph::eid(99_999)]);
        let expected = oracle.distance(vid(0), vid(1), &FaultSet::edges([]));
        assert_eq!(oracle.distance(vid(0), vid(1), &stale), expected);
    }

    #[test]
    fn from_result_accepts_prebuilt_spanners() {
        let mut rng = StdRng::seed_from_u64(8);
        let graph = generators::connected_gnp(14, 0.4, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = ftspan::poly_greedy_spanner(&graph, params);
        let edges = result.spanner.edge_count();
        let oracle = FaultOracle::from_result(graph, result, OracleOptions::default());
        assert_eq!(oracle.spanner().edge_count(), edges);
        assert_eq!(oracle.params(), params);
        assert_eq!(oracle.epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "vertex set")]
    fn mismatched_spanner_is_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let graph = generators::connected_gnp(12, 0.4, &mut rng);
        let other = generators::path(13);
        let result = ftspan::poly_greedy_spanner(&other, SpannerParams::vertex(2, 1));
        let _ = FaultOracle::from_result(graph, result, OracleOptions::default());
    }
}
