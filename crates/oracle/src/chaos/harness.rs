//! The chaos harness: interleaves adversarial scenarios against a live
//! [`OracleService`] while a mirror oracle checks every answer.
//!
//! A [`ScenarioPlan`] is a fully materialized script — per round, a query
//! burst and optionally a fault wave. [`run_chaos`] interleaves the rounds
//! of every plan round-robin against one shared service (so scenarios
//! stress each other the way mixed production traffic would), and after
//! every round enforces the exactness contract differentially: each
//! answered ticket must carry the **bit-identical** distance the mirror
//! oracle computes for the same query, and every witness path must be a
//! genuine walk of the published spanner with the answered length. Waves
//! are applied to the mirror through the same churn configuration the
//! service uses, so the two repaired spanners must stay in lockstep
//! (asserted by edge count after every wave).
//!
//! The harness records the degradation envelope as it runs: wall-clock
//! **recovery time** per wave (submit-to-publication, barrier included),
//! **shed rate** from the service's admission counters, and the
//! **global-fallback rate** for routing backends. Divergence panics with
//! the scenario name and round — a chaos run that returns is a passed run.

use std::time::{Duration, Instant};

use ftspan::FaultSet;

use crate::query::{Answer, Query};
use crate::service::{OracleService, TicketState};
use crate::traits::SpannerOracle;

/// One scripted round of a scenario: a query burst, then optionally a
/// permanent fault wave through the churn loop.
#[derive(Clone, Debug)]
pub struct ChaosRound {
    /// Queries submitted (as one batch) before the wave.
    pub queries: Vec<Query>,
    /// A fault wave to apply after the burst, if any.
    pub wave: Option<FaultSet>,
}

/// A named, fully materialized chaos scenario.
#[derive(Clone, Debug)]
pub struct ScenarioPlan {
    /// Scenario name, used in reports and divergence panics.
    pub name: String,
    /// The scripted rounds, executed in order (interleaved with the other
    /// plans' rounds by [`run_chaos`]).
    pub rounds: Vec<ChaosRound>,
}

impl ScenarioPlan {
    /// A plan where every round submits `queries` and applies no wave.
    #[must_use]
    pub fn queries_only(name: impl Into<String>, bursts: Vec<Vec<Query>>) -> Self {
        Self {
            name: name.into(),
            rounds: bursts
                .into_iter()
                .map(|queries| ChaosRound {
                    queries,
                    wave: None,
                })
                .collect(),
        }
    }
}

/// What one scenario did to the service, measured across its rounds.
#[derive(Clone, Debug, Default)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Rounds executed.
    pub rounds: usize,
    /// Waves applied.
    pub waves: usize,
    /// Tickets submitted by this scenario's bursts.
    pub submitted: u64,
    /// Tickets answered.
    pub answered: u64,
    /// Tickets shed by admission control.
    pub shed: u64,
    /// Duplicate tickets coalesced before the backend.
    pub coalesced: u64,
    /// Global-fallback answers attributed to this scenario's rounds
    /// (routing backends only; `0` for the single oracle).
    pub global_fallbacks: u64,
    /// Total submit-to-publication wall clock across this scenario's waves.
    pub recovery: Duration,
    /// The slowest single wave.
    pub max_recovery: Duration,
    /// Spanner edges added by repair.
    pub edges_added: u64,
    /// Waves whose local repair escalated to a full respan.
    pub escalations: u64,
}

impl ScenarioReport {
    /// Fraction of submitted tickets shed (0 when nothing was submitted).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Fraction of answered tickets that took the global-fallback path.
    #[must_use]
    pub fn fallback_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.global_fallbacks as f64 / self.answered as f64
        }
    }

    /// Mean recovery time per wave (zero when no wave was applied).
    #[must_use]
    pub fn mean_recovery(&self) -> Duration {
        if self.waves == 0 {
            Duration::ZERO
        } else {
            self.recovery / u32::try_from(self.waves).unwrap_or(u32::MAX)
        }
    }
}

/// The full degradation envelope of one chaos run.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Per-scenario measurements, in plan order.
    pub scenarios: Vec<ScenarioReport>,
}

impl ChaosReport {
    /// Total tickets answered across all scenarios.
    #[must_use]
    pub fn total_answered(&self) -> u64 {
        self.scenarios.iter().map(|s| s.answered).sum()
    }

    /// Total waves applied across all scenarios.
    #[must_use]
    pub fn total_waves(&self) -> usize {
        self.scenarios.iter().map(|s| s.waves).sum()
    }

    /// The envelope as a GitHub-flavored markdown table (the shape the
    /// README's "Degradation envelope" section embeds).
    #[must_use]
    pub fn markdown_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| scenario | rounds | waves | answered | shed rate | fallback rate | mean recovery | max recovery | edges added |"
        );
        let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|---:|");
        for s in &self.scenarios {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.1}% | {:.1}% | {:.2} ms | {:.2} ms | {} |",
                s.name,
                s.rounds,
                s.waves,
                s.answered,
                s.shed_rate() * 100.0,
                s.fallback_rate() * 100.0,
                s.mean_recovery().as_secs_f64() * 1e3,
                s.max_recovery.as_secs_f64() * 1e3,
                s.edges_added,
            );
        }
        out
    }
}

/// Locality-aware fallback counter, `0` for non-routing backends.
fn fallbacks<O: SpannerOracle>(oracle: &O) -> u64 {
    oracle
        .service_metrics()
        .locality
        .map_or(0, |split| split.global_fallbacks)
}

/// Runs every plan against `service`, interleaving their rounds
/// round-robin, and checks each answer against `mirror` — a fresh oracle
/// built identically to the service's backend (either backend type works:
/// the exactness contract makes their distances bit-identical).
///
/// The mirror receives every wave through the service's own
/// [`ChurnConfig`](crate::ChurnConfig), so its spanner and the published
/// epoch's must agree after every repair.
///
/// # Panics
///
/// Panics — with the scenario name and round — the moment any answered
/// ticket diverges from the mirror, a witness path is not a genuine
/// spanner walk of the answered length, a wave leaves the two spanners
/// with different edge counts, or a wave ticket resolves to anything but
/// [`TicketState::Waved`].
pub fn run_chaos<O, M>(
    service: &OracleService<O>,
    mirror: &mut M,
    plans: Vec<ScenarioPlan>,
) -> ChaosReport
where
    O: SpannerOracle + 'static,
    M: SpannerOracle,
{
    let churn = service.config().churn.clone();
    let mut reports: Vec<ScenarioReport> = plans
        .iter()
        .map(|plan| ScenarioReport {
            name: plan.name.clone(),
            ..ScenarioReport::default()
        })
        .collect();
    let mut cursors = vec![0usize; plans.len()];
    let mut remaining: usize = plans.iter().map(|p| p.rounds.len()).sum();

    while remaining > 0 {
        for (idx, plan) in plans.iter().enumerate() {
            let Some(round) = plan.rounds.get(cursors[idx]) else {
                continue;
            };
            cursors[idx] += 1;
            remaining -= 1;
            run_round(service, mirror, &churn, plan, round, &mut reports[idx]);
        }
    }
    ChaosReport { scenarios: reports }
}

fn run_round<O, M>(
    service: &OracleService<O>,
    mirror: &mut M,
    churn: &crate::churn::ChurnConfig,
    plan: &ScenarioPlan,
    round: &ChaosRound,
    report: &mut ScenarioReport,
) where
    O: SpannerOracle + 'static,
    M: SpannerOracle,
{
    let name = &plan.name;
    let round_no = report.rounds;
    report.rounds += 1;
    let before = service.metrics();
    let fallbacks_before = fallbacks(&*service.oracle());

    // Query burst: submit as one batch, wait every ticket, check answered
    // tickets against the mirror.
    if !round.queries.is_empty() {
        let tickets = service.submit_batch_ref(round.queries.iter());
        let expected = mirror.answer_batch(&round.queries);
        let mut answered: Vec<(usize, Answer)> = Vec::with_capacity(tickets.len());
        for (i, ticket) in tickets.into_iter().enumerate() {
            match service.wait(ticket) {
                TicketState::Answered(answer) => answered.push((i, answer)),
                TicketState::Shed => {}
                state => panic!("{name} round {round_no}: query ticket resolved to {state:?}"),
            }
        }
        // One epoch pin for all the path checks; dropped before any wave.
        let epoch = service.oracle();
        let spanner = epoch.spanner();
        for (i, got) in &answered {
            let want = &expected[*i];
            let query = &round.queries[*i];
            assert_eq!(
                want.distance.map(f64::to_bits),
                got.distance.map(f64::to_bits),
                "{name} round {round_no}: distance bits diverged for {query:?}"
            );
            match (&want.path, &got.path) {
                (None, None) => {}
                (Some(_), Some(path)) => {
                    // Shortest paths need not be unique across backends:
                    // demand a genuine spanner walk of the answered length.
                    assert_eq!(path.first(), Some(&query.u), "{name} round {round_no}");
                    assert_eq!(path.last(), Some(&query.v), "{name} round {round_no}");
                    let mut walked = 0.0;
                    for hop in path.windows(2) {
                        let e = spanner.edge_between(hop[0], hop[1]).unwrap_or_else(|| {
                            panic!("{name} round {round_no}: non-spanner hop in {path:?}")
                        });
                        walked += spanner.weight(e);
                    }
                    let d = got.distance.expect("path answers carry a distance");
                    assert!(
                        (walked - d).abs() < 1e-9,
                        "{name} round {round_no}: walk length {walked} != distance {d}"
                    );
                }
                other => panic!("{name} round {round_no}: path presence diverged: {other:?}"),
            }
        }
    }

    // Wave: submit-to-publication is the recovery time an operator sees —
    // barrier drain, repair, and region rebuilds included.
    if let Some(wave) = &round.wave {
        let start = Instant::now();
        let ticket = service.submit_wave(wave.clone());
        let state = service.wait(ticket);
        let elapsed = start.elapsed();
        let TicketState::Waved(wave_report) = state else {
            panic!("{name} round {round_no}: wave ticket resolved to {state:?}");
        };
        let mirror_report = mirror.apply_wave(wave, churn);
        let epoch = service.oracle();
        assert_eq!(
            epoch.spanner().edge_count(),
            mirror.spanner().edge_count(),
            "{name} round {round_no}: repaired spanners diverged"
        );
        assert_eq!(
            wave_report.outcome.edges_added, mirror_report.outcome.edges_added,
            "{name} round {round_no}: repair decisions diverged"
        );
        drop(epoch);
        report.waves += 1;
        report.recovery += elapsed;
        report.max_recovery = report.max_recovery.max(elapsed);
        report.edges_added += wave_report.outcome.edges_added as u64;
        report.escalations += u64::from(wave_report.outcome.escalated);
    }

    let after = service.metrics();
    report.submitted += after.submitted - before.submitted;
    report.answered += after.answered - before.answered;
    report.shed += after.shed - before.shed;
    report.coalesced += after.coalesced - before.coalesced;
    report.global_fallbacks += fallbacks(&*service.oracle()) - fallbacks_before;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::waves::{high_degree_wave, zipf_queries};
    use crate::oracle::{FaultOracle, OracleOptions};
    use crate::service::ServiceConfig;
    use ftspan::{FaultModel, SpannerParams};
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn backend(seed: u64) -> FaultOracle {
        let mut r = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(40, 0.15, &mut r);
        FaultOracle::build(graph, SpannerParams::vertex(2, 2), OracleOptions::default())
    }

    #[test]
    fn harness_interleaves_and_reports() {
        let mirror_src = backend(31);
        let mut mirror = backend(31);
        let service = OracleService::new(backend(31), ServiceConfig::default());
        let empty = FaultSet::empty(FaultModel::Vertex);
        let plans = vec![
            ScenarioPlan {
                name: "targeted-high-degree".into(),
                rounds: (0..3)
                    .map(|i| ChaosRound {
                        queries: zipf_queries(mirror_src.graph(), 20, 1.1, &empty, 50 + i),
                        wave: (i == 1).then(|| high_degree_wave(mirror_src.graph(), 2)),
                    })
                    .collect(),
            },
            ScenarioPlan::queries_only(
                "flash-crowd",
                (0..2)
                    .map(|i| zipf_queries(mirror_src.graph(), 30, 1.4, &empty, 90 + i))
                    .collect(),
            ),
        ];
        let report = run_chaos(&service, &mut mirror, plans);
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(report.total_waves(), 1);
        let targeted = &report.scenarios[0];
        assert_eq!(targeted.rounds, 3);
        assert_eq!(targeted.waves, 1);
        assert!(targeted.answered > 0);
        assert!(targeted.max_recovery >= targeted.mean_recovery());
        let table = report.markdown_table();
        assert!(table.contains("| targeted-high-degree |"));
        assert!(table.contains("| flash-crowd |"));
    }
}
