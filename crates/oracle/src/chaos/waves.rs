//! Adversarial wave and workload generators.
//!
//! Random churn measures the average case; an adversary aims. Every
//! generator here is deterministic given its inputs (ties broken by vertex
//! id, randomness through a seeded RNG), so a chaos run is reproducible
//! from its seed, and every generator targets a structural weak point:
//!
//! * [`high_degree_wave`] — fault the hubs. On skewed-degree graphs this
//!   is the classic targeted attack that collapses stale schemes.
//! * [`betweenness_proxy_wave`] — fault the vertices that carry the most
//!   shortest-path traffic, estimated by sampled BFS tree sizes (exact
//!   betweenness is superlinear; the proxy ranks the same heavy hitters).
//! * [`portal_severing_wave`] — fault every portal between two shards of
//!   a [`ShardedOracle`], killing each cut edge the
//!   [`BoundaryIndex`](crate::BoundaryIndex) would stitch through and
//!   forcing cross-shard traffic onto the global-fallback path.
//! * [`correlated_regional_wave`] — concentrate every fault inside one
//!   shard's core, the "rack loss" scenario a uniform sampler almost
//!   never produces.
//! * [`zipf_queries`] — a flash-crowd query stream: endpoint popularity
//!   follows a Zipf law over degree rank, the duplicate-heavy skew that
//!   stresses admission control and rewards coalescing.

use ftspan::FaultSet;
use ftspan_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::query::Query;
use crate::shard::ShardedOracle;

/// Faults the `count` highest-degree vertices of `graph` (ties broken by
/// vertex id, so the wave is deterministic).
#[must_use]
pub fn high_degree_wave(graph: &Graph, count: usize) -> FaultSet {
    let mut ranked: Vec<VertexId> = graph.vertices().collect();
    ranked.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.index()));
    ranked.truncate(count);
    FaultSet::vertices(ranked)
}

/// Faults the `count` vertices with the highest *betweenness proxy*: BFS
/// shortest-path trees are grown from `sources` seeded sample roots, and
/// each vertex is scored by the number of tree descendants it carries,
/// summed over all trees — a linear-time stand-in for betweenness
/// centrality that ranks the same transit chokepoints.
#[must_use]
pub fn betweenness_proxy_wave(graph: &Graph, count: usize, sources: usize, seed: u64) -> FaultSet {
    let n = graph.vertex_count();
    if n == 0 {
        return FaultSet::vertices([]);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut score = vec![0u64; n];
    let mut parent = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut subtree = vec![0u64; n];
    for _ in 0..sources.max(1) {
        let source = rng.gen_range(0..n);
        parent.iter_mut().for_each(|p| *p = usize::MAX);
        order.clear();
        parent[source] = source;
        order.push(source);
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for (w, _) in graph.neighbors(ftspan_graph::vid(v)) {
                if parent[w.index()] == usize::MAX {
                    parent[w.index()] = v;
                    order.push(w.index());
                }
            }
        }
        // Reverse BFS order: children are accumulated before their parent,
        // so `subtree[v]` counts v plus every descendant it routes for.
        subtree.iter_mut().for_each(|s| *s = 1);
        for &v in order.iter().rev() {
            if v != source {
                subtree[parent[v]] += subtree[v];
            }
        }
        for &v in &order {
            if v != source {
                score[v] += subtree[v];
            }
        }
    }
    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by_key(|&v| (std::cmp::Reverse(score[v]), v));
    FaultSet::vertices(ranked.into_iter().take(count).map(ftspan_graph::vid))
}

/// Faults every portal vertex between shards `a` and `b` of `oracle` —
/// after this wave (or under it as a query-time fault set) no cut edge
/// between the two shards survives, so any cross-pair query the stitched
/// pair region cannot certify must take the global-fallback path.
#[must_use]
pub fn portal_severing_wave(oracle: &ShardedOracle, a: u32, b: u32) -> FaultSet {
    FaultSet::vertices(oracle.boundary().portals_between(a, b))
}

/// The adjacent shard pair with the fewest portals — the cheapest boundary
/// for an adversary to sever. `None` when no two shards are adjacent.
#[must_use]
pub fn weakest_boundary_pair(oracle: &ShardedOracle) -> Option<(u32, u32)> {
    oracle
        .boundary()
        .adjacent_pairs()
        .into_iter()
        .min_by_key(|&(a, b)| (oracle.boundary().portals_between(a, b).len(), a, b))
}

/// Faults `count` vertices sampled (without replacement) from one shard's
/// core — a correlated regional failure, every fault landing in the same
/// blast radius instead of spread uniformly.
#[must_use]
pub fn correlated_regional_wave(
    oracle: &ShardedOracle,
    shard: u32,
    count: usize,
    seed: u64,
) -> FaultSet {
    let mut members: Vec<VertexId> = oracle.plan().core(shard as usize).to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher–Yates: the first `count` slots become the sample.
    let take = count.min(members.len());
    for i in 0..take {
        let j = rng.gen_range(i..members.len());
        members.swap(i, j);
    }
    members.truncate(take);
    FaultSet::vertices(members)
}

/// A flash-crowd query stream: `count` queries whose endpoints are drawn
/// from a Zipf(`skew`) law over the degree ranking of `graph`, every query
/// carrying a clone of `faults`. High skew means a handful of hub pairs
/// dominate — the duplicate-heavy stream that admission control and
/// coalescing exist for. Every third query asks for a witness path.
#[must_use]
pub fn zipf_queries(
    graph: &Graph,
    count: usize,
    skew: f64,
    faults: &FaultSet,
    seed: u64,
) -> Vec<Query> {
    let n = graph.vertex_count();
    if n < 2 {
        return Vec::new();
    }
    let mut ranked: Vec<VertexId> = graph.vertices().collect();
    ranked.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.index()));
    // Cumulative Zipf weights over the rank order: weight(rank r) = r^-skew.
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 1..=n {
        total += (rank as f64).powf(-skew);
        cumulative.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng| {
        let x = rng.gen_range(0.0..total);
        let idx = cumulative.partition_point(|&c| c <= x);
        ranked[idx.min(n - 1)]
    };
    (0..count)
        .map(|i| {
            let u = draw(&mut rng);
            let mut v = draw(&mut rng);
            while v == u {
                v = draw(&mut rng);
            }
            if i % 3 == 0 {
                Query::path(u, v, faults.clone())
            } else {
                Query::distance(u, v, faults.clone())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardPlanOptions, ShardedOptions};
    use ftspan::{FaultModel, SpannerParams};
    use ftspan_graph::generators;

    fn star_plus_path() -> Graph {
        // Vertex 0 is the hub of a star over 1..=6; 7..9 hang off vertex 1.
        let mut g = ftspan_graph::GraphBuilder::new().vertices(10);
        for v in 1..=6 {
            g = g.edge(0, v, 1.0);
        }
        g = g.edge(1, 7, 1.0).edge(7, 8, 1.0).edge(8, 9, 1.0);
        g.build()
    }

    #[test]
    fn high_degree_targets_the_hub() {
        let g = star_plus_path();
        let wave = high_degree_wave(&g, 2);
        let faulted = wave.vertex_faults();
        assert!(faulted.contains(&ftspan_graph::vid(0)), "hub is faulted");
        assert!(faulted.contains(&ftspan_graph::vid(1)), "second hub too");
        assert_eq!(high_degree_wave(&g, 2), wave, "deterministic");
    }

    #[test]
    fn betweenness_proxy_finds_the_bridge() {
        // A dumbbell: two cliques joined by the bridge vertex 4.
        let mut b = ftspan_graph::GraphBuilder::new().vertices(9);
        for u in 0..4 {
            for v in (u + 1)..4 {
                b = b.edge(u, v, 1.0);
            }
        }
        for u in 5..9 {
            for v in (u + 1)..9 {
                b = b.edge(u, v, 1.0);
            }
        }
        let g = b.edge(3, 4, 1.0).edge(4, 5, 1.0).build();
        let wave = betweenness_proxy_wave(&g, 1, 8, 42);
        assert_eq!(
            wave.vertex_faults(),
            &[ftspan_graph::vid(4)],
            "the bridge carries every cross-clique tree"
        );
        assert_eq!(betweenness_proxy_wave(&g, 1, 8, 42), wave, "deterministic");
    }

    #[test]
    fn regional_wave_stays_inside_the_shard_core() {
        let mut r = StdRng::seed_from_u64(5);
        let graph = generators::connected_gnp(60, 0.1, &mut r);
        let oracle = ShardedOracle::build(
            graph,
            SpannerParams::vertex(2, 2),
            ShardedOptions {
                plan: ShardPlanOptions {
                    shards: 3,
                    ..ShardPlanOptions::default()
                },
                ..ShardedOptions::default()
            },
        );
        let shard = (0..oracle.shard_count() as u32)
            .max_by_key(|&s| oracle.plan().core(s as usize).len())
            .expect("at least one shard");
        let wave = correlated_regional_wave(&oracle, shard, 5, 9);
        assert_eq!(
            wave.vertex_faults().len(),
            5.min(oracle.plan().core(shard as usize).len())
        );
        assert!(!wave.is_empty());
        for &v in wave.vertex_faults() {
            assert_eq!(oracle.plan().shard_of(v), shard, "fault escaped the region");
        }
    }

    #[test]
    fn portal_severing_kills_every_cut_edge() {
        let mut r = StdRng::seed_from_u64(6);
        let graph = generators::connected_gnp(60, 0.1, &mut r);
        let oracle = ShardedOracle::build(
            graph,
            SpannerParams::vertex(2, 2),
            ShardedOptions {
                plan: ShardPlanOptions {
                    shards: 3,
                    ..ShardPlanOptions::default()
                },
                ..ShardedOptions::default()
            },
        );
        let (a, b) = weakest_boundary_pair(&oracle).expect("shards touch");
        let wave = portal_severing_wave(&oracle, a, b);
        assert!(!wave.is_empty());
        assert_eq!(
            oracle
                .boundary()
                .live_cut_edges_between(a, b, &wave, oracle.spanner()),
            0,
            "no cut edge survives the severing wave"
        );
    }

    #[test]
    fn zipf_streams_are_skewed_and_reproducible() {
        let mut r = StdRng::seed_from_u64(7);
        let graph = generators::barabasi_albert(50, 2, &mut r);
        let empty = FaultSet::empty(FaultModel::Vertex);
        let stream = zipf_queries(&graph, 300, 1.2, &empty, 11);
        assert_eq!(stream.len(), 300);
        assert_eq!(stream, zipf_queries(&graph, 300, 1.2, &empty, 11));
        // Skew: the single most popular endpoint must appear far more often
        // than the uniform expectation of 2 * 300 / 50 = 12 endpoints.
        let mut counts = std::collections::HashMap::new();
        for q in &stream {
            *counts.entry(q.u).or_insert(0u32) += 1;
            *counts.entry(q.v).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 36, "flash crowd is not skewed: max endpoint {max}");
    }
}
