//! # Chaos engineering for the serving stack
//!
//! Everything else in this crate is built to answer correctly; this module
//! is built to make that hard. It has two halves:
//!
//! * [`waves`] — deterministic **adversarial generators**: targeted
//!   high-degree and betweenness-proxy fault waves, portal-severing waves
//!   aimed at the [`BoundaryIndex`](crate::BoundaryIndex) (forcing the
//!   global-fallback path), correlated single-region faults, and Zipf
//!   flash-crowd query streams.
//! * [`harness`] — the **chaos harness**: scripts those generators into
//!   [`ScenarioPlan`]s, interleaves them round-robin against one live
//!   [`OracleService`](crate::OracleService), and after every round checks
//!   each answer bit-for-bit against a mirror oracle while measuring the
//!   degradation envelope (recovery time per wave, shed rate, fallback
//!   rate).
//!
//! The harness is test infrastructure with production manners: it runs
//! against the real service (inline or worker-pool), the real admission
//! control, and the real churn loop — nothing is mocked, so a passed chaos
//! run is evidence about the system that ships.

pub mod harness;
pub mod waves;

pub use harness::{run_chaos, ChaosReport, ChaosRound, ScenarioPlan, ScenarioReport};
pub use waves::{
    betweenness_proxy_wave, correlated_regional_wave, high_degree_wave, portal_severing_wave,
    weakest_boundary_pair, zipf_queries,
};
