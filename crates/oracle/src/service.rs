//! The [`OracleService`] front-end: one lifecycle API — submit, pump/drain,
//! wave, snapshot — over any [`SpannerOracle`] backend, with a concurrent
//! epoch-published core.
//!
//! The backends answer batches; a *service* has to decide what reaches
//! them, and on how many threads. This module provides:
//!
//! * **A non-blocking request loop.** [`OracleService::submit`] never
//!   blocks on the backend: it coalesces the request into a pending group
//!   (a u64 fault-set fingerprint plus an exact check), charges a ticket
//!   slot from a free list, and returns a [`TicketId`]. Rounds — admit up
//!   to the configured bounds, one backend batch, complete tickets — are
//!   driven either inline ([`OracleService::pump`] /
//!   [`OracleService::drain`] with `workers == 0`, the deterministic
//!   legacy mode) or by a pool of reader worker threads
//!   ([`ServiceConfig::workers`]).
//! * **Epoch publication.** The backend lives behind a published
//!   `Mutex<Arc<O>>` slot. A round briefly locks the slot, clones the
//!   `Arc`, and answers lock-free against that immutable epoch — readers
//!   never block each other, and [`Snapshot::capture`] can run against a
//!   clone off the query path. A wave is an **epoch barrier**: the single
//!   writer waits until every in-flight round has completed, takes the
//!   slot exclusively (parking on a condvar that the last outstanding
//!   [`EpochHandle`] signals on drop), runs [`apply_wave`] in place, and
//!   publishes the repaired epoch by releasing the slot. Every request submitted before the wave is
//!   answered pre-wave, everything after against the repaired spanner —
//!   the same FIFO-barrier contract as the old single-threaded loop.
//! * **Bounded admission.** [`ServiceConfig::max_in_flight`] caps how many
//!   distinct backend queries one round admits, and
//!   [`ServiceConfig::lane_in_flight`] caps them **per admission lane**
//!   (one lane per shard under [`ShardedOracle`]). After a wave, rebuilt
//!   lanes *cool down* for [`ServiceConfig::rebuild_cooldown`] rounds:
//!   requests charged to a cooling lane are shed
//!   ([`RebuildPolicy::Shed`]) or parked ([`RebuildPolicy::Queue`]).
//! * **Submit-time coalescing.** Duplicates of a pending
//!   `(u, v, kind, F)` attach their ticket to the existing group, so the
//!   backend sees each distinct question once and the submit path pays one
//!   fingerprint hash instead of a per-ticket allocation. The pending map
//!   is cleared at every wave submission, so a duplicate can never attach
//!   to a group on the other side of a barrier.
//!
//! With `workers == 0` rounds run synchronously on the calling thread and
//! reproduce the old loop's deterministic round/cooldown accounting
//! exactly. With workers, rounds are autonomous: counts like
//! [`ServiceMetrics::rounds`] become scheduling-dependent, but the
//! `service_vs_direct` differential suite pins that every answered ticket
//! stays **bit-identical** to a direct [`answer_batch`] at worker counts
//! 1, 2, and 8. Only the diagnostic
//! [`Answer::cache_hit`](crate::Answer::cache_hit) flag may differ for
//! coalesced duplicates.
//!
//! [`answer_batch`]: SpannerOracle::answer_batch
//! [`apply_wave`]: SpannerOracle::apply_wave
//! [`Snapshot::capture`]: crate::Snapshot::capture
//! [`ServiceMetrics::rounds`]: crate::ServiceMetrics
//! [`FaultOracle`]: crate::FaultOracle
//! [`ShardedOracle`]: crate::ShardedOracle

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ftspan::FaultSet;

use crate::churn::{ChurnConfig, WaveReport};
use crate::metrics::ServiceMetrics;
use crate::query::{Answer, Query, QueryKind};
use crate::replication::{JournalEntry, WaveJournal};
use crate::traits::SpannerOracle;

/// What happens to requests charged to an admission lane whose region is
/// cooling down after a wave rebuilt it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RebuildPolicy {
    /// Park the request in the queue; it is admitted once the lane's
    /// cooldown expires. No request is lost (the default).
    #[default]
    Queue,
    /// Complete the ticket as [`TicketState::Shed`] immediately — load
    /// shedding for deployments that prefer fast failure over queueing
    /// behind a rebuild.
    Shed,
}

/// Builder-style configuration of an [`OracleService`].
///
/// `ServiceConfig::default()` is a pass-through front-end: unbounded
/// admission, coalescing on, no rebuild cooldown, no worker threads
/// (rounds run inline on the calling thread). Every knob has a consuming
/// `with_*` setter:
///
/// ```
/// use ftspan_oracle::{RebuildPolicy, ServiceConfig};
///
/// let config = ServiceConfig::default()
///     .with_max_in_flight(512)
///     .with_lane_in_flight(64)
///     .with_rebuild_cooldown(2)
///     .with_rebuild_policy(RebuildPolicy::Shed)
///     .with_workers(4);
/// assert_eq!(config.max_in_flight, 512);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Maximum distinct backend queries admitted into one round across all
    /// lanes; `0` means unbounded. Requests over the cap stay queued for
    /// the next round. (With coalescing on, a group of exact duplicates
    /// counts once — the cap bounds what the backend sees.)
    pub max_in_flight: usize,
    /// Maximum backend queries admitted per lane per round; `0` means
    /// unbounded. Under [`ShardedOracle`](crate::ShardedOracle) this
    /// bounds in-flight work **per shard**, so one hot shard cannot starve
    /// the rest of a round's budget.
    pub lane_in_flight: usize,
    /// Coalesce exact-duplicate `(u, v, kind, F)` requests into one
    /// backend query (default `true`). Coalescing happens at submit time:
    /// a duplicate of a still-pending request attaches its ticket to the
    /// existing group instead of enqueueing a new command.
    pub coalesce: bool,
    /// How many rounds a lane stays cooling after a wave rebuilds it;
    /// `0` disables cooldowns (the default).
    pub rebuild_cooldown: u32,
    /// Shed or queue requests charged to a cooling lane.
    pub rebuild_policy: RebuildPolicy,
    /// Cap on pending (queued, unadmitted) tickets; submissions past it
    /// are shed on arrival. `0` means unbounded. Waves are control plane
    /// and are never shed, and (with [`ServiceConfig::coalesce`] on)
    /// neither are exact duplicates of a query already pending — they
    /// join the existing group without spending a queue slot, so a
    /// flash crowd of one hot pair never sheds past its first arrival.
    pub max_pending: usize,
    /// Churn configuration used when a [`ServiceCommand::Wave`] is applied.
    pub churn: ChurnConfig,
    /// Reader worker threads answering rounds concurrently against the
    /// published epoch. `0` (the default) is **inline mode**: no threads
    /// are spawned and [`OracleService::pump`] / [`OracleService::drain`]
    /// execute rounds synchronously with the old loop's deterministic
    /// semantics. With workers, `drain` merely waits for quiescence and
    /// `pump` is a no-op; use [`OracleService::wait`] per ticket.
    pub workers: usize,
    /// Journal every committed wave into a [`ServiceJournal`] (default
    /// `false`). Equivalent to calling [`OracleService::enable_journal`]
    /// right after construction; the journal is the feed replication
    /// followers replay (see [`crate::replication`]).
    pub journal: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 0,
            lane_in_flight: 0,
            coalesce: true,
            rebuild_cooldown: 0,
            rebuild_policy: RebuildPolicy::default(),
            max_pending: 0,
            churn: ChurnConfig::default(),
            workers: 0,
            journal: false,
        }
    }
}

impl ServiceConfig {
    /// Sets the global per-round admission cap (`0` = unbounded).
    #[must_use]
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Sets the per-lane per-round admission cap (`0` = unbounded).
    #[must_use]
    pub fn with_lane_in_flight(mut self, lane_in_flight: usize) -> Self {
        self.lane_in_flight = lane_in_flight;
        self
    }

    /// Enables or disables duplicate-request coalescing.
    #[must_use]
    pub fn with_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Sets how many rounds a rebuilt lane cools down (`0` = off).
    #[must_use]
    pub fn with_rebuild_cooldown(mut self, rounds: u32) -> Self {
        self.rebuild_cooldown = rounds;
        self
    }

    /// Sets the cooling-lane policy.
    #[must_use]
    pub fn with_rebuild_policy(mut self, policy: RebuildPolicy) -> Self {
        self.rebuild_policy = policy;
        self
    }

    /// Sets the pending-queue cap (`0` = unbounded).
    #[must_use]
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Sets the churn configuration applied to submitted waves.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the reader worker-thread count (`0` = inline mode).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables wave journaling from construction (see
    /// [`ServiceConfig::journal`]).
    #[must_use]
    pub fn with_journal(mut self) -> Self {
        self.journal = true;
        self
    }
}

/// One command in the service's FIFO queue.
#[derive(Clone, Debug)]
pub enum ServiceCommand {
    /// Answer one query.
    Query(Query),
    /// Apply a permanent fault wave. Acts as a barrier: processed only once
    /// every command submitted before it has been resolved.
    Wave(FaultSet),
}

/// Handle to one submitted command; redeem it with
/// [`OracleService::state`], [`OracleService::answer`],
/// [`OracleService::wave_report`], or consume it with
/// [`OracleService::wait`]. Carries a generation unique to the issuing
/// service instance and slot incarnation (seeded per instance from a
/// process-wide counter), so a ticket retained across
/// [`OracleService::recycle`] or [`OracleService::wait`] — or redeemed
/// against a different service instance — can never silently alias
/// another request's slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TicketId {
    slot: usize,
    generation: u64,
}

impl TicketId {
    /// The ticket's slot index (stable until the slot is freed by
    /// [`OracleService::wait`] or [`OracleService::recycle`]).
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.slot
    }
}

/// Lifecycle of one submitted command.
#[derive(Clone, Debug)]
pub enum TicketState {
    /// Still queued (or deferred by admission control, or in flight).
    Pending,
    /// Answered by the backend.
    Answered(Answer),
    /// Dropped by admission control (queue overflow, or a cooling lane
    /// under [`RebuildPolicy::Shed`]). The request never reached the
    /// backend; resubmit if the answer is still wanted.
    Shed,
    /// A wave that has been applied, with its report.
    Waved(WaveReport),
}

/// What one [`OracleService::pump`] round (or accumulated
/// [`OracleService::drain`]) did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PumpOutcome {
    /// Tickets completed with an answer.
    pub answered: usize,
    /// Duplicate requests coalesced away before the backend call.
    pub coalesced: usize,
    /// Tickets shed by admission control.
    pub shed: usize,
    /// Waves applied.
    pub waves: usize,
}

impl PumpOutcome {
    /// Accumulates another round's outcome into this one, for callers
    /// interleaving [`OracleService::pump`] and [`OracleService::drain`].
    pub fn absorb(&mut self, other: PumpOutcome) {
        self.answered += other.answered;
        self.coalesced += other.coalesced;
        self.shed += other.shed;
        self.waves += other.waves;
    }

    /// Whether the round completed any ticket at all.
    #[must_use]
    pub fn made_progress(&self) -> bool {
        self.answered + self.shed + self.waves > 0
    }
}

/// Seeds each service's ticket generation space: the high 32 bits identify
/// the instance, the low 32 count its ticket allocations, so tickets
/// cannot cross service instances undetected.
static NEXT_SERVICE_GENERATION: AtomicU64 = AtomicU64::new(0);

const TICKET_MISMATCH: &str =
    "ticket was issued by another service instance or invalidated by OracleService::recycle";

/// Cumulative front-end counters (monotonic; survive
/// [`OracleService::recycle`]).
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    submitted: u64,
    answered: u64,
    coalesced: u64,
    shed: u64,
    waves: u64,
    rounds: u64,
    wave_recovery_micros: u64,
    last_wave_recovery_micros: u64,
}

/// Coalescing key: endpoints, kind, and the fault-set fingerprint mixed
/// into one well-distributed `u64`, stored in an identity-hashed map so
/// the submit hot path pays one multiply-xor mix instead of a SipHash
/// pass per request. A (astronomically unlikely) collision merely
/// forfeits coalescing for the colliding request — the hit path compares
/// endpoints, kind, and the full fault set exactly, so answers stay
/// correct regardless.
type CoalesceKey = u64;

/// Mixes a query's endpoints, kind, and fault fingerprint into a
/// [`CoalesceKey`]. The fingerprint is already well distributed; the
/// finalizer (SplitMix64's) spreads the endpoint/kind bits so the
/// identity-hashed map's low-bit bucketing stays uniform.
#[inline]
fn coalesce_key(query: &Query, fingerprint: u64) -> CoalesceKey {
    let endpoints = ((query.u.index() as u64) << 32) | (query.v.index() as u64);
    let kind = match query.kind {
        QueryKind::Distance => 0u64,
        QueryKind::Path => 1u64,
    };
    let mut x = fingerprint ^ endpoints.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (kind << 63);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Identity hasher for the pre-mixed [`CoalesceKey`]: `write_u64` *is*
/// the hash. Other writes fold bytes in (never used by `u64` keys, but
/// kept total rather than panicking).
#[derive(Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

type KeyHasherBuilder = std::hash::BuildHasherDefault<KeyHasher>;

/// One pending coalescing group: the distinct query plus every ticket
/// awaiting its answer. Freed groups keep their `tickets` allocation in
/// the slab's free list, so steady-state submission is allocation-light.
#[derive(Debug)]
struct Group {
    query: Option<Query>,
    tickets: Vec<TicketId>,
    key: CoalesceKey,
}

#[derive(Debug)]
enum Entry {
    Group(usize),
    Wave { slot: usize, wave: FaultSet },
}

#[derive(Debug)]
struct TicketSlot {
    generation: u64,
    state: TicketState,
}

#[derive(Debug)]
struct CoreState {
    queue: VecDeque<Entry>,
    groups: Vec<Group>,
    free_groups: Vec<usize>,
    /// Pending-group index for submit-time coalescing. Cleared at every
    /// wave submission so groups never straddle a barrier.
    pending_map: HashMap<CoalesceKey, usize, KeyHasherBuilder>,
    slots: Vec<TicketSlot>,
    free_slots: Vec<usize>,
    next_generation: u64,
    /// Tickets queued and not yet admitted (what [`OracleService::pending`]
    /// reports); waves count as one each.
    pending_tickets: usize,
    /// Tickets admitted into rounds that have not completed yet. A wave
    /// barrier fires only when this is zero.
    in_flight: usize,
    /// Set while the wave writer holds (or is acquiring) the epoch slot;
    /// no round may start until the repaired epoch is published.
    wave_in_progress: bool,
    lane_cooldown: Vec<u32>,
    lane_shed: Vec<u64>,
    counters: Counters,
    /// Counter values already handed back through a `pump`/`drain`
    /// outcome; `drain` reports the delta since this mark.
    reported: Counters,
}

impl CoreState {
    fn alloc_slot(&mut self, state: TicketState) -> TicketId {
        self.next_generation += 1;
        let generation = self.next_generation;
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = TicketSlot { generation, state };
                slot
            }
            None => {
                self.slots.push(TicketSlot { generation, state });
                self.slots.len() - 1
            }
        };
        TicketId { slot, generation }
    }

    /// Frees a resolved slot for reuse, invalidating its current ticket.
    fn free_slot(&mut self, slot: usize) {
        self.next_generation += 1;
        self.slots[slot].generation = self.next_generation;
        self.slots[slot].state = TicketState::Pending;
        self.free_slots.push(slot);
    }

    fn alloc_group(&mut self, query: Query, key: CoalesceKey) -> usize {
        match self.free_groups.pop() {
            Some(id) => {
                let group = &mut self.groups[id];
                debug_assert!(group.tickets.is_empty(), "freed group kept tickets");
                group.query = Some(query);
                group.key = key;
                id
            }
            None => {
                self.groups.push(Group {
                    query: Some(query),
                    tickets: Vec::new(),
                    key,
                });
                self.groups.len() - 1
            }
        }
    }

    /// Returns a group's (cleared) ticket buffer to the slab.
    fn free_group(&mut self, id: usize, mut tickets: Vec<TicketId>) {
        tickets.clear();
        self.groups[id].tickets = tickets;
        self.groups[id].query = None;
        self.free_groups.push(id);
    }

    /// Drops a group's pending-map entry if it still points at the group
    /// (a wave submission may have cleared the map already, or a colliding
    /// key may have replaced the entry).
    fn unindex_group(&mut self, id: usize) {
        if self.pending_map.get(&self.groups[id].key) == Some(&id) {
            self.pending_map.remove(&self.groups[id].key);
        }
    }

    fn slot_of(&self, ticket: TicketId) -> &TicketSlot {
        let slot = self.slots.get(ticket.slot);
        assert!(
            slot.is_some_and(|s| s.generation == ticket.generation),
            "{TICKET_MISMATCH}"
        );
        slot.expect("checked above")
    }

    fn tick_cooldowns(&mut self) {
        for cooldown in &mut self.lane_cooldown {
            *cooldown = cooldown.saturating_sub(1);
        }
    }
}

struct Core<O: SpannerOracle> {
    config: ServiceConfig,
    /// The published epoch slot. Rounds lock it only long enough to clone
    /// the `Arc`; the wave writer holds it for the whole `apply_wave`, so
    /// releasing the guard *is* publication.
    epoch: Mutex<Arc<O>>,
    /// Wave-writer parking lot: dropping the last [`EpochHandle`] while
    /// `barrier.parked` is set wakes the writer waiting for slot
    /// exclusivity.
    barrier: Arc<WaveBarrier>,
    state: Mutex<CoreState>,
    /// Signaled on submission, round completion, and wave publication.
    cv: Condvar,
    /// `Some` once journaling is enabled. Locked only on the wave path and
    /// in [`OracleService::enable_journal`], always **after** the epoch
    /// slot (never the reverse) so the two can't deadlock.
    journal: Mutex<Option<Arc<ServiceJournal>>>,
    shutdown: AtomicBool,
    workers: AtomicUsize,
}

/// The live, observable [`WaveJournal`] of a serving primary.
///
/// The wave writer appends the committed entry **while still holding the
/// epoch slot** — releasing the slot is what publishes the epoch — so no
/// reader can ever observe an epoch whose journal entry is missing.
/// Followers consume it with [`ServiceJournal::entries_since`] (catch-up)
/// and [`ServiceJournal::wait_past`] (tailing); both hand out clones, so
/// consumers never hold the journal lock while replaying.
#[derive(Debug)]
pub struct ServiceJournal {
    state: Mutex<WaveJournal>,
    /// Signaled after each appended entry's epoch has been published.
    cv: Condvar,
}

impl ServiceJournal {
    fn new(base_epoch: u64) -> Self {
        Self {
            state: Mutex::new(WaveJournal::new(base_epoch)),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WaveJournal> {
        self.state.lock().expect("wave journal poisoned")
    }

    /// The epoch the journal starts after (see [`WaveJournal::base_epoch`]).
    #[must_use]
    pub fn base_epoch(&self) -> u64 {
        self.lock().base_epoch()
    }

    /// The epoch of the newest journaled wave.
    #[must_use]
    pub fn head_epoch(&self) -> u64 {
        self.lock().head_epoch()
    }

    /// Number of journaled waves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no wave has been journaled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Clones out every entry past `epoch`, oldest first — or `None` when
    /// `epoch` predates the base (the follower must re-bootstrap from a
    /// fresh snapshot instead).
    #[must_use]
    pub fn entries_since(&self, epoch: u64) -> Option<Vec<JournalEntry>> {
        self.lock()
            .entries_since(epoch)
            .map(<[JournalEntry]>::to_vec)
    }

    /// A point-in-time copy of the whole journal (e.g. for
    /// [`WaveJournal::encode`]).
    #[must_use]
    pub fn to_journal(&self) -> WaveJournal {
        self.lock().clone()
    }

    /// Blocks until at least one entry past `epoch` exists, then returns
    /// every such entry; an empty vec means `timeout` elapsed first. The
    /// caller's `epoch` must be at or past [`ServiceJournal::base_epoch`].
    #[must_use]
    pub fn wait_past(&self, epoch: u64, timeout: Duration) -> Vec<JournalEntry> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.lock();
        loop {
            if guard.head_epoch() > epoch {
                return guard
                    .entries_since(epoch)
                    .map(<[JournalEntry]>::to_vec)
                    .unwrap_or_default();
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Vec::new();
            };
            guard = self
                .cv
                .wait_timeout(guard, remaining)
                .expect("wave journal poisoned")
                .0;
        }
    }

    /// Wave-writer side: called while the epoch slot is held, so appends
    /// are serialized and epoch-continuous by construction.
    fn append(&self, entry: JournalEntry) {
        self.lock()
            .append(entry)
            .expect("wave writer broke journal epoch continuity");
    }

    /// Wakes [`ServiceJournal::wait_past`] tails; called after publication.
    fn notify(&self) {
        self.cv.notify_all();
    }
}

/// Where the wave writer sleeps while epoch handles are outstanding.
///
/// Shared (by `Arc`) between [`Core`] and every [`EpochHandle`] so a
/// handle can outlive the service and still notify safely.
#[derive(Debug, Default)]
struct WaveBarrier {
    /// Set (`SeqCst`) by the wave writer before it parks; checked by
    /// [`EpochHandle::drop`] so the query path pays one relaxed-free
    /// atomic load and no lock when no wave is waiting.
    parked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// A read handle to one published epoch of a service's backend, returned
/// by [`OracleService::oracle`]. Dereferences to the backend.
///
/// The handle pins its epoch: a wave barrier cannot publish until every
/// outstanding handle drops. Dropping the handle signals a parked wave
/// writer, so the barrier wakes promptly instead of busy-polling.
pub struct EpochHandle<O: SpannerOracle> {
    /// `Some` until `drop`; taken first so the strong count falls
    /// *before* the writer is notified.
    inner: Option<Arc<O>>,
    barrier: Arc<WaveBarrier>,
}

impl<O: SpannerOracle> EpochHandle<O> {
    fn acquire(core: &Core<O>) -> Self {
        Self {
            inner: Some(Arc::clone(&core.epoch.lock().expect("epoch slot poisoned"))),
            barrier: Arc::clone(&core.barrier),
        }
    }
}

impl<O: SpannerOracle> std::ops::Deref for EpochHandle<O> {
    type Target = O;

    fn deref(&self) -> &O {
        self.inner.as_ref().expect("epoch handle used after drop")
    }
}

impl<O: SpannerOracle> Clone for EpochHandle<O> {
    /// Clones pin the **same** epoch as the original, even if a wave has
    /// published a newer one in the meantime.
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            barrier: Arc::clone(&self.barrier),
        }
    }
}

impl<O: SpannerOracle> Drop for EpochHandle<O> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.barrier.parked.load(Ordering::SeqCst) {
            // Taking the lock orders this notify after the writer's
            // park (or lets the writer observe the dropped count on its
            // pre-wait re-check); without it the wakeup could race into
            // the gap between the writer's check and its wait.
            let _guard = self.barrier.lock.lock().expect("wave barrier poisoned");
            self.barrier.cv.notify_all();
        }
    }
}

impl<O: SpannerOracle> fmt::Debug for EpochHandle<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochHandle")
            .field("alive", &self.inner.is_some())
            .finish_non_exhaustive()
    }
}

/// What one attempted round did (internal).
enum RoundResult {
    /// Queue empty — nothing to do.
    Idle,
    /// A barrier is pending (wave at head with rounds in flight, or a wave
    /// writer mid-apply); the caller should wait for a completion signal.
    Blocked,
    /// A round ran: sheds, deferrals, and/or one backend batch.
    Progress(PumpOutcome),
    /// The caller must apply a wave barrier: it popped the wave and set
    /// `wave_in_progress`; it must drop every epoch handle it holds and
    /// call [`apply_wave_barrier`]. `shed` carries tickets shed by the
    /// same scan (old-loop semantics: sheds resolve, so they don't hold
    /// the barrier).
    Wave {
        slot: usize,
        wave: FaultSet,
        shed: usize,
    },
}

struct ScanResult {
    /// Admitted groups: slab id plus the query moved out of the slab.
    admitted: Vec<(usize, Query)>,
    admitted_tickets: usize,
    shed: usize,
    wave: Option<(usize, FaultSet)>,
    blocked: bool,
}

/// The serving front-end over any [`SpannerOracle`] backend.
///
/// See the [module docs](crate::service) for the architecture (epoch
/// publication, worker pool, admission, coalescing, wave barriers) and the
/// crate docs for an end-to-end example. All methods take `&self`; the
/// service is `Sync` and meant to be shared across submitting threads.
pub struct OracleService<O: SpannerOracle> {
    core: Arc<Core<O>>,
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<O: SpannerOracle> fmt::Debug for OracleService<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OracleService")
            .field("config", &self.core.config)
            .field("workers", &self.core.workers.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<O: SpannerOracle + 'static> OracleService<O> {
    /// Wraps a backend in a service front-end, spawning
    /// [`ServiceConfig::workers`] reader threads (none by default).
    #[must_use]
    pub fn new(oracle: O, config: ServiceConfig) -> Self {
        let lanes = oracle.admission_lanes().max(1);
        let workers = config.workers;
        let core = Arc::new(Core {
            config,
            epoch: Mutex::new(Arc::new(oracle)),
            barrier: Arc::new(WaveBarrier::default()),
            state: Mutex::new(CoreState {
                queue: VecDeque::new(),
                groups: Vec::new(),
                free_groups: Vec::new(),
                pending_map: HashMap::default(),
                slots: Vec::new(),
                free_slots: Vec::new(),
                next_generation: NEXT_SERVICE_GENERATION.fetch_add(1 << 32, Ordering::Relaxed),
                pending_tickets: 0,
                in_flight: 0,
                wave_in_progress: false,
                lane_cooldown: vec![0; lanes],
                lane_shed: vec![0; lanes],
                counters: Counters::default(),
                reported: Counters::default(),
            }),
            cv: Condvar::new(),
            journal: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            workers: AtomicUsize::new(0),
        });
        let service = Self {
            core,
            worker_handles: Mutex::new(Vec::new()),
        };
        if service.core.config.journal {
            let _ = service.enable_journal();
        }
        service.spawn_workers(workers);
        service
    }

    /// Turns on wave journaling, returning the live journal (idempotent —
    /// repeated calls return the same journal). The journal is based at
    /// the epoch published at the moment of the call: waves committed
    /// earlier are not in it, so enable journaling **before** serving
    /// waves when a follower must be able to catch up from your bootstrap
    /// snapshot.
    pub fn enable_journal(&self) -> Arc<ServiceJournal> {
        // Hold the epoch slot across the install so the base epoch and the
        // slot contents can't be split by a concurrent wave writer (which
        // reads the slot while holding the same lock).
        let guard = self.core.epoch.lock().expect("epoch slot poisoned");
        let base = guard.epoch();
        let mut slot = self.core.journal.lock().expect("journal slot poisoned");
        let journal = Arc::clone(slot.get_or_insert_with(|| Arc::new(ServiceJournal::new(base))));
        drop(slot);
        drop(guard);
        journal
    }

    /// The live wave journal, or `None` if journaling was never enabled.
    #[must_use]
    pub fn journal(&self) -> Option<Arc<ServiceJournal>> {
        self.core
            .journal
            .lock()
            .expect("journal slot poisoned")
            .clone()
    }

    /// Spawns `extra` additional reader worker threads. The service
    /// switches from inline to worker mode the moment the count becomes
    /// non-zero (see [`ServiceConfig::workers`]).
    pub fn spawn_workers(&self, extra: usize) {
        if extra == 0 {
            return;
        }
        let mut handles = self.worker_handles.lock().expect("service worker registry");
        for _ in 0..extra {
            let core = Arc::clone(&self.core);
            let handle = thread::Builder::new()
                .name("ftspan-service".into())
                .spawn(move || worker_loop(&core))
                .expect("spawn service worker thread");
            handles.push(handle);
        }
        self.core.workers.fetch_add(extra, Ordering::SeqCst);
    }

    /// The number of reader worker threads serving rounds (`0` = inline).
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.core.workers.load(Ordering::SeqCst)
    }

    /// A handle to the currently published epoch of the backend.
    ///
    /// The handle pins that epoch: a wave barrier cannot publish until
    /// every outstanding handle is dropped (dropping yours wakes a parked
    /// wave writer). Read what you need and drop it — in particular, do
    /// **not** hold one across [`OracleService::submit_wave`] +
    /// [`OracleService::drain`] or the wave will wait on you. Structural
    /// mutation is deliberately impossible through the handle: waves must
    /// go through the front door so the queue's barrier ordering stays
    /// truthful.
    #[must_use]
    pub fn oracle(&self) -> EpochHandle<O> {
        EpochHandle::acquire(&self.core)
    }

    /// Dissolves the front-end and returns the backend.
    ///
    /// # Panics
    ///
    /// Panics if epoch handles from [`OracleService::oracle`] are still
    /// outstanding.
    #[must_use]
    pub fn into_oracle(self) -> O {
        let core = Arc::clone(&self.core);
        drop(self); // joins the worker threads
        let Ok(core) = Arc::try_unwrap(core) else {
            panic!("cannot dissolve an OracleService while other handles to its core are alive")
        };
        let arc = core.epoch.into_inner().expect("epoch slot poisoned");
        let Ok(oracle) = Arc::try_unwrap(arc) else {
            panic!(
                "cannot dissolve an OracleService while epoch handles \
                 (OracleService::oracle) are outstanding"
            )
        };
        oracle
    }

    /// The configuration in force.
    #[inline]
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.core.config
    }

    /// Number of queued (not yet admitted) tickets.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.lock_state().pending_tickets
    }

    /// Remaining cooldown rounds per admission lane.
    #[must_use]
    pub fn lane_cooldowns(&self) -> Vec<u32> {
        self.lock_state().lane_cooldown.clone()
    }

    /// Tickets shed per admission lane (per shard under a sharded backend).
    #[must_use]
    pub fn shed_by_lane(&self) -> Vec<u64> {
        self.lock_state().lane_shed.clone()
    }

    /// Submits one query; never blocks on the backend. If
    /// [`ServiceConfig::max_pending`] tickets are already queued, the
    /// ticket comes back already [`TicketState::Shed`]. With coalescing
    /// on, an exact duplicate of a pending request attaches to the
    /// existing group instead of enqueueing a new command.
    pub fn submit(&self, query: Query) -> TicketId {
        let mut st = self.lock_state();
        let ticket = self.submit_locked(&mut st, query);
        drop(st);
        self.core.cv.notify_one();
        ticket
    }

    /// Submits a batch of queries under a single state-lock acquisition.
    /// Semantically identical to calling [`OracleService::submit`] once per
    /// query, but the whole batch lands contiguously in the queue (no
    /// round can start between two of its entries) and the submit path
    /// pays one lock round-trip instead of one per query.
    pub fn submit_batch(&self, queries: impl IntoIterator<Item = Query>) -> Vec<TicketId> {
        let mut st = self.lock_state();
        let tickets = queries
            .into_iter()
            .map(|query| self.submit_locked(&mut st, query))
            .collect();
        drop(st);
        self.core.cv.notify_all();
        tickets
    }

    /// [`OracleService::submit_batch`] over borrowed queries: a request
    /// that coalesces into a pending group (or sheds at the door) never
    /// clones its query — only the first submission of each distinct
    /// question pays the clone. On duplicate-heavy streams that removes
    /// most fault-set allocations from the submit path.
    pub fn submit_batch_ref<'a>(
        &self,
        queries: impl IntoIterator<Item = &'a Query>,
    ) -> Vec<TicketId> {
        let mut st = self.lock_state();
        let tickets = queries
            .into_iter()
            .map(|query| match self.admit_locked(&mut st, query) {
                Ok(ticket) => ticket,
                Err(key) => self.enqueue_group_locked(&mut st, query.clone(), key),
            })
            .collect();
        drop(st);
        self.core.cv.notify_all();
        tickets
    }

    fn submit_locked(&self, st: &mut CoreState, query: Query) -> TicketId {
        match self.admit_locked(st, &query) {
            Ok(ticket) => ticket,
            Err(key) => self.enqueue_group_locked(st, query, key),
        }
    }

    /// The shed / coalesce fast path shared by the owned and borrowed
    /// submit flavors: resolves the request to a ticket without taking
    /// ownership of the query, or returns the coalesce key for the caller
    /// to enqueue a new group under.
    fn admit_locked(&self, st: &mut CoreState, query: &Query) -> Result<TicketId, CoalesceKey> {
        let core = &self.core;
        st.counters.submitted += 1;
        let at_capacity =
            core.config.max_pending > 0 && st.pending_tickets >= core.config.max_pending;
        if at_capacity && !core.config.coalesce {
            return Ok(self.shed_locked(st, query));
        }
        let fingerprint = crate::cache::KeyRef::new(0, &query.faults).fingerprint();
        let key = coalesce_key(query, fingerprint);
        if core.config.coalesce {
            if let Some(&id) = st.pending_map.get(&key) {
                // The mixed key can (astronomically rarely) collide, so the
                // hit is confirmed against the pending query exactly.
                let exact = st.groups[id].query.as_ref().is_some_and(|pending| {
                    pending.u == query.u
                        && pending.v == query.v
                        && pending.kind == query.kind
                        && pending.faults == query.faults
                });
                if exact {
                    // Coalescing wins over the overload shed: a duplicate
                    // of a pending group costs no queue slot and no extra
                    // backend work, so a flash crowd of the same hot pair
                    // is absorbed even when the queue is full.
                    let ticket = st.alloc_slot(TicketState::Pending);
                    st.groups[id].tickets.push(ticket);
                    st.pending_tickets += 1;
                    return Ok(ticket);
                }
            }
        }
        if at_capacity {
            return Ok(self.shed_locked(st, query));
        }
        Err(key)
    }

    /// Sheds one arrival at the door, charging the shed to the query's
    /// admission lane.
    fn shed_locked(&self, st: &mut CoreState, query: &Query) -> TicketId {
        let lanes = st.lane_cooldown.len();
        let lane = self.arrival_lane(query, lanes);
        let ticket = st.alloc_slot(TicketState::Shed);
        st.counters.shed += 1;
        st.lane_shed[lane] += 1;
        ticket
    }

    fn enqueue_group_locked(&self, st: &mut CoreState, query: Query, key: CoalesceKey) -> TicketId {
        let ticket = st.alloc_slot(TicketState::Pending);
        let id = st.alloc_group(query, key);
        st.groups[id].tickets.push(ticket);
        if self.core.config.coalesce {
            st.pending_map.insert(key, id);
        }
        st.pending_tickets += 1;
        st.queue.push_back(Entry::Group(id));
        ticket
    }

    /// Submits a permanent fault wave through the same front door as
    /// queries. The wave is a FIFO barrier: it is applied only after every
    /// earlier command has been resolved and every in-flight round has
    /// completed, and everything submitted after it is answered against
    /// the repaired spanner. Waves are never shed.
    pub fn submit_wave(&self, wave: FaultSet) -> TicketId {
        let mut st = self.lock_state();
        let ticket = st.alloc_slot(TicketState::Pending);
        st.queue.push_back(Entry::Wave {
            slot: ticket.slot,
            wave,
        });
        // No pre-wave group may absorb a post-wave duplicate.
        st.pending_map.clear();
        st.pending_tickets += 1;
        drop(st);
        self.core.cv.notify_all();
        ticket
    }

    /// The state of a ticket (a snapshot; the slot stays live).
    ///
    /// # Panics
    ///
    /// Panics if the ticket was issued by another service instance or was
    /// invalidated by [`OracleService::recycle`] /
    /// [`OracleService::wait`] (the ticket's generation no longer matches
    /// its slot's).
    #[must_use]
    pub fn state(&self, ticket: TicketId) -> TicketState {
        self.lock_state().slot_of(ticket).state.clone()
    }

    /// The ticket's answer, if it has one ([`TicketState::Answered`]).
    #[must_use]
    pub fn answer(&self, ticket: TicketId) -> Option<Answer> {
        match self.state(ticket) {
            TicketState::Answered(answer) => Some(answer),
            _ => None,
        }
    }

    /// The ticket's wave report, if it was a wave and has been applied.
    #[must_use]
    pub fn wave_report(&self, ticket: TicketId) -> Option<WaveReport> {
        match self.state(ticket) {
            TicketState::Waved(report) => Some(report),
            _ => None,
        }
    }

    /// Blocks until the ticket resolves, returns its final state, and
    /// frees the slot for reuse (the ticket is *consumed*: redeeming it
    /// again panics like a recycled ticket). In worker mode this sleeps
    /// until a worker completes the round; in inline mode the calling
    /// thread helps run rounds, so concurrent connection handlers can
    /// drive a worker-less service cooperatively.
    pub fn wait(&self, ticket: TicketId) -> TicketState {
        let mut st = self.lock_state();
        loop {
            if !matches!(st.slot_of(ticket).state, TicketState::Pending) {
                let state =
                    std::mem::replace(&mut st.slots[ticket.slot].state, TicketState::Pending);
                st.free_slot(ticket.slot);
                return state;
            }
            if self.core.workers.load(Ordering::SeqCst) > 0 {
                st = self.core.cv.wait(st).expect("service state poisoned");
                continue;
            }
            drop(st);
            match self.help_once() {
                RoundResult::Idle | RoundResult::Blocked => {
                    let guard = self.lock_state();
                    if matches!(guard.slot_of(ticket).state, TicketState::Pending)
                        && (guard.in_flight > 0 || guard.wave_in_progress)
                    {
                        // Another helper owns the in-flight round; sleep
                        // until its completion signal.
                        st = self.core.cv.wait(guard).expect("service state poisoned");
                    } else {
                        st = guard;
                    }
                }
                _ => st = self.lock_state(),
            }
        }
    }

    /// One inline round (or wave barrier), without outcome reporting.
    fn help_once(&self) -> RoundResult {
        let oracle = self.oracle();
        let result = run_round(&self.core, &oracle);
        if let RoundResult::Wave { slot, wave, shed } = result {
            drop(oracle);
            apply_wave_barrier(&self.core, slot, wave);
            return RoundResult::Progress(PumpOutcome {
                answered: 0,
                coalesced: 0,
                shed,
                waves: 1,
            });
        }
        result
    }

    /// One round of the request loop, executed inline on the calling
    /// thread: admit queued groups up to the configured bounds (shedding
    /// or parking those on cooling lanes), hand the backend **one** batch
    /// of distinct queries, and complete the tickets — or, when a wave
    /// barrier has reached the head of the queue, apply that wave instead.
    ///
    /// In worker mode (`workers > 0`) the pool makes progress
    /// autonomously; `pump` then does nothing and returns an empty
    /// outcome. Use [`OracleService::wait`] or [`OracleService::drain`].
    pub fn pump(&self) -> PumpOutcome {
        if self.core.workers.load(Ordering::SeqCst) > 0 {
            return PumpOutcome::default();
        }
        let outcome = match self.help_once() {
            RoundResult::Progress(outcome) => outcome,
            _ => PumpOutcome::default(),
        };
        let mut st = self.lock_state();
        st.reported.answered += outcome.answered as u64;
        st.reported.coalesced += outcome.coalesced as u64;
        st.reported.shed += outcome.shed as u64;
        st.reported.waves += outcome.waves as u64;
        outcome
    }

    /// Blocks until every submitted command has resolved and returns what
    /// was completed since the last `pump`/`drain` report. Inline mode
    /// pumps rounds on the calling thread (terminating even under
    /// [`RebuildPolicy::Queue`]: cooldowns decrement every non-wave
    /// round); worker mode sleeps until the pool quiesces.
    pub fn drain(&self) -> PumpOutcome {
        if self.core.workers.load(Ordering::SeqCst) == 0 {
            let mut total = PumpOutcome::default();
            loop {
                let cooling = {
                    let st = self.lock_state();
                    if st.queue.is_empty() && st.in_flight == 0 && !st.wave_in_progress {
                        return total;
                    }
                    st.lane_cooldown.iter().any(|&c| c > 0)
                };
                let round = self.pump();
                debug_assert!(
                    round.made_progress() || cooling,
                    "a round with no cooling lanes must complete at least one ticket"
                );
                total.absorb(round);
            }
        }
        let mut st = self.lock_state();
        while !(st.queue.is_empty() && st.in_flight == 0 && !st.wave_in_progress) {
            st = self.core.cv.wait(st).expect("service state poisoned");
        }
        let delta = PumpOutcome {
            answered: (st.counters.answered - st.reported.answered) as usize,
            coalesced: (st.counters.coalesced - st.reported.coalesced) as usize,
            shed: (st.counters.shed - st.reported.shed) as usize,
            waves: (st.counters.waves - st.reported.waves) as usize,
        };
        st.reported.answered = st.counters.answered;
        st.reported.coalesced = st.counters.coalesced;
        st.reported.shed = st.counters.shed;
        st.reported.waves = st.counters.waves;
        delta
    }

    /// The unified metrics view: the backend's
    /// [`SpannerOracle::service_metrics`] with the front-end counters
    /// (submitted / answered / coalesced / shed / rounds) filled in.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        let oracle = self.oracle();
        let mut metrics = oracle.service_metrics();
        drop(oracle);
        let st = self.lock_state();
        metrics.submitted = st.counters.submitted;
        metrics.answered = st.counters.answered;
        metrics.coalesced = st.counters.coalesced;
        metrics.shed = st.counters.shed;
        metrics.rounds = st.counters.rounds;
        metrics.wave_recovery_micros = st.counters.wave_recovery_micros;
        metrics.last_wave_recovery_micros = st.counters.last_wave_recovery_micros;
        metrics
    }

    /// The unified metrics rendered as Prometheus exposition text — the
    /// body the `ftspan-server` `METRICS` endpoint serves. Stable format;
    /// see [`ServiceMetrics::render_prometheus`].
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.metrics().render_prometheus(&self.shed_by_lane())
    }

    /// Frees completed ticket storage. Only permitted when the service is
    /// quiescent (no queued or in-flight commands); every previously
    /// issued [`TicketId`] becomes invalid. Returns how many slots were
    /// freed (`0` when commands are pending).
    pub fn recycle(&self) -> usize {
        let mut st = self.lock_state();
        if st.pending_tickets > 0 || st.in_flight > 0 || st.wave_in_progress {
            return 0;
        }
        debug_assert!(st.queue.is_empty(), "quiescent service with queued work");
        debug_assert!(
            st.pending_map.is_empty(),
            "quiescent service with pending groups"
        );
        let freed = st.slots.len();
        st.slots.clear();
        st.free_slots.clear();
        freed
    }

    /// Best-effort lane attribution for an arrival shed. Never blocks: if
    /// the epoch slot is busy (a wave is being applied — exactly when
    /// queues overflow), the shed is charged to lane 0.
    fn arrival_lane(&self, query: &Query, lanes: usize) -> usize {
        match self.core.epoch.try_lock() {
            Ok(oracle) => oracle.admission_lane(query.u, query.v).min(lanes - 1),
            Err(_) => 0,
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, CoreState> {
        self.core.state.lock().expect("service state poisoned")
    }
}

impl<O: SpannerOracle> Drop for OracleService<O> {
    fn drop(&mut self) {
        {
            let _guard = self.core.state.lock();
            self.core.shutdown.store(true, Ordering::SeqCst);
            self.core.cv.notify_all();
        }
        if let Ok(mut handles) = self.worker_handles.lock() {
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Whether a round could start right now (worker wait predicate).
fn actionable(st: &CoreState) -> bool {
    if st.wave_in_progress {
        return false;
    }
    match st.queue.front() {
        None => false,
        Some(Entry::Wave { .. }) => st.in_flight == 0,
        Some(Entry::Group(_)) => true,
    }
}

fn worker_loop<O: SpannerOracle>(core: &Core<O>) {
    loop {
        {
            let mut st = core.state.lock().expect("service state poisoned");
            loop {
                if core.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if actionable(&st) {
                    break;
                }
                st = core.cv.wait(st).expect("service state poisoned");
            }
        }
        // Clone the published epoch with no state lock held; blocks only
        // while a wave writer holds the slot (publication is the release).
        let oracle = EpochHandle::acquire(core);
        if let RoundResult::Wave { slot, wave, .. } = run_round(core, &oracle) {
            // The barrier waits until every epoch handle drops — including
            // ours, so drop it before applying.
            drop(oracle);
            apply_wave_barrier(core, slot, wave);
        }
    }
}

/// Admission scan: pops queue entries up to the configured bounds,
/// shedding / parking cooling-lane groups and stopping at wave barriers.
/// Runs under the state lock.
fn scan_round<O: SpannerOracle>(
    config: &ServiceConfig,
    st: &mut CoreState,
    oracle: &O,
) -> ScanResult {
    let mut result = ScanResult {
        admitted: Vec::new(),
        admitted_tickets: 0,
        shed: 0,
        wave: None,
        blocked: false,
    };
    let mut deferred: Vec<Entry> = Vec::new();
    let lanes = st.lane_cooldown.len();
    let mut lane_load = vec![0usize; lanes];

    // With only per-lane caps, a hot lane would otherwise force a full
    // scan (pop + re-queue) of the backlog every round. Bound the entries
    // examined per round; unexamined entries stay queued, in order.
    let scan_budget = if config.lane_in_flight > 0 {
        (lanes * config.lane_in_flight).saturating_mul(4).max(256)
    } else {
        usize::MAX
    };
    let mut scanned = 0usize;

    while let Some(entry) = st.queue.pop_front() {
        scanned += 1;
        if scanned > scan_budget {
            st.queue.push_front(entry);
            break;
        }
        match entry {
            Entry::Wave { slot, wave } => {
                if result.admitted.is_empty() && deferred.is_empty() {
                    if st.in_flight == 0 {
                        // True head of the line with no rounds in flight:
                        // the barrier may fire.
                        result.wave = Some((slot, wave));
                    } else {
                        // Barrier reached but earlier rounds are still
                        // answering; put it back and wait for them.
                        st.queue.push_front(Entry::Wave { slot, wave });
                        result.blocked = true;
                    }
                } else {
                    deferred.push(Entry::Wave { slot, wave });
                }
                break;
            }
            Entry::Group(id) => {
                let (u, v) = {
                    let query = st.groups[id]
                        .query
                        .as_ref()
                        .expect("queued group has query");
                    (query.u, query.v)
                };
                let lane = oracle.admission_lane(u, v).min(lanes - 1);
                if st.lane_cooldown[lane] > 0 {
                    match config.rebuild_policy {
                        RebuildPolicy::Shed => {
                            st.unindex_group(id);
                            let tickets = std::mem::take(&mut st.groups[id].tickets);
                            for ticket in &tickets {
                                st.slots[ticket.slot].state = TicketState::Shed;
                            }
                            let count = tickets.len();
                            st.counters.shed += count as u64;
                            st.lane_shed[lane] += count as u64;
                            st.pending_tickets -= count;
                            result.shed += count;
                            st.free_group(id, tickets);
                        }
                        RebuildPolicy::Queue => deferred.push(Entry::Group(id)),
                    }
                    continue;
                }
                if config.max_in_flight > 0 && result.admitted.len() >= config.max_in_flight {
                    deferred.push(Entry::Group(id));
                    break;
                }
                if config.lane_in_flight > 0 && lane_load[lane] >= config.lane_in_flight {
                    deferred.push(Entry::Group(id));
                    continue;
                }
                lane_load[lane] += 1;
                st.unindex_group(id);
                let query = st.groups[id].query.take().expect("queued group has query");
                result.admitted_tickets += st.groups[id].tickets.len();
                st.pending_tickets -= st.groups[id].tickets.len();
                result.admitted.push((id, query));
            }
        }
    }
    // Deferred commands go back to the front, in their original order,
    // ahead of everything not yet scanned.
    for entry in deferred.into_iter().rev() {
        st.queue.push_front(entry);
    }
    result
}

/// One round against a cloned epoch: scan/admit under the state lock,
/// answer the batch with the lock released, fan answers out to every
/// ticket. Returns [`RoundResult::Wave`] instead of applying barriers —
/// the caller must drop its epoch handle first.
fn run_round<O: SpannerOracle>(core: &Core<O>, oracle: &O) -> RoundResult {
    let mut st = core.state.lock().expect("service state poisoned");
    if st.wave_in_progress {
        return RoundResult::Blocked;
    }
    if st.queue.is_empty() {
        return RoundResult::Idle;
    }
    let scan = scan_round(&core.config, &mut st, oracle);

    if let Some((slot, wave)) = scan.wave {
        st.counters.rounds += 1;
        st.wave_in_progress = true;
        drop(st);
        if scan.shed > 0 {
            core.cv.notify_all();
        }
        return RoundResult::Wave {
            slot,
            wave,
            shed: scan.shed,
        };
    }

    if scan.admitted.is_empty() {
        if scan.blocked && scan.shed == 0 {
            return RoundResult::Blocked;
        }
        // A shed-only or deferred-only round still counts: cooldowns
        // measure rounds, and decrementing here is what guarantees
        // Queue-policy termination.
        st.counters.rounds += 1;
        st.tick_cooldowns();
        drop(st);
        if scan.shed > 0 {
            core.cv.notify_all();
        }
        return RoundResult::Progress(PumpOutcome {
            answered: 0,
            coalesced: 0,
            shed: scan.shed,
            waves: 0,
        });
    }

    st.counters.rounds += 1;
    st.in_flight += scan.admitted_tickets;
    drop(st);

    // Backend phase: no service lock held. Readers in other rounds run
    // concurrently against their own epoch handles.
    let mut group_ids = Vec::with_capacity(scan.admitted.len());
    let mut batch = Vec::with_capacity(scan.admitted.len());
    for (id, query) in scan.admitted {
        group_ids.push(id);
        batch.push(query);
    }
    let answers = oracle.answer_batch(&batch);
    debug_assert_eq!(answers.len(), batch.len());

    // Fan out: every ticket of a group receives the group's answer (the
    // last by move, the rest by clone).
    let mut st = core.state.lock().expect("service state poisoned");
    let mut answered = 0usize;
    let mut coalesced = 0usize;
    for (id, answer) in group_ids.into_iter().zip(answers) {
        let mut tickets = std::mem::take(&mut st.groups[id].tickets);
        answered += tickets.len();
        coalesced += tickets.len() - 1;
        let last = tickets.pop();
        for ticket in &tickets {
            st.slots[ticket.slot].state = TicketState::Answered(answer.clone());
        }
        if let Some(ticket) = last {
            st.slots[ticket.slot].state = TicketState::Answered(answer);
        }
        st.free_group(id, tickets);
    }
    st.counters.answered += answered as u64;
    st.counters.coalesced += coalesced as u64;
    st.in_flight -= scan.admitted_tickets;
    // Cooldowns measure query rounds *after* the wave; only non-wave
    // rounds consume one.
    st.tick_cooldowns();
    drop(st);
    core.cv.notify_all();
    RoundResult::Progress(PumpOutcome {
        answered,
        coalesced,
        shed: scan.shed,
        waves: 0,
    })
}

/// The wave writer: takes the epoch slot exclusively (parking until every
/// outstanding epoch handle drops), applies the wave in place, and
/// publishes the repaired epoch by releasing the slot. The caller must
/// have popped the wave and set `wave_in_progress` (via
/// [`RoundResult::Wave`]) and must hold **no** epoch handle.
fn apply_wave_barrier<O: SpannerOracle>(core: &Core<O>, slot: usize, wave: FaultSet) {
    let started = Instant::now();
    let mut guard = core.epoch.lock().expect("epoch slot poisoned");
    let report = loop {
        // In-flight rounds were drained before the barrier fired, so the
        // only handles left are `oracle()` reads / snapshot captures.
        if let Some(oracle) = Arc::get_mut(&mut guard) {
            break oracle.apply_wave(&wave, &core.config.churn);
        }
        core.barrier.parked.store(true, Ordering::SeqCst);
        // Re-check after raising the flag: a handle dropped in the gap saw
        // `parked == false` and will not notify, so sleeping now would
        // miss it. The short timeout below is the backstop for raw `Arc`
        // clones (e.g. of an `EpochHandle`'s inner) that bypass the
        // handle's drop notification entirely.
        if Arc::strong_count(&guard) > 1 {
            let parked = core.barrier.lock.lock().expect("wave barrier poisoned");
            let _unused = core
                .barrier
                .cv
                .wait_timeout(parked, Duration::from_millis(1))
                .expect("wave barrier poisoned");
        }
    };
    // Journal the committed wave while the slot is still held: releasing
    // the guard *is* publication, so readers can never observe an epoch
    // whose journal entry is missing.
    let journal = core.journal.lock().expect("journal slot poisoned").clone();
    if let Some(journal) = &journal {
        journal.append(JournalEntry {
            epoch: guard.epoch(),
            report_digest: report.digest(),
            wave,
        });
    }
    core.barrier.parked.store(false, Ordering::SeqCst);
    drop(guard); // publication
    if let Some(journal) = &journal {
        journal.notify();
    }

    let mut st = core.state.lock().expect("service state poisoned");
    for &lane in &report.rebuilt_lanes {
        st.lane_cooldown[lane] = core.config.rebuild_cooldown;
    }
    st.slots[slot].state = TicketState::Waved(report);
    st.counters.waves += 1;
    // Recovery time as the operator experiences it: epoch-handle drain,
    // in-place repair, and publication, measured at the barrier itself so
    // inline and worker-pool modes report the same quantity.
    let recovery = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    st.counters.wave_recovery_micros += recovery;
    st.counters.last_wave_recovery_micros = recovery;
    st.pending_tickets -= 1;
    st.wave_in_progress = false;
    drop(st);
    core.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FaultOracle, OracleOptions};
    use crate::shard::{ShardPlan, ShardedOptions, ShardedOracle};
    use ftspan::{FaultModel, SpannerParams};
    use ftspan_graph::{generators, vid, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn backend(seed: u64) -> FaultOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(30, 0.25, &mut rng);
        FaultOracle::build(graph, SpannerParams::vertex(2, 1), OracleOptions::default())
    }

    fn queries(n: usize, vertices: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let u = vid(rng.gen_range(0..vertices));
                let mut v = vid(rng.gen_range(0..vertices));
                while v == u {
                    v = vid(rng.gen_range(0..vertices));
                }
                let faults = FaultSet::vertices([vid(rng.gen_range(0..4usize) + 20)]);
                if i % 3 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect()
    }

    #[test]
    fn submit_drain_answers_match_direct_batch() {
        let direct = backend(1);
        let service = OracleService::new(backend(1), ServiceConfig::default());
        let batch = queries(60, 30, 2);
        let expected = direct.answer_batch(&batch);
        let tickets: Vec<TicketId> = batch.iter().cloned().map(|q| service.submit(q)).collect();
        assert_eq!(service.pending(), 60);
        let outcome = service.drain();
        assert_eq!(outcome.answered, 60);
        assert_eq!(service.pending(), 0);
        for (ticket, want) in tickets.iter().zip(&expected) {
            let got = service.answer(*ticket).expect("drained tickets answered");
            assert_eq!(got.distance(), want.distance());
            assert_eq!(got.path(), want.path());
        }
    }

    #[test]
    fn duplicates_coalesce_to_one_backend_query() {
        let service = OracleService::new(backend(3), ServiceConfig::default());
        let faults = FaultSet::vertices([vid(7)]);
        let query = Query::distance(vid(0), vid(5), faults.clone());
        let tickets: Vec<TicketId> = (0..10).map(|_| service.submit(query.clone())).collect();
        // A distinct query in the same round must not be merged.
        let other = service.submit(Query::distance(vid(1), vid(5), faults));
        let outcome = service.pump();
        assert_eq!(outcome.answered, 11);
        assert_eq!(outcome.coalesced, 9);
        let metrics = service.metrics();
        assert_eq!(metrics.coalesced, 9);
        assert_eq!(metrics.submitted, 11);
        assert_eq!(
            metrics.queries, 2,
            "the backend must see each distinct question once"
        );
        let first = service.answer(tickets[0]).unwrap().distance();
        for t in &tickets {
            assert_eq!(service.answer(*t).unwrap().distance(), first);
        }
        assert!(service.answer(other).is_some());
    }

    #[test]
    fn full_queue_still_coalesces_duplicates() {
        let service = OracleService::new(backend(5), ServiceConfig::default().with_max_pending(2));
        let faults = FaultSet::empty(FaultModel::Vertex);
        let hot = Query::distance(vid(0), vid(5), faults.clone());
        let a = service.submit(hot.clone());
        let b = service.submit(Query::distance(vid(1), vid(6), faults.clone()));
        // The queue is now at capacity: a fresh question sheds at the
        // door, but duplicates of the hot pending pair still coalesce.
        let fresh = service.submit(Query::distance(vid(2), vid(7), faults.clone()));
        let dupes: Vec<TicketId> = (0..5).map(|_| service.submit(hot.clone())).collect();
        assert!(matches!(service.state(fresh), TicketState::Shed));
        let outcome = service.drain();
        assert_eq!(outcome.answered, 7);
        assert_eq!(outcome.coalesced, 5);
        let metrics = service.metrics();
        assert_eq!(metrics.shed, 1);
        assert_eq!(
            metrics.queries, 2,
            "the flash crowd must not cost extra backend work"
        );
        let first = service.answer(a).unwrap().distance();
        for t in &dupes {
            assert_eq!(service.answer(*t).unwrap().distance(), first);
        }
        assert!(service.answer(b).is_some());
    }

    #[test]
    fn coalescing_distinguishes_kind_and_faults() {
        let service = OracleService::new(backend(4), ServiceConfig::default());
        let f1 = FaultSet::vertices([vid(7)]);
        let f2 = FaultSet::vertices([vid(8)]);
        let d = service.submit(Query::distance(vid(0), vid(5), f1.clone()));
        let p = service.submit(Query::path(vid(0), vid(5), f1));
        let other = service.submit(Query::distance(vid(0), vid(5), f2));
        let outcome = service.pump();
        assert_eq!(outcome.coalesced, 0);
        assert!(service.answer(p).unwrap().path().is_some());
        assert!(service.answer(d).unwrap().path().is_none());
        assert!(service.answer(other).is_some());
    }

    #[test]
    fn coalescing_never_crosses_a_wave_barrier() {
        let service = OracleService::new(backend(6), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        let before = service.submit(Query::distance(vid(0), vid(9), faults.clone()));
        service.submit_wave(FaultSet::vertices([vid(4)]));
        let after = service.submit(Query::distance(vid(0), vid(9), faults));
        let outcome = service.drain();
        assert_eq!(outcome.answered, 2);
        assert_eq!(
            outcome.coalesced, 0,
            "a duplicate must never attach to a group across a barrier"
        );
        assert_eq!(
            service.metrics().queries,
            2,
            "each side of the barrier reaches the backend separately"
        );
        assert!(service.answer(before).is_some());
        assert!(service.answer(after).is_some());
    }

    #[test]
    fn admission_caps_split_a_burst_into_rounds() {
        let config = ServiceConfig::default()
            .with_max_in_flight(16)
            .with_coalesce(false);
        let direct = backend(5);
        let service = OracleService::new(backend(5), config);
        let batch = queries(50, 30, 6);
        let expected = direct.answer_batch(&batch);
        let tickets: Vec<TicketId> = batch.iter().cloned().map(|q| service.submit(q)).collect();
        let first = service.pump();
        assert_eq!(first.answered, 16, "one round admits at most the cap");
        assert_eq!(service.pending(), 34);
        service.drain();
        assert!(service.metrics().rounds >= 4);
        for (ticket, want) in tickets.iter().zip(&expected) {
            assert_eq!(service.answer(*ticket).unwrap().distance(), want.distance());
        }
    }

    #[test]
    fn wave_is_a_fifo_barrier() {
        let mut direct = backend(7);
        let service = OracleService::new(backend(7), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        let before = service.submit(Query::distance(vid(0), vid(9), faults.clone()));
        let wave = FaultSet::vertices([vid(4), vid(11)]);
        let wave_ticket = service.submit_wave(wave.clone());
        let after = service.submit(Query::distance(vid(0), vid(9), faults.clone()));

        let pre = direct.distance(vid(0), vid(9), &faults);
        let outcome = direct.apply_wave(&wave, &ChurnConfig::default());
        let post = direct.distance(vid(0), vid(9), &faults);

        service.drain();
        assert_eq!(
            service.answer(before).unwrap().distance(),
            pre,
            "pre-wave submissions answer against the pre-wave epoch"
        );
        assert_eq!(service.answer(after).unwrap().distance(), post);
        let report = service.wave_report(wave_ticket).expect("wave applied");
        assert_eq!(report.outcome.edges_added, outcome.edges_added);
        assert_eq!(service.oracle().epoch(), 1);
        assert_eq!(service.metrics().waves, 1);
    }

    /// Two explicit shards over a path graph so lane membership is obvious.
    fn two_lane_sharded() -> ShardedOracle {
        let mut graph = Graph::new(12);
        for i in 0..11 {
            graph.add_unit_edge(i, i + 1);
        }
        let plan = ShardPlan::from_shard_of((0..12).map(|i| u32::from(i >= 6)).collect());
        ShardedOracle::build_with_plan(
            graph,
            SpannerParams::vertex(2, 1),
            plan,
            ShardedOptions::default(),
        )
    }

    #[test]
    fn cooling_lane_sheds_while_other_lanes_serve() {
        let config = ServiceConfig::default()
            .with_rebuild_cooldown(1)
            .with_rebuild_policy(RebuildPolicy::Shed);
        let service = OracleService::new(two_lane_sharded(), config);
        // A wave deep in lane 0's half; lane 1's region (vertices ≥ 6 plus
        // halo) is far enough to stay untouched.
        let wave_ticket = service.submit_wave(FaultSet::vertices([vid(0)]));
        assert_eq!(service.pump().waves, 1);
        let report = service.wave_report(wave_ticket).unwrap();
        assert!(report.rebuilt_lanes.contains(&0));
        assert!(!report.rebuilt_lanes.contains(&1));
        assert_eq!(service.lane_cooldowns()[0], 1);
        assert_eq!(service.lane_cooldowns()[1], 0);

        let faults = FaultSet::empty(FaultModel::Vertex);
        let cooling = service.submit(Query::distance(vid(2), vid(4), faults.clone()));
        let warm = service.submit(Query::distance(vid(8), vid(10), faults.clone()));
        let outcome = service.pump();
        assert_eq!(outcome.shed, 1);
        assert_eq!(outcome.answered, 1);
        assert!(matches!(service.state(cooling), TicketState::Shed));
        assert!(service.answer(warm).is_some());
        assert_eq!(service.shed_by_lane(), [1, 0]);

        // The cooldown expired with that round; a resubmission is served.
        let retry = service.submit(Query::distance(vid(2), vid(4), faults));
        service.drain();
        assert!(service.answer(retry).is_some());
        assert_eq!(service.metrics().shed, 1);
    }

    #[test]
    fn queue_policy_parks_and_then_serves_cooling_traffic() {
        let config = ServiceConfig::default()
            .with_rebuild_cooldown(2)
            .with_rebuild_policy(RebuildPolicy::Queue);
        let service = OracleService::new(two_lane_sharded(), config);
        service.submit_wave(FaultSet::vertices([vid(0)]));
        service.pump();
        let faults = FaultSet::empty(FaultModel::Vertex);
        let parked = service.submit(Query::distance(vid(2), vid(4), faults));
        let outcome = service.pump();
        assert_eq!(outcome.answered, 0, "cooling lane parks the request");
        assert_eq!(service.pending(), 1);
        assert!(matches!(service.state(parked), TicketState::Pending));
        let total = service.drain();
        assert_eq!(total.answered, 1);
        assert_eq!(total.shed, 0, "queue policy never sheds");
        assert!(service.answer(parked).is_some());
    }

    #[test]
    fn max_pending_sheds_on_arrival() {
        let config = ServiceConfig::default().with_max_pending(2);
        let service = OracleService::new(backend(9), config);
        let faults = FaultSet::empty(FaultModel::Vertex);
        let a = service.submit(Query::distance(vid(0), vid(1), faults.clone()));
        let b = service.submit(Query::distance(vid(0), vid(2), faults.clone()));
        let c = service.submit(Query::distance(vid(0), vid(3), faults.clone()));
        assert!(matches!(service.state(c), TicketState::Shed));
        // Waves bypass the cap entirely.
        let w = service.submit_wave(FaultSet::vertices([vid(5)]));
        service.drain();
        assert!(service.answer(a).is_some());
        assert!(service.answer(b).is_some());
        assert!(service.wave_report(w).is_some());
        assert_eq!(service.metrics().shed, 1);
    }

    #[test]
    fn recycle_frees_slots_only_between_bursts() {
        let service = OracleService::new(backend(10), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        service.submit(Query::distance(vid(0), vid(1), faults.clone()));
        assert_eq!(service.recycle(), 0, "pending commands pin the slots");
        service.drain();
        assert_eq!(service.recycle(), 1);
        let t = service.submit(Query::distance(vid(0), vid(2), faults));
        assert_eq!(t.index(), 0, "slots restart after a recycle");
        service.drain();
        assert!(service.answer(t).is_some());
    }

    #[test]
    #[should_panic(expected = "invalidated by")]
    fn stale_tickets_panic_after_recycle() {
        let service = OracleService::new(backend(12), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        let stale = service.submit(Query::distance(vid(0), vid(1), faults.clone()));
        service.drain();
        service.recycle();
        let fresh = service.submit(Query::distance(vid(0), vid(2), faults));
        assert_eq!(fresh.index(), stale.index(), "slot is reused");
        service.drain();
        let _ = service.answer(stale); // must panic, not alias `fresh`
    }

    #[test]
    #[should_panic(expected = "issued by another service instance")]
    fn foreign_tickets_are_rejected() {
        let a = OracleService::new(backend(13), ServiceConfig::default());
        let b = OracleService::new(backend(13), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        let from_a = a.submit(Query::distance(vid(0), vid(1), faults.clone()));
        let _ = b.submit(Query::distance(vid(0), vid(2), faults));
        a.drain();
        b.drain();
        let _ = b.answer(from_a); // must panic, not read b's slot 0
    }

    #[test]
    fn lane_caps_bound_the_scan_but_drain_completes() {
        // One hot lane far beyond its per-round cap: pump must not admit
        // past the cap, and drain must still answer everything the backend
        // would have.
        let config = ServiceConfig::default()
            .with_lane_in_flight(4)
            .with_coalesce(false);
        let direct = backend(14);
        let service = OracleService::new(backend(14), config);
        let batch = queries(300, 30, 15);
        let expected = direct.answer_batch(&batch);
        let tickets: Vec<TicketId> = batch.iter().cloned().map(|q| service.submit(q)).collect();
        let first = service.pump();
        assert!(first.answered <= 4, "single lane admits at most its cap");
        let total = service.drain();
        assert_eq!(total.answered + first.answered, 300);
        for (ticket, want) in tickets.iter().zip(&expected) {
            assert_eq!(service.answer(*ticket).unwrap().distance(), want.distance());
        }
    }

    #[test]
    fn pump_on_an_empty_queue_is_a_no_op() {
        let service = OracleService::new(backend(11), ServiceConfig::default());
        let outcome = service.pump();
        assert_eq!(outcome, PumpOutcome::default());
        assert_eq!(service.metrics().rounds, 0);
        assert_eq!(service.drain(), PumpOutcome::default());
    }

    // ------------------------------------------------------------------
    // Concurrent (worker-mode) coverage.
    // ------------------------------------------------------------------

    #[test]
    fn worker_pool_matches_direct_answers_across_a_wave() {
        for workers in [1usize, 2, 8] {
            let mut direct = backend(21);
            let service =
                OracleService::new(backend(21), ServiceConfig::default().with_workers(workers));
            assert_eq!(service.worker_count(), workers);
            let pre_batch = queries(80, 30, 22);
            let post_batch = queries(80, 30, 23);
            let wave = FaultSet::vertices([vid(5), vid(17)]);

            let pre: Vec<TicketId> = pre_batch
                .iter()
                .cloned()
                .map(|q| service.submit(q))
                .collect();
            let wave_ticket = service.submit_wave(wave.clone());
            let post: Vec<TicketId> = post_batch
                .iter()
                .cloned()
                .map(|q| service.submit(q))
                .collect();
            let outcome = service.drain();
            assert_eq!(outcome.answered, 160, "workers {workers}");
            assert_eq!(outcome.waves, 1);

            let want_pre = direct.answer_batch(&pre_batch);
            let report = direct.apply_wave(&wave, &ChurnConfig::default());
            let want_post = direct.answer_batch(&post_batch);
            assert_eq!(
                service
                    .wave_report(wave_ticket)
                    .unwrap()
                    .outcome
                    .edges_added,
                report.edges_added
            );
            // Distances are bit-identical; paths need not be vertex-identical
            // (shortest paths are not unique) but must agree in presence and
            // endpoints — the same contract the differential suite pins.
            for (ticket, want) in pre.iter().zip(&want_pre).chain(post.iter().zip(&want_post)) {
                let got = service.answer(*ticket).expect("ticket answered");
                assert_eq!(got.distance(), want.distance(), "workers {workers}");
                assert_eq!(got.path().is_some(), want.path().is_some());
                if let (Some(g), Some(w)) = (got.path(), want.path()) {
                    assert_eq!(g.first(), w.first());
                    assert_eq!(g.last(), w.last());
                }
            }
            assert_eq!(service.oracle().epoch(), 1);
        }
    }

    #[test]
    fn wait_consumes_the_ticket_and_frees_its_slot() {
        let service = OracleService::new(backend(24), ServiceConfig::default().with_workers(2));
        let faults = FaultSet::empty(FaultModel::Vertex);
        let first = service.submit(Query::distance(vid(0), vid(1), faults.clone()));
        let state = service.wait(first);
        assert!(matches!(state, TicketState::Answered(_)));
        let second = service.submit(Query::distance(vid(0), vid(2), faults));
        assert_eq!(
            second.index(),
            first.index(),
            "wait must return the slot to the free list"
        );
        assert!(matches!(service.wait(second), TicketState::Answered(_)));
    }

    #[test]
    #[should_panic(expected = "invalidated by")]
    fn waited_tickets_cannot_be_redeemed_twice() {
        let service = OracleService::new(backend(25), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        let ticket = service.submit(Query::distance(vid(0), vid(1), faults));
        let _ = service.wait(ticket);
        let _ = service.state(ticket);
    }

    #[test]
    fn drain_reports_the_delta_since_the_last_report() {
        let service = OracleService::new(backend(26), ServiceConfig::default().with_workers(2));
        let batch = queries(20, 30, 27);
        for q in batch {
            service.submit(q);
        }
        assert_eq!(service.drain().answered, 20);
        assert_eq!(service.drain(), PumpOutcome::default());
        assert_eq!(service.metrics().answered, 20);
    }

    #[test]
    fn pump_is_a_noop_in_worker_mode() {
        let service = OracleService::new(backend(28), ServiceConfig::default().with_workers(1));
        let faults = FaultSet::empty(FaultModel::Vertex);
        let ticket = service.submit(Query::distance(vid(0), vid(1), faults));
        assert_eq!(service.pump(), PumpOutcome::default());
        assert!(matches!(service.wait(ticket), TicketState::Answered(_)));
    }

    #[test]
    fn into_oracle_stops_the_workers_and_returns_the_backend() {
        let service = OracleService::new(backend(29), ServiceConfig::default().with_workers(4));
        let faults = FaultSet::empty(FaultModel::Vertex);
        service.submit(Query::distance(vid(0), vid(1), faults));
        service.submit_wave(FaultSet::vertices([vid(9)]));
        service.drain();
        let oracle = service.into_oracle();
        assert_eq!(oracle.epoch(), 1);
    }

    #[test]
    fn concurrent_submitters_share_one_service() {
        let service = Arc::new(OracleService::new(
            backend(30),
            ServiceConfig::default().with_workers(2),
        ));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let service = Arc::clone(&service);
            handles.push(thread::spawn(move || {
                let batch = queries(30, 30, 40 + t);
                let tickets: Vec<TicketId> =
                    batch.iter().cloned().map(|q| service.submit(q)).collect();
                for (ticket, query) in tickets.into_iter().zip(batch) {
                    match service.wait(ticket) {
                        TicketState::Answered(answer) => {
                            let direct = service.oracle().answer(&query);
                            assert_eq!(answer.distance(), direct.distance());
                        }
                        other => panic!("unexpected ticket state {other:?}"),
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().expect("submitter thread");
        }
        assert_eq!(service.metrics().answered, 120);
    }

    #[test]
    fn wave_barrier_parks_until_the_last_epoch_handle_drops() {
        let service = OracleService::new(backend(31), ServiceConfig::default().with_workers(2));
        let pinned = service.oracle();
        assert_eq!(pinned.epoch(), 0);
        let wave_ticket = service.submit_wave(FaultSet::vertices([vid(3)]));
        // The writer cannot take the slot exclusively while `pinned` is
        // alive: after ample time the wave must still be pending, and the
        // handle must still read the pre-wave epoch.
        thread::sleep(Duration::from_millis(50));
        assert!(
            matches!(service.state(wave_ticket), TicketState::Pending),
            "a held epoch handle must hold the wave barrier"
        );
        let behind = service.submit(Query::distance(
            vid(0),
            vid(5),
            FaultSet::empty(FaultModel::Vertex),
        ));
        assert_eq!(pinned.epoch(), 0, "the handle pins the pre-wave epoch");
        // A clone pins the same epoch after the original drops…
        let clone = pinned.clone();
        drop(pinned);
        thread::sleep(Duration::from_millis(10));
        assert!(matches!(service.state(wave_ticket), TicketState::Pending));
        // …and dropping the last handle wakes the parked writer; the wave
        // publishes and everything queued behind the barrier completes.
        drop(clone);
        assert!(matches!(service.wait(wave_ticket), TicketState::Waved(_)));
        assert!(matches!(service.wait(behind), TicketState::Answered(_)));
        assert_eq!(service.oracle().epoch(), 1);
    }
}
