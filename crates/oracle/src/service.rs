//! The [`OracleService`] front-end: one lifecycle API — submit, pump/drain,
//! wave, snapshot — over any [`SpannerOracle`] backend.
//!
//! The backends answer batches; a *service* has to decide what reaches
//! them. This module adds the three serving behaviours both backends would
//! otherwise have to duplicate:
//!
//! * **A non-blocking request loop.** [`OracleService::submit`] never
//!   blocks and never touches the backend: it enqueues a command and
//!   returns a [`TicketId`]. [`OracleService::pump`] makes one bounded
//!   round of progress — admit, coalesce, one [`answer_batch`] call,
//!   complete tickets — and returns; [`OracleService::drain`] pumps until
//!   the queue is empty. Fault waves go through the same front door
//!   ([`OracleService::submit_wave`], [`ServiceCommand::Wave`]) and act as
//!   FIFO **barriers**: every request submitted before a wave is resolved
//!   against the pre-wave epoch, every request after it against the
//!   repaired spanner.
//! * **Bounded admission.** [`ServiceConfig::max_in_flight`] caps how many
//!   queries one round hands the backend, and
//!   [`ServiceConfig::lane_in_flight`] caps them **per admission lane** —
//!   the whole oracle for [`FaultOracle`], one lane per shard for
//!   [`ShardedOracle`] (see [`SpannerOracle::admission_lane`]). After a
//!   wave, the lanes the wave rebuilt *cool down* for
//!   [`ServiceConfig::rebuild_cooldown`] rounds: requests charged to a
//!   cooling lane are shed ([`RebuildPolicy::Shed`]) or parked in the
//!   queue ([`RebuildPolicy::Queue`]) until the region's caches have had
//!   rounds to re-warm, while untouched lanes keep serving.
//! * **Request coalescing.** Bursty traffic repeats itself: the same
//!   `(u, v, kind, F)` arrives many times while a fault set is hot. With
//!   [`ServiceConfig::coalesce`] on, duplicates within a round collapse to
//!   one backend query whose answer fans back out to every ticket —
//!   exactness is untouched (the backend is deterministic at a fixed
//!   epoch), the backend just sees each distinct question once.
//!
//! The `service_vs_direct` differential suite pins the contract: every
//! answered ticket carries the distance and path a direct
//! [`answer_batch`] call on the same backend would have returned —
//! bit-identical on unit-weight inputs — across interleaved waves, with
//! coalescing and admission enabled. Only the diagnostic
//! [`Answer::cache_hit`](crate::Answer::cache_hit) flag may differ: a
//! coalesced duplicate receives a clone of its group's first answer
//! instead of the cache hit the duplicate itself would have scored.
//!
//! [`answer_batch`]: SpannerOracle::answer_batch
//! [`FaultOracle`]: crate::FaultOracle
//! [`ShardedOracle`]: crate::ShardedOracle

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use ftspan::FaultSet;
use ftspan_graph::VertexId;

use crate::churn::{ChurnConfig, WaveReport};
use crate::metrics::ServiceMetrics;
use crate::query::{Answer, Query, QueryKind};
use crate::traits::SpannerOracle;

/// What happens to requests charged to an admission lane whose region is
/// cooling down after a wave rebuilt it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RebuildPolicy {
    /// Park the request in the queue; it is admitted once the lane's
    /// cooldown expires. No request is lost (the default).
    #[default]
    Queue,
    /// Complete the ticket as [`TicketState::Shed`] immediately — load
    /// shedding for deployments that prefer fast failure over queueing
    /// behind a rebuild.
    Shed,
}

/// Builder-style configuration of an [`OracleService`].
///
/// `ServiceConfig::default()` is a pass-through front-end: unbounded
/// admission, coalescing on, no rebuild cooldown. Every knob has a
/// consuming `with_*` setter:
///
/// ```
/// use ftspan_oracle::{RebuildPolicy, ServiceConfig};
///
/// let config = ServiceConfig::default()
///     .with_max_in_flight(512)
///     .with_lane_in_flight(64)
///     .with_rebuild_cooldown(2)
///     .with_rebuild_policy(RebuildPolicy::Shed);
/// assert_eq!(config.max_in_flight, 512);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Maximum queries admitted into one backend round across all lanes;
    /// `0` means unbounded. Requests over the cap stay queued for the next
    /// round.
    pub max_in_flight: usize,
    /// Maximum queries admitted per lane per round; `0` means unbounded.
    /// Under [`ShardedOracle`](crate::ShardedOracle) this bounds in-flight
    /// work **per shard**, so one hot shard cannot starve the rest of a
    /// round's budget.
    pub lane_in_flight: usize,
    /// Coalesce exact-duplicate `(u, v, kind, F)` requests within a round
    /// into one backend query (default `true`).
    pub coalesce: bool,
    /// How many pump rounds a lane stays cooling after a wave rebuilds it;
    /// `0` disables cooldowns (the default).
    pub rebuild_cooldown: u32,
    /// Shed or queue requests charged to a cooling lane.
    pub rebuild_policy: RebuildPolicy,
    /// Cap on queued commands; submissions past it are shed on arrival.
    /// `0` means unbounded. Waves are control plane and are never shed.
    pub max_pending: usize,
    /// Churn configuration used when a [`ServiceCommand::Wave`] is applied.
    pub churn: ChurnConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 0,
            lane_in_flight: 0,
            coalesce: true,
            rebuild_cooldown: 0,
            rebuild_policy: RebuildPolicy::default(),
            max_pending: 0,
            churn: ChurnConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Sets the global per-round admission cap (`0` = unbounded).
    #[must_use]
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Sets the per-lane per-round admission cap (`0` = unbounded).
    #[must_use]
    pub fn with_lane_in_flight(mut self, lane_in_flight: usize) -> Self {
        self.lane_in_flight = lane_in_flight;
        self
    }

    /// Enables or disables duplicate-request coalescing.
    #[must_use]
    pub fn with_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Sets how many rounds a rebuilt lane cools down (`0` = off).
    #[must_use]
    pub fn with_rebuild_cooldown(mut self, rounds: u32) -> Self {
        self.rebuild_cooldown = rounds;
        self
    }

    /// Sets the cooling-lane policy.
    #[must_use]
    pub fn with_rebuild_policy(mut self, policy: RebuildPolicy) -> Self {
        self.rebuild_policy = policy;
        self
    }

    /// Sets the pending-queue cap (`0` = unbounded).
    #[must_use]
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Sets the churn configuration applied to submitted waves.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = churn;
        self
    }
}

/// One command in the service's FIFO queue.
#[derive(Clone, Debug)]
pub enum ServiceCommand {
    /// Answer one query.
    Query(Query),
    /// Apply a permanent fault wave. Acts as a barrier: processed only once
    /// every command submitted before it has been resolved.
    Wave(FaultSet),
}

/// Handle to one submitted command; redeem it with
/// [`OracleService::state`], [`OracleService::answer`], or
/// [`OracleService::wave_report`]. Carries the issuing service's recycle
/// generation (seeded per instance from a process-wide counter), so a
/// ticket retained across [`OracleService::recycle`] — or redeemed
/// against a different service instance — can never silently alias
/// another request's slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TicketId {
    slot: usize,
    generation: u64,
}

impl TicketId {
    /// The ticket's slot index (stable until [`OracleService::recycle`]).
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.slot
    }
}

/// Lifecycle of one submitted command.
#[derive(Clone, Debug)]
pub enum TicketState {
    /// Still queued (or deferred by admission control).
    Pending,
    /// Answered by the backend.
    Answered(Answer),
    /// Dropped by admission control (queue overflow, or a cooling lane
    /// under [`RebuildPolicy::Shed`]). The request never reached the
    /// backend; resubmit if the answer is still wanted.
    Shed,
    /// A wave that has been applied, with its report.
    Waved(WaveReport),
}

/// What one [`OracleService::pump`] (or accumulated
/// [`OracleService::drain`]) round did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PumpOutcome {
    /// Tickets completed with an answer.
    pub answered: usize,
    /// Duplicate requests coalesced away before the backend call.
    pub coalesced: usize,
    /// Tickets shed by admission control.
    pub shed: usize,
    /// Waves applied.
    pub waves: usize,
}

impl PumpOutcome {
    /// Accumulates another round's outcome into this one, for callers
    /// interleaving [`OracleService::pump`] and [`OracleService::drain`].
    pub fn absorb(&mut self, other: PumpOutcome) {
        self.answered += other.answered;
        self.coalesced += other.coalesced;
        self.shed += other.shed;
        self.waves += other.waves;
    }

    /// Whether the round completed any ticket at all.
    #[must_use]
    pub fn made_progress(&self) -> bool {
        self.answered + self.shed + self.waves > 0
    }
}

/// Seeds each service's ticket generation: the high 32 bits identify the
/// instance, the low 32 count its recycles, so tickets cannot cross
/// service instances undetected.
static NEXT_SERVICE_GENERATION: AtomicU64 = AtomicU64::new(0);

#[derive(Debug, Default)]
struct FrontendCounters {
    submitted: u64,
    answered: u64,
    coalesced: u64,
    shed: u64,
    rounds: u64,
}

/// The serving front-end over any [`SpannerOracle`] backend.
///
/// See the [module docs](crate::service) for the architecture (request
/// loop, admission, coalescing, wave barriers) and the crate docs for an
/// end-to-end example.
#[derive(Debug)]
pub struct OracleService<O: SpannerOracle> {
    oracle: O,
    config: ServiceConfig,
    queue: VecDeque<(TicketId, ServiceCommand)>,
    tickets: Vec<TicketState>,
    /// Bumped by [`OracleService::recycle`] and seeded per instance from
    /// [`NEXT_SERVICE_GENERATION`]; tickets from an older generation or
    /// another service instance are rejected instead of read from reused
    /// slots.
    generation: u64,
    /// Rounds each admission lane keeps cooling after a wave rebuilt it.
    lane_cooldown: Vec<u32>,
    /// Tickets shed per lane, for per-shard shedding dashboards and tests.
    lane_shed: Vec<u64>,
    counters: FrontendCounters,
}

impl<O: SpannerOracle> OracleService<O> {
    /// Wraps a backend in a service front-end.
    #[must_use]
    pub fn new(oracle: O, config: ServiceConfig) -> Self {
        let lanes = oracle.admission_lanes().max(1);
        Self {
            oracle,
            config,
            queue: VecDeque::new(),
            tickets: Vec::new(),
            generation: NEXT_SERVICE_GENERATION.fetch_add(1 << 32, Ordering::Relaxed),
            lane_cooldown: vec![0; lanes],
            lane_shed: vec![0; lanes],
            counters: FrontendCounters::default(),
        }
    }

    /// The backend being served. Mutable access is deliberately absent:
    /// structural changes must go through [`OracleService::submit_wave`] so
    /// the queue's barrier ordering stays truthful.
    #[inline]
    #[must_use]
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// Dissolves the front-end and returns the backend.
    #[must_use]
    pub fn into_oracle(self) -> O {
        self.oracle
    }

    /// The configuration in force.
    #[inline]
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of queued (not yet resolved) commands.
    #[inline]
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Remaining cooldown rounds per admission lane.
    #[must_use]
    pub fn lane_cooldowns(&self) -> &[u32] {
        &self.lane_cooldown
    }

    /// Tickets shed per admission lane (per shard under a sharded backend).
    #[must_use]
    pub fn shed_by_lane(&self) -> &[u64] {
        &self.lane_shed
    }

    /// Submits one query; never blocks, never touches the backend. If the
    /// pending queue is at [`ServiceConfig::max_pending`], the ticket comes
    /// back already [`TicketState::Shed`].
    pub fn submit(&mut self, query: Query) -> TicketId {
        self.counters.submitted += 1;
        if self.config.max_pending > 0 && self.queue.len() >= self.config.max_pending {
            let lane = self.lane_of(&query);
            let ticket = self.alloc(TicketState::Shed);
            self.counters.shed += 1;
            self.lane_shed[lane] += 1;
            return ticket;
        }
        let ticket = self.alloc(TicketState::Pending);
        self.queue.push_back((ticket, ServiceCommand::Query(query)));
        ticket
    }

    /// Submits a permanent fault wave through the same front door as
    /// queries. The wave is a FIFO barrier: it is applied only after every
    /// earlier command has been resolved, and everything submitted after it
    /// is answered against the repaired spanner. Waves are never shed.
    pub fn submit_wave(&mut self, wave: FaultSet) -> TicketId {
        let ticket = self.alloc(TicketState::Pending);
        self.queue.push_back((ticket, ServiceCommand::Wave(wave)));
        ticket
    }

    /// The state of a ticket.
    ///
    /// # Panics
    ///
    /// Panics if the ticket was issued by another service instance or was
    /// invalidated by [`OracleService::recycle`] (the ticket's generation
    /// no longer matches this service's).
    #[must_use]
    pub fn state(&self, ticket: TicketId) -> &TicketState {
        assert_eq!(
            ticket.generation, self.generation,
            "ticket was issued by another service instance or invalidated by \
             OracleService::recycle"
        );
        &self.tickets[ticket.slot]
    }

    /// The ticket's answer, if it has one ([`TicketState::Answered`]).
    #[must_use]
    pub fn answer(&self, ticket: TicketId) -> Option<&Answer> {
        match self.state(ticket) {
            TicketState::Answered(answer) => Some(answer),
            _ => None,
        }
    }

    /// The ticket's wave report, if it was a wave and has been applied.
    #[must_use]
    pub fn wave_report(&self, ticket: TicketId) -> Option<&WaveReport> {
        match self.state(ticket) {
            TicketState::Waved(report) => Some(report),
            _ => None,
        }
    }

    /// One round of the request loop: admit queued queries up to the
    /// configured bounds (shedding or parking those on cooling lanes),
    /// coalesce duplicates, hand the backend **one** batch, and complete
    /// the tickets — or, when a wave barrier has reached the head of the
    /// queue, apply that wave instead. Non-blocking in the serving sense:
    /// each call does one bounded unit of work and returns.
    pub fn pump(&mut self) -> PumpOutcome {
        let mut outcome = PumpOutcome::default();
        if self.queue.is_empty() {
            return outcome;
        }
        self.counters.rounds += 1;

        let mut admitted: Vec<(TicketId, Query)> = Vec::new();
        let mut deferred: Vec<(TicketId, ServiceCommand)> = Vec::new();
        let mut lane_load = vec![0usize; self.lane_cooldown.len()];
        let mut wave_round = false;

        // With only per-lane caps, a hot lane would otherwise force a full
        // scan (pop + re-queue) of the backlog every round to admit a
        // handful of queries — a drain quadratic in queue depth. Bound the
        // commands examined per round to a small multiple of the round's
        // per-lane admission capacity instead; unexamined entries stay in
        // the queue, untouched and in order, for later rounds.
        let scan_budget = if self.config.lane_in_flight > 0 {
            (self.lane_cooldown.len() * self.config.lane_in_flight)
                .saturating_mul(4)
                .max(256)
        } else {
            usize::MAX
        };
        let mut scanned = 0usize;

        while let Some((ticket, command)) = self.queue.pop_front() {
            scanned += 1;
            if scanned > scan_budget {
                self.queue.push_front((ticket, command));
                break;
            }
            match command {
                ServiceCommand::Wave(wave) => {
                    if admitted.is_empty() && deferred.is_empty() {
                        // True head of the line: every earlier command is
                        // resolved, the barrier may fire.
                        let report = self.oracle.apply_wave(&wave, &self.config.churn);
                        for &lane in &report.rebuilt_lanes {
                            self.lane_cooldown[lane] = self.config.rebuild_cooldown;
                        }
                        self.tickets[ticket.slot] = TicketState::Waved(report);
                        // The backend's own wave counter is authoritative;
                        // `metrics()` reads waves from there.
                        outcome.waves += 1;
                        wave_round = true;
                    } else {
                        deferred.push((ticket, ServiceCommand::Wave(wave)));
                    }
                    break;
                }
                ServiceCommand::Query(query) => {
                    let lane = self.lane_of(&query);
                    if self.lane_cooldown[lane] > 0 {
                        match self.config.rebuild_policy {
                            RebuildPolicy::Shed => {
                                self.tickets[ticket.slot] = TicketState::Shed;
                                self.counters.shed += 1;
                                self.lane_shed[lane] += 1;
                                outcome.shed += 1;
                            }
                            RebuildPolicy::Queue => {
                                deferred.push((ticket, ServiceCommand::Query(query)));
                            }
                        }
                        continue;
                    }
                    if self.config.max_in_flight > 0 && admitted.len() >= self.config.max_in_flight
                    {
                        deferred.push((ticket, ServiceCommand::Query(query)));
                        break;
                    }
                    if self.config.lane_in_flight > 0
                        && lane_load[lane] >= self.config.lane_in_flight
                    {
                        deferred.push((ticket, ServiceCommand::Query(query)));
                        continue;
                    }
                    lane_load[lane] += 1;
                    admitted.push((ticket, query));
                }
            }
        }
        // Deferred commands go back to the front, in their original order,
        // ahead of everything not yet scanned.
        for entry in deferred.into_iter().rev() {
            self.queue.push_front(entry);
        }

        if !admitted.is_empty() {
            let (batch, fanout) = self.coalesce(admitted);
            let answers = self.oracle.answer_batch(&batch);
            outcome.coalesced += fanout.len() - batch.len();
            self.counters.coalesced += (fanout.len() - batch.len()) as u64;
            for (ticket, backend_index) in fanout {
                self.tickets[ticket.slot] = TicketState::Answered(answers[backend_index].clone());
                self.counters.answered += 1;
                outcome.answered += 1;
            }
        }

        // Cooldowns measure query rounds *after* the wave, so the round
        // that applied a wave does not consume one.
        if !wave_round {
            for cooldown in &mut self.lane_cooldown {
                *cooldown = cooldown.saturating_sub(1);
            }
        }
        outcome
    }

    /// Pumps until the queue is empty, returning the accumulated outcome.
    /// Terminates even under [`RebuildPolicy::Queue`]: cooldowns decrement
    /// every non-wave round, so parked requests are eventually admitted.
    pub fn drain(&mut self) -> PumpOutcome {
        let mut total = PumpOutcome::default();
        while !self.queue.is_empty() {
            let cooling = self.lane_cooldown.iter().any(|&c| c > 0);
            let round = self.pump();
            debug_assert!(
                round.made_progress() || cooling,
                "a round with no cooling lanes must complete at least one ticket"
            );
            total.absorb(round);
        }
        total
    }

    /// The unified metrics view: the backend's
    /// [`SpannerOracle::service_metrics`] with the front-end counters
    /// (submitted / answered / coalesced / shed / rounds) filled in.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        let mut metrics = self.oracle.service_metrics();
        metrics.submitted = self.counters.submitted;
        metrics.answered = self.counters.answered;
        metrics.coalesced = self.counters.coalesced;
        metrics.shed = self.counters.shed;
        metrics.rounds = self.counters.rounds;
        metrics
    }

    /// The unified metrics rendered as Prometheus exposition text — the
    /// body the `ftspan-server` `METRICS` endpoint serves. Stable format;
    /// see [`ServiceMetrics::render_prometheus`].
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.metrics().render_prometheus(self.shed_by_lane())
    }

    /// Frees completed ticket storage. Only permitted between bursts (an
    /// empty queue); every previously issued [`TicketId`] becomes invalid.
    /// Returns how many slots were freed (`0` when commands are pending).
    pub fn recycle(&mut self) -> usize {
        if !self.queue.is_empty() {
            return 0;
        }
        let freed = self.tickets.len();
        self.tickets.clear();
        self.generation += 1;
        freed
    }

    fn alloc(&mut self, state: TicketState) -> TicketId {
        let ticket = TicketId {
            slot: self.tickets.len(),
            generation: self.generation,
        };
        self.tickets.push(state);
        ticket
    }

    fn lane_of(&self, query: &Query) -> usize {
        self.oracle
            .admission_lane(query.u, query.v)
            .min(self.lane_cooldown.len() - 1)
    }

    /// Collapses exact duplicates in one admitted round. Returns the
    /// deduplicated backend batch (first occurrences, in admission order)
    /// and the ticket → batch-index fan-out. Keyed by
    /// `(u, v, kind, fault fingerprint)` with an exact fault-set
    /// comparison on the hit path, so a fingerprint collision degrades to
    /// an extra backend query, never to a wrong answer.
    fn coalesce(&self, admitted: Vec<(TicketId, Query)>) -> (Vec<Query>, Vec<(TicketId, usize)>) {
        let mut fanout = Vec::with_capacity(admitted.len());
        if !self.config.coalesce {
            let batch = admitted
                .into_iter()
                .enumerate()
                .map(|(i, (ticket, query))| {
                    fanout.push((ticket, i));
                    query
                })
                .collect();
            return (batch, fanout);
        }
        let mut batch: Vec<Query> = Vec::new();
        let mut seen: HashMap<(VertexId, VertexId, QueryKind, u64), Vec<usize>> = HashMap::new();
        for (ticket, query) in admitted {
            let fingerprint = crate::cache::KeyRef::new(0, &query.faults).fingerprint();
            let key = (query.u, query.v, query.kind, fingerprint);
            let candidates = seen.entry(key).or_default();
            if let Some(&index) = candidates
                .iter()
                .find(|&&index| batch[index].faults == query.faults)
            {
                fanout.push((ticket, index));
                continue;
            }
            candidates.push(batch.len());
            fanout.push((ticket, batch.len()));
            batch.push(query);
        }
        (batch, fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FaultOracle, OracleOptions};
    use crate::shard::{ShardPlan, ShardedOptions, ShardedOracle};
    use ftspan::{FaultModel, SpannerParams};
    use ftspan_graph::{generators, vid, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn backend(seed: u64) -> FaultOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(30, 0.25, &mut rng);
        FaultOracle::build(graph, SpannerParams::vertex(2, 1), OracleOptions::default())
    }

    fn queries(n: usize, vertices: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let u = vid(rng.gen_range(0..vertices));
                let mut v = vid(rng.gen_range(0..vertices));
                while v == u {
                    v = vid(rng.gen_range(0..vertices));
                }
                let faults = FaultSet::vertices([vid(rng.gen_range(0..4usize) + 20)]);
                if i % 3 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect()
    }

    #[test]
    fn submit_drain_answers_match_direct_batch() {
        let direct = backend(1);
        let mut service = OracleService::new(backend(1), ServiceConfig::default());
        let batch = queries(60, 30, 2);
        let expected = direct.answer_batch(&batch);
        let tickets: Vec<TicketId> = batch.iter().cloned().map(|q| service.submit(q)).collect();
        assert_eq!(service.pending(), 60);
        let outcome = service.drain();
        assert_eq!(outcome.answered, 60);
        assert_eq!(service.pending(), 0);
        for (ticket, want) in tickets.iter().zip(&expected) {
            let got = service.answer(*ticket).expect("drained tickets answered");
            assert_eq!(got.distance(), want.distance());
            assert_eq!(got.path(), want.path());
        }
    }

    #[test]
    fn duplicates_coalesce_to_one_backend_query() {
        let mut service = OracleService::new(backend(3), ServiceConfig::default());
        let faults = FaultSet::vertices([vid(7)]);
        let query = Query::distance(vid(0), vid(5), faults.clone());
        let tickets: Vec<TicketId> = (0..10).map(|_| service.submit(query.clone())).collect();
        // A distinct query in the same round must not be merged.
        let other = service.submit(Query::distance(vid(1), vid(5), faults));
        let outcome = service.pump();
        assert_eq!(outcome.answered, 11);
        assert_eq!(outcome.coalesced, 9);
        let metrics = service.metrics();
        assert_eq!(metrics.coalesced, 9);
        assert_eq!(metrics.submitted, 11);
        assert_eq!(
            metrics.queries, 2,
            "the backend must see each distinct question once"
        );
        let first = service.answer(tickets[0]).unwrap().distance();
        for t in &tickets {
            assert_eq!(service.answer(*t).unwrap().distance(), first);
        }
        assert!(service.answer(other).is_some());
    }

    #[test]
    fn coalescing_distinguishes_kind_and_faults() {
        let mut service = OracleService::new(backend(4), ServiceConfig::default());
        let f1 = FaultSet::vertices([vid(7)]);
        let f2 = FaultSet::vertices([vid(8)]);
        let d = service.submit(Query::distance(vid(0), vid(5), f1.clone()));
        let p = service.submit(Query::path(vid(0), vid(5), f1));
        let other = service.submit(Query::distance(vid(0), vid(5), f2));
        let outcome = service.pump();
        assert_eq!(outcome.coalesced, 0);
        assert!(service.answer(p).unwrap().path().is_some());
        assert!(service.answer(d).unwrap().path().is_none());
        assert!(service.answer(other).is_some());
    }

    #[test]
    fn admission_caps_split_a_burst_into_rounds() {
        let config = ServiceConfig::default()
            .with_max_in_flight(16)
            .with_coalesce(false);
        let direct = backend(5);
        let mut service = OracleService::new(backend(5), config);
        let batch = queries(50, 30, 6);
        let expected = direct.answer_batch(&batch);
        let tickets: Vec<TicketId> = batch.iter().cloned().map(|q| service.submit(q)).collect();
        let first = service.pump();
        assert_eq!(first.answered, 16, "one round admits at most the cap");
        assert_eq!(service.pending(), 34);
        service.drain();
        assert!(service.metrics().rounds >= 4);
        for (ticket, want) in tickets.iter().zip(&expected) {
            assert_eq!(service.answer(*ticket).unwrap().distance(), want.distance());
        }
    }

    #[test]
    fn wave_is_a_fifo_barrier() {
        let mut direct = backend(7);
        let mut service = OracleService::new(backend(7), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        let before = service.submit(Query::distance(vid(0), vid(9), faults.clone()));
        let wave = FaultSet::vertices([vid(4), vid(11)]);
        let wave_ticket = service.submit_wave(wave.clone());
        let after = service.submit(Query::distance(vid(0), vid(9), faults.clone()));

        let pre = direct.distance(vid(0), vid(9), &faults);
        let outcome = direct.apply_wave(&wave, &ChurnConfig::default());
        let post = direct.distance(vid(0), vid(9), &faults);

        service.drain();
        assert_eq!(
            service.answer(before).unwrap().distance(),
            pre,
            "pre-wave submissions answer against the pre-wave epoch"
        );
        assert_eq!(service.answer(after).unwrap().distance(), post);
        let report = service.wave_report(wave_ticket).expect("wave applied");
        assert_eq!(report.outcome.edges_added, outcome.edges_added);
        assert_eq!(service.oracle().epoch(), 1);
        assert_eq!(service.metrics().waves, 1);
    }

    /// Two explicit shards over a path graph so lane membership is obvious.
    fn two_lane_sharded() -> ShardedOracle {
        let mut graph = Graph::new(12);
        for i in 0..11 {
            graph.add_unit_edge(i, i + 1);
        }
        let plan = ShardPlan::from_shard_of((0..12).map(|i| u32::from(i >= 6)).collect());
        ShardedOracle::build_with_plan(
            graph,
            SpannerParams::vertex(2, 1),
            plan,
            ShardedOptions::default(),
        )
    }

    #[test]
    fn cooling_lane_sheds_while_other_lanes_serve() {
        let config = ServiceConfig::default()
            .with_rebuild_cooldown(1)
            .with_rebuild_policy(RebuildPolicy::Shed);
        let mut service = OracleService::new(two_lane_sharded(), config);
        // A wave deep in lane 0's half; lane 1's region (vertices ≥ 6 plus
        // halo) is far enough to stay untouched.
        let wave_ticket = service.submit_wave(FaultSet::vertices([vid(0)]));
        assert_eq!(service.pump().waves, 1);
        let report = service.wave_report(wave_ticket).unwrap();
        assert!(report.rebuilt_lanes.contains(&0));
        assert!(!report.rebuilt_lanes.contains(&1));
        assert_eq!(service.lane_cooldowns()[0], 1);
        assert_eq!(service.lane_cooldowns()[1], 0);

        let faults = FaultSet::empty(FaultModel::Vertex);
        let cooling = service.submit(Query::distance(vid(2), vid(4), faults.clone()));
        let warm = service.submit(Query::distance(vid(8), vid(10), faults.clone()));
        let outcome = service.pump();
        assert_eq!(outcome.shed, 1);
        assert_eq!(outcome.answered, 1);
        assert!(matches!(service.state(cooling), TicketState::Shed));
        assert!(service.answer(warm).is_some());
        assert_eq!(service.shed_by_lane(), &[1, 0]);

        // The cooldown expired with that round; a resubmission is served.
        let retry = service.submit(Query::distance(vid(2), vid(4), faults));
        service.drain();
        assert!(service.answer(retry).is_some());
        assert_eq!(service.metrics().shed, 1);
    }

    #[test]
    fn queue_policy_parks_and_then_serves_cooling_traffic() {
        let config = ServiceConfig::default()
            .with_rebuild_cooldown(2)
            .with_rebuild_policy(RebuildPolicy::Queue);
        let mut service = OracleService::new(two_lane_sharded(), config);
        service.submit_wave(FaultSet::vertices([vid(0)]));
        service.pump();
        let faults = FaultSet::empty(FaultModel::Vertex);
        let parked = service.submit(Query::distance(vid(2), vid(4), faults));
        let outcome = service.pump();
        assert_eq!(outcome.answered, 0, "cooling lane parks the request");
        assert_eq!(service.pending(), 1);
        assert!(matches!(service.state(parked), TicketState::Pending));
        let total = service.drain();
        assert_eq!(total.answered, 1);
        assert_eq!(total.shed, 0, "queue policy never sheds");
        assert!(service.answer(parked).is_some());
    }

    #[test]
    fn max_pending_sheds_on_arrival() {
        let config = ServiceConfig::default().with_max_pending(2);
        let mut service = OracleService::new(backend(9), config);
        let faults = FaultSet::empty(FaultModel::Vertex);
        let a = service.submit(Query::distance(vid(0), vid(1), faults.clone()));
        let b = service.submit(Query::distance(vid(0), vid(2), faults.clone()));
        let c = service.submit(Query::distance(vid(0), vid(3), faults.clone()));
        assert!(matches!(service.state(c), TicketState::Shed));
        // Waves bypass the cap entirely.
        let w = service.submit_wave(FaultSet::vertices([vid(5)]));
        service.drain();
        assert!(service.answer(a).is_some());
        assert!(service.answer(b).is_some());
        assert!(service.wave_report(w).is_some());
        assert_eq!(service.metrics().shed, 1);
    }

    #[test]
    fn recycle_frees_slots_only_between_bursts() {
        let mut service = OracleService::new(backend(10), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        service.submit(Query::distance(vid(0), vid(1), faults.clone()));
        assert_eq!(service.recycle(), 0, "pending commands pin the slots");
        service.drain();
        assert_eq!(service.recycle(), 1);
        let t = service.submit(Query::distance(vid(0), vid(2), faults));
        assert_eq!(t.index(), 0, "slots restart after a recycle");
        service.drain();
        assert!(service.answer(t).is_some());
    }

    #[test]
    #[should_panic(expected = "invalidated by")]
    fn stale_tickets_panic_after_recycle() {
        let mut service = OracleService::new(backend(12), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        let stale = service.submit(Query::distance(vid(0), vid(1), faults.clone()));
        service.drain();
        service.recycle();
        let fresh = service.submit(Query::distance(vid(0), vid(2), faults));
        assert_eq!(fresh.index(), stale.index(), "slot is reused");
        service.drain();
        let _ = service.answer(stale); // must panic, not alias `fresh`
    }

    #[test]
    #[should_panic(expected = "issued by another service instance")]
    fn foreign_tickets_are_rejected() {
        let mut a = OracleService::new(backend(13), ServiceConfig::default());
        let mut b = OracleService::new(backend(13), ServiceConfig::default());
        let faults = FaultSet::empty(FaultModel::Vertex);
        let from_a = a.submit(Query::distance(vid(0), vid(1), faults.clone()));
        let _ = b.submit(Query::distance(vid(0), vid(2), faults));
        a.drain();
        b.drain();
        let _ = b.answer(from_a); // must panic, not read b's slot 0
    }

    #[test]
    fn lane_caps_bound_the_scan_but_drain_completes() {
        // One hot lane far beyond its per-round cap: pump must not admit
        // past the cap, and drain must still answer everything the backend
        // would have.
        let config = ServiceConfig::default()
            .with_lane_in_flight(4)
            .with_coalesce(false);
        let direct = backend(14);
        let mut service = OracleService::new(backend(14), config);
        let batch = queries(300, 30, 15);
        let expected = direct.answer_batch(&batch);
        let tickets: Vec<TicketId> = batch.iter().cloned().map(|q| service.submit(q)).collect();
        let first = service.pump();
        assert!(first.answered <= 4, "single lane admits at most its cap");
        let total = service.drain();
        assert_eq!(total.answered + first.answered, 300);
        for (ticket, want) in tickets.iter().zip(&expected) {
            assert_eq!(service.answer(*ticket).unwrap().distance(), want.distance());
        }
    }

    #[test]
    fn pump_on_an_empty_queue_is_a_no_op() {
        let mut service = OracleService::new(backend(11), ServiceConfig::default());
        let outcome = service.pump();
        assert_eq!(outcome, PumpOutcome::default());
        assert_eq!(service.metrics().rounds, 0);
        assert_eq!(service.drain(), PumpOutcome::default());
    }
}
