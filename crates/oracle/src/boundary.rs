//! The cross-shard boundary index: cut edges and portal vertices.
//!
//! A [`ShardPlan`](crate::ShardPlan) partitions the vertex set, but the
//! spanner's edges do not respect the partition: some of them *cross* it.
//! The [`BoundaryIndex`] records exactly those crossings — each **cut edge**
//! (a spanner edge whose endpoints live in different shards) and each
//! **portal** (a vertex incident to a cut edge). Cross-shard queries are
//! stitched through portals: a path from shard `a` to shard `b` must use a
//! cut edge, so the pair region the sharded oracle serves such queries from
//! is the union of both shards' regions, glued along these edges. When a
//! fault set severs every portal between two shards, the stitched region
//! disconnects and the query falls back to the global oracle.

use std::collections::HashMap;

use ftspan::FaultSet;
use ftspan_graph::{EdgeId, Graph, VertexId};

use crate::shard::ShardPlan;

/// One spanner edge whose endpoints lie in different shards.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutEdge {
    /// Identifier of the edge in the global spanner.
    pub edge: EdgeId,
    /// The endpoint living in `shards.0`.
    pub u: VertexId,
    /// The endpoint living in `shards.1`.
    pub v: VertexId,
    /// The shard pair the edge connects, normalized so `shards.0 < shards.1`.
    pub shards: (u32, u32),
}

/// Index of every spanner edge crossing the shard partition, grouped by
/// shard pair, plus the portal vertices those edges expose.
#[derive(Debug)]
pub struct BoundaryIndex {
    cut_edges: Vec<CutEdge>,
    by_pair: HashMap<(u32, u32), Vec<usize>>,
    portals_by_shard: Vec<Vec<VertexId>>,
    portal: Vec<bool>,
}

impl BoundaryIndex {
    /// Builds the index for a spanner under a shard plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not cover the spanner's vertex set.
    #[must_use]
    pub fn build(spanner: &Graph, plan: &ShardPlan) -> Self {
        assert_eq!(
            spanner.vertex_count(),
            plan.vertex_count(),
            "shard plan must cover the spanner's vertex set"
        );
        let mut cut_edges = Vec::new();
        let mut by_pair: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        let mut portals_by_shard = vec![Vec::new(); plan.shard_count()];
        let mut portal = vec![false; spanner.vertex_count()];
        for (id, edge) in spanner.edges() {
            let (mut u, mut v) = edge.endpoints();
            let (mut su, mut sv) = (plan.shard_of(u), plan.shard_of(v));
            if su == sv {
                continue;
            }
            if su > sv {
                (u, v) = (v, u);
                (su, sv) = (sv, su);
            }
            by_pair.entry((su, sv)).or_default().push(cut_edges.len());
            cut_edges.push(CutEdge {
                edge: id,
                u,
                v,
                shards: (su, sv),
            });
            for (vertex, shard) in [(u, su), (v, sv)] {
                if !portal[vertex.index()] {
                    portal[vertex.index()] = true;
                }
                portals_by_shard[shard as usize].push(vertex);
            }
        }
        for portals in &mut portals_by_shard {
            portals.sort_unstable();
            portals.dedup();
        }
        Self {
            cut_edges,
            by_pair,
            portals_by_shard,
            portal,
        }
    }

    /// Every cut edge, in spanner edge order.
    #[must_use]
    pub fn cut_edges(&self) -> &[CutEdge] {
        &self.cut_edges
    }

    /// The cut edges between one shard pair (order of `a`, `b` irrelevant).
    pub fn cut_edges_between(&self, a: u32, b: u32) -> impl Iterator<Item = &CutEdge> + '_ {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.by_pair
            .get(&key)
            .into_iter()
            .flatten()
            .map(|&i| &self.cut_edges[i])
    }

    /// The portal vertices a shard exposes (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn portals(&self, shard: usize) -> &[VertexId] {
        &self.portals_by_shard[shard]
    }

    /// The portal vertices on either side of one shard pair's cut.
    #[must_use]
    pub fn portals_between(&self, a: u32, b: u32) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .cut_edges_between(a, b)
            .flat_map(|c| [c.u, c.v])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Returns `true` if the vertex is incident to any cut edge.
    #[must_use]
    pub fn is_portal(&self, v: VertexId) -> bool {
        self.portal.get(v.index()).copied().unwrap_or(false)
    }

    /// The shard pairs connected by at least one cut edge, sorted.
    #[must_use]
    pub fn adjacent_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self.by_pair.keys().copied().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Heap bytes held by the index: cut edges, per-pair buckets, portal
    /// lists and the portal bitmap. This is the number the scale tier keeps
    /// sub-linear by building the index over super-shards only.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.cut_edges.capacity() * std::mem::size_of::<CutEdge>()
            + self.portal.capacity()
            + self.portals_by_shard.capacity() * std::mem::size_of::<Vec<VertexId>>();
        for portals in &self.portals_by_shard {
            bytes += portals.capacity() * std::mem::size_of::<VertexId>();
        }
        bytes += self.by_pair.capacity()
            * (std::mem::size_of::<(u32, u32)>() + std::mem::size_of::<Vec<usize>>());
        for bucket in self.by_pair.values() {
            bytes += bucket.capacity() * std::mem::size_of::<usize>();
        }
        bytes
    }

    /// Number of cut edges between `a` and `b` that survive the given fault
    /// set: neither endpoint faulted and, for edge faults, the edge itself
    /// not faulted (edge fault ids refer to `graph`, the oracle's input
    /// graph, and are matched against the cut edge by endpoints). `0` means
    /// the fault set severs every portal between the two shards.
    #[must_use]
    pub fn live_cut_edges_between(
        &self,
        a: u32,
        b: u32,
        faults: &FaultSet,
        graph: &Graph,
    ) -> usize {
        self.cut_edges_between(a, b)
            .filter(|cut| match faults {
                FaultSet::Vertices(vs) => !vs.contains(&cut.u) && !vs.contains(&cut.v),
                FaultSet::Edges(es) => !es.iter().any(|&e| {
                    graph
                        .get_edge(e)
                        .map(|ge| {
                            let (x, y) = ge.endpoints();
                            (x == cut.u && y == cut.v) || (x == cut.v && y == cut.u)
                        })
                        .unwrap_or(false)
                }),
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generators, vid};

    /// A 6-cycle split into two shards of 3 consecutive vertices each has
    /// exactly two cut edges: {2,3} and {5,0}.
    fn split_cycle() -> (Graph, ShardPlan) {
        let g = generators::cycle(6);
        let plan = ShardPlan::from_shard_of(vec![0, 0, 0, 1, 1, 1]);
        (g, plan)
    }

    #[test]
    fn records_every_crossing_edge_and_its_portals() {
        let (g, plan) = split_cycle();
        let index = BoundaryIndex::build(&g, &plan);
        assert_eq!(index.cut_edges().len(), 2);
        for cut in index.cut_edges() {
            assert_ne!(plan.shard_of(cut.u), plan.shard_of(cut.v));
            assert_eq!(cut.shards, (0, 1));
            assert!(index.is_portal(cut.u));
            assert!(index.is_portal(cut.v));
        }
        assert_eq!(index.portals(0), &[vid(0), vid(2)]);
        assert_eq!(index.portals(1), &[vid(3), vid(5)]);
        assert_eq!(
            index.portals_between(1, 0),
            vec![vid(0), vid(2), vid(3), vid(5)]
        );
        assert_eq!(index.adjacent_pairs(), vec![(0, 1)]);
        assert!(!index.is_portal(vid(1)));
    }

    #[test]
    fn live_cut_edges_detect_severed_portals() {
        let (g, plan) = split_cycle();
        let index = BoundaryIndex::build(&g, &plan);
        assert_eq!(
            index.live_cut_edges_between(0, 1, &FaultSet::vertices([]), &g),
            2
        );
        // Faulting vertex 2 kills the {2,3} crossing, leaving {5,0}.
        let one = FaultSet::vertices([vid(2)]);
        assert_eq!(index.live_cut_edges_between(0, 1, &one, &g), 1);
        // Faulting both 2 and 5 severs every portal between the shards.
        let both = FaultSet::vertices([vid(2), vid(5)]);
        assert_eq!(index.live_cut_edges_between(0, 1, &both, &g), 0);
        // Edge faults match cut edges by endpoints.
        let e = g.edge_between(vid(2), vid(3)).unwrap();
        assert_eq!(
            index.live_cut_edges_between(0, 1, &FaultSet::edges([e]), &g),
            1
        );
    }

    #[test]
    fn intra_shard_edges_are_not_cut_edges() {
        let g = generators::complete(4);
        let plan = ShardPlan::from_shard_of(vec![0, 0, 0, 0]);
        let index = BoundaryIndex::build(&g, &plan);
        assert!(index.cut_edges().is_empty());
        assert!(index.adjacent_pairs().is_empty());
        assert_eq!(index.portals(0), &[] as &[VertexId]);
    }
}
