//! # ftspan-oracle
//!
//! A fault-tolerant **query-serving engine** over the spanners built by the
//! [`ftspan`] crate: the layer that turns "construct and verify offline" into
//! an online system answering distance and path queries under failures.
//!
//! The constructions of Dinitz & Robelle (PODC 2020) guarantee that a
//! `(2k − 1)`-spanner `H` of `G` keeps
//! `d_{H∖F}(u, v) ≤ (2k − 1) · d_{G∖F}(u, v)` for every fault set `|F| ≤ f`.
//! The [`FaultOracle`] serves exactly those queries:
//!
//! * [`FaultOracle::distance`] / [`FaultOracle::path`] answer single queries
//!   on `H ∖ F` for an arbitrary fault set `F`, backed by an LRU
//!   [`cache`](crate::cache) of per-fault-set shortest-path trees keyed by
//!   the `O(|F|)` fingerprint from `ftspan-graph`;
//! * [`FaultOracle::answer_batch`] fans a mixed query batch out over a
//!   worker pool, grouping queries by fault set so every worker reuses both
//!   its Dijkstra scratch buffers and the shared tree cache;
//! * [`FaultOracle::apply_wave`] drives **churn**: permanent damage arrives
//!   as fault waves, broken stretch pairs are detected around the damage,
//!   and the spanner is repaired by re-running the modified greedy on the
//!   affected neighbourhood only ([`ftspan::repair`]), escalating to a full
//!   warm-start respan when local repair is insufficient;
//! * [`ShardedOracle`] scales the whole stack past one working set: a
//!   deterministic [`ShardPlan`] (padded-decomposition clusters packed into
//!   balanced shards) serves each shard from its own `FaultOracle` over the
//!   shard's core plus a `2k − 1` halo, stitches cross-shard queries through
//!   the [`BoundaryIndex`]'s portals, and falls back to a global oracle only
//!   when locality cannot be certified — so sharded answers are *identical*
//!   to single-oracle answers (see the [`shard`] module docs);
//! * both backends implement the [`SpannerOracle`] trait — one algorithmic
//!   interface (queries, batches, waves, unified [`ServiceMetrics`]) with an
//!   exactness contract (see the [`traits`] module docs) — and the
//!   [`OracleService`] front-end is written once against it: a non-blocking
//!   submit / pump / drain request loop with bounded **admission control**
//!   (global for the single oracle, per-shard lanes for the sharded one,
//!   with shed-or-queue handling of lanes mid-rebuild after a wave) and
//!   per-fault-set **request coalescing**, waves included as FIFO barriers
//!   ([`service::ServiceCommand::Wave`]).
//!
//! ## Example
//!
//! ```
//! use ftspan::{FaultSet, SpannerParams};
//! use ftspan_graph::{generators, vid};
//! use ftspan_oracle::{FaultOracle, OracleOptions, Query};
//!
//! let mut rng = rand::thread_rng();
//! let graph = generators::connected_gnp(40, 0.2, &mut rng);
//! let params = SpannerParams::vertex(2, 1);
//! let oracle = FaultOracle::build(graph, params, OracleOptions::default());
//!
//! // A single query under one vertex fault.
//! let faults = FaultSet::vertices([vid(3)]);
//! let d = oracle.distance(vid(0), vid(1), &faults);
//! assert!(d.is_some());
//!
//! // A small batch; answers come back in request order.
//! let batch = vec![
//!     Query::distance(vid(0), vid(5), faults.clone()),
//!     Query::path(vid(5), vid(9), faults.clone()),
//! ];
//! let answers = oracle.answer_batch(&batch);
//! assert_eq!(answers.len(), 2);
//!
//! // Or put the oracle behind the service front-end: submit / drain /
//! // wave / snapshot, with coalescing and admission control built in.
//! use ftspan_oracle::{OracleService, ServiceConfig};
//! let mut service = OracleService::new(oracle, ServiceConfig::default());
//! let ticket = service.submit(Query::distance(vid(0), vid(5), faults));
//! service.drain();
//! assert!(service.answer(ticket).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod boundary;
pub mod cache;
pub mod chaos;
pub mod churn;
pub mod hierarchy;
pub mod metrics;
mod oracle;
pub mod query;
pub mod repair;
pub mod replication;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod traits;

pub use boundary::{BoundaryIndex, CutEdge};
pub use cache::{CacheKey, TreeCache};
pub use churn::{ChurnConfig, ShardWaveOutcome, WaveOutcome, WaveReport};
pub use hierarchy::{HierarchicalOptions, HierarchicalOracle, HierarchyWaveOutcome};
pub use metrics::{LocalitySplit, MetricsSnapshot, OracleMetrics, ServiceMetrics};
pub use oracle::{FaultOracle, OracleOptions};
pub use query::{Answer, Query, QueryKind};
pub use replication::{JournalEntry, Replica, ReplicationError, WaveJournal};
pub use service::{
    EpochHandle, OracleService, PumpOutcome, RebuildPolicy, ServiceCommand, ServiceConfig,
    ServiceJournal, TicketId, TicketState,
};
pub use shard::{
    ShardPlan, ShardPlanOptions, ShardedMetrics, ShardedMetricsSnapshot, ShardedOptions,
    ShardedOracle,
};
pub use snapshot::{Snapshot, SnapshotError, SnapshotKind, Snapshottable};
pub use traits::SpannerOracle;
