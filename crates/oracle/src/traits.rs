//! The [`SpannerOracle`] trait: one algorithmic interface over every
//! serving backend.
//!
//! [`FaultOracle`] and [`ShardedOracle`] grew two parallel surfaces —
//! `distance` / `path` / `answer` / `answer_batch` / `apply_wave` plus
//! metrics and epoch accessors — that duplicated every caller written
//! against them (examples, benches, the planned front-end). This module is
//! the seam that collapses the duplication: generic code (most importantly
//! [`OracleService`](crate::service::OracleService)) is written once against
//! `SpannerOracle` and runs unchanged over either backend, the same way
//! deterministic MPC pipelines keep one ruling-set interface over many
//! execution models.
//!
//! ## Exactness contract
//!
//! Every implementation **must** answer queries *exactly*: for any query
//! `(u, v, F)`, [`SpannerOracle::distance`] returns the true shortest-path
//! distance `d_{H∖F}(u, v)` in the currently-served spanner `H` minus the
//! fault set `F` (and `None` exactly when the pair is disconnected or an
//! endpoint is faulted), and [`SpannerOracle::answer_batch`] returns, entry
//! for entry, what [`SpannerOracle::answer`] would return for the same
//! query against the same epoch. Implementations may cache, shard, batch,
//! or route however they like — but never approximate. The
//! `sharded_vs_single` and `service_vs_direct` differential suites enforce
//! this contract bit for bit on unit-weight inputs.
//!
//! ## Determinism contract (report digests)
//!
//! [`SpannerOracle::apply_wave`] must additionally be a **deterministic
//! function of the backend's state and the wave**: two backends at the same
//! state applying the same wave under the same [`ChurnConfig`] must make
//! identical repair decisions, summarized by an identical
//! [`WaveReport::digest`]. This is what the replication tier
//! ([`crate::replication`]) leans on — a replica replays the primary's
//! wave journal and asserts each entry's digest, so any nondeterminism in a
//! backend surfaces as a typed divergence error at the exact wave that
//! introduced it (the `replication_vs_primary` suite enforces this across
//! all three backends). Machine-local measurements (elapsed time) are
//! excluded from the digest by construction.

use ftspan::{FaultSet, SpannerParams};
use ftspan_graph::{Graph, VertexId};

use crate::churn::{ChurnConfig, WaveReport};
use crate::hierarchy::HierarchicalOracle;
use crate::metrics::{LocalitySplit, ServiceMetrics};
use crate::oracle::FaultOracle;
use crate::query::{Answer, Query};
use crate::shard::ShardedOracle;

/// A query-serving engine over a fault-tolerant spanner, abstracted over the
/// execution backend (single working set, sharded, …).
///
/// See the [module docs](crate::traits) for the exactness contract every
/// implementation must preserve, and
/// [`OracleService`](crate::service::OracleService) for the front-end built
/// on top of this trait.
///
/// `Send + Sync` are supertraits: the service front-end publishes the
/// backend behind an epoch pointer that reader worker threads clone and
/// query concurrently, so every backend must be shareable across threads.
/// Both shipped backends already are (interior mutability is confined to
/// mutex-guarded tree caches and atomic counters).
pub trait SpannerOracle: Send + Sync {
    /// The current effective input graph (base graph minus accumulated
    /// permanent damage). Query edge-fault identifiers refer to this graph.
    fn graph(&self) -> &Graph;

    /// The spanner currently being served.
    fn spanner(&self) -> &Graph;

    /// The parameters the spanner targets.
    fn params(&self) -> SpannerParams;

    /// The stretch bound `2k − 1` as a float, for stretch audits.
    fn stretch_bound(&self) -> f64 {
        f64::from(self.params().stretch())
    }

    /// The number of structural changes (fault waves) applied so far.
    /// **Stale** cached artifacts never survive an epoch change; backends
    /// may keep caches that remain valid (a sharded backend deliberately
    /// preserves wave-untouched regions' warm trees across epochs).
    fn epoch(&self) -> u64;

    /// Distance in `H ∖ F`, or `None` when the faults disconnect the pair
    /// (or fault an endpoint). Must equal the exact shortest-path distance.
    fn distance(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<f64>;

    /// Distance plus an explicit shortest path in `H ∖ F`.
    fn path(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<(f64, Vec<VertexId>)>;

    /// Answers one query.
    fn answer(&self, query: &Query) -> Answer;

    /// Answers a batch of queries, returning answers in request order. Each
    /// answer must equal what [`SpannerOracle::answer`] would return for the
    /// same query at the same epoch.
    fn answer_batch(&self, queries: &[Query]) -> Vec<Answer>;

    /// Applies a permanent fault wave, repairs the spanner around it, and
    /// invalidates cached serving state. Returns the backend-agnostic
    /// [`WaveReport`]; backend-specific detail stays available through the
    /// concrete types' inherent `apply_wave` methods. Must be deterministic
    /// — see the [module docs](crate::traits) determinism contract that
    /// replication replays verify via [`WaveReport::digest`].
    fn apply_wave(&mut self, wave: &FaultSet, config: &ChurnConfig) -> WaveReport;

    /// A point-in-time [`ServiceMetrics`] view of the backend: queries, hit
    /// rate, trees built, waves, and (for routing backends) the locality
    /// split. Front-end counters (`submitted` / `coalesced` / `shed`) are
    /// zero here; [`OracleService`](crate::service::OracleService) fills
    /// them in.
    fn service_metrics(&self) -> ServiceMetrics;

    /// How many independent admission lanes this backend exposes. The
    /// single oracle has one; a sharded backend has one lane per shard, so
    /// the front-end can bound in-flight work — and shed or queue traffic
    /// after a rebuild — per shard rather than globally.
    fn admission_lanes(&self) -> usize {
        1
    }

    /// The admission lane a `(u, v)` query is charged to. Must be in
    /// `0..admission_lanes()`.
    fn admission_lane(&self, u: VertexId, v: VertexId) -> usize {
        let _ = (u, v);
        0
    }
}

impl SpannerOracle for FaultOracle {
    fn graph(&self) -> &Graph {
        self.graph()
    }

    fn spanner(&self) -> &Graph {
        self.spanner()
    }

    fn params(&self) -> SpannerParams {
        self.params()
    }

    fn epoch(&self) -> u64 {
        self.epoch()
    }

    fn distance(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<f64> {
        self.distance(u, v, faults)
    }

    fn path(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<(f64, Vec<VertexId>)> {
        self.path(u, v, faults)
    }

    fn answer(&self, query: &Query) -> Answer {
        self.answer(query)
    }

    fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        self.answer_batch(queries)
    }

    fn apply_wave(&mut self, wave: &FaultSet, config: &ChurnConfig) -> WaveReport {
        // The inherent method (which this resolves to) carries the provable
        // repair guarantees; the single oracle is one lane that every wave
        // rebuilds wholesale (its entire cache is invalidated).
        let outcome = self.apply_wave(wave, config);
        WaveReport {
            outcome,
            rebuilt_lanes: vec![0],
            severed_pairs: Vec::new(),
        }
    }

    fn service_metrics(&self) -> ServiceMetrics {
        let snap = self.metrics().snapshot();
        ServiceMetrics {
            queries: snap.queries,
            cache_hits: snap.cache_hits,
            trees_built: snap.trees_built,
            batches: snap.batches,
            waves: snap.waves_applied,
            locality: None,
            ..ServiceMetrics::default()
        }
    }
}

impl SpannerOracle for ShardedOracle {
    fn graph(&self) -> &Graph {
        self.graph()
    }

    fn spanner(&self) -> &Graph {
        self.spanner()
    }

    fn params(&self) -> SpannerParams {
        self.params()
    }

    fn epoch(&self) -> u64 {
        self.epoch()
    }

    fn distance(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<f64> {
        self.distance(u, v, faults)
    }

    fn path(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<(f64, Vec<VertexId>)> {
        self.path(u, v, faults)
    }

    fn answer(&self, query: &Query) -> Answer {
        self.answer(query)
    }

    fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        self.answer_batch(queries)
    }

    fn apply_wave(&mut self, wave: &FaultSet, config: &ChurnConfig) -> WaveReport {
        let outcome = self.apply_wave(wave, config);
        WaveReport {
            rebuilt_lanes: outcome.rebuilt_shards,
            severed_pairs: outcome.severed_pairs,
            outcome: outcome.global,
        }
    }

    fn service_metrics(&self) -> ServiceMetrics {
        let snap = self.metrics().snapshot();
        let (cache_hits, trees_built) = self.cache_stats();
        ServiceMetrics {
            queries: snap.queries,
            cache_hits,
            trees_built,
            batches: snap.batches,
            waves: snap.waves,
            locality: Some(LocalitySplit {
                local: snap.local,
                stitched: snap.stitched,
                global_fallbacks: snap.global_fallbacks,
            }),
            ..ServiceMetrics::default()
        }
    }

    fn admission_lanes(&self) -> usize {
        self.shard_count()
    }

    /// Queries are charged to the lane of `u`'s shard — the shard whose
    /// region (or pair region) does the serving work for both local and
    /// cross-shard routes.
    fn admission_lane(&self, u: VertexId, _v: VertexId) -> usize {
        self.plan().shard_of(u) as usize
    }
}

impl SpannerOracle for HierarchicalOracle {
    fn graph(&self) -> &Graph {
        self.graph()
    }

    fn spanner(&self) -> &Graph {
        self.spanner()
    }

    fn params(&self) -> SpannerParams {
        self.params()
    }

    fn epoch(&self) -> u64 {
        self.epoch()
    }

    fn distance(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<f64> {
        self.distance(u, v, faults)
    }

    fn path(&self, u: VertexId, v: VertexId, faults: &FaultSet) -> Option<(f64, Vec<VertexId>)> {
        self.path(u, v, faults)
    }

    fn answer(&self, query: &Query) -> Answer {
        self.answer(query)
    }

    fn answer_batch(&self, queries: &[Query]) -> Vec<Answer> {
        self.answer_batch(queries)
    }

    fn apply_wave(&mut self, wave: &FaultSet, config: &ChurnConfig) -> WaveReport {
        let outcome = self.apply_wave(wave, config);
        WaveReport {
            rebuilt_lanes: outcome.rebuilt_leaves,
            severed_pairs: outcome.severed_super_pairs,
            outcome: outcome.global,
        }
    }

    fn service_metrics(&self) -> ServiceMetrics {
        let snap = self.metrics().snapshot();
        let (cache_hits, trees_built) = self.cache_stats();
        ServiceMetrics {
            queries: snap.queries,
            cache_hits,
            trees_built,
            batches: snap.batches,
            waves: snap.waves,
            locality: Some(LocalitySplit {
                local: snap.local,
                stitched: snap.stitched,
                global_fallbacks: snap.global_fallbacks,
            }),
            ..ServiceMetrics::default()
        }
    }

    fn admission_lanes(&self) -> usize {
        self.leaf_count()
    }

    /// Queries are charged to the lane of `u`'s **leaf** — the finest
    /// granularity the front-end can shed or queue at.
    fn admission_lane(&self, u: VertexId, _v: VertexId) -> usize {
        self.leaf_plan().shard_of(u) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleOptions;
    use crate::shard::{ShardPlanOptions, ShardedOptions};
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::connected_gnp(36, 0.2, &mut rng)
    }

    /// A caller written once against the trait, exercised over both
    /// backends: the shape every generic consumer (service, examples,
    /// benches) relies on.
    fn drive<O: SpannerOracle>(oracle: &mut O) {
        let faults = FaultSet::vertices([vid(5)]);
        let single = oracle.distance(vid(0), vid(1), &faults);
        let answer = oracle.answer(&Query::distance(vid(0), vid(1), faults.clone()));
        assert_eq!(single, answer.distance());
        let batch = vec![
            Query::distance(vid(0), vid(1), faults.clone()),
            Query::path(vid(2), vid(9), faults.clone()),
        ];
        let answers = oracle.answer_batch(&batch);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].distance(), single);
        if let Some((d, p)) = oracle.path(vid(2), vid(9), &faults) {
            assert_eq!(answers[1].distance(), Some(d));
            assert_eq!(p.first(), Some(&vid(2)));
        }
        let epoch_before = oracle.epoch();
        let report = oracle.apply_wave(&FaultSet::vertices([vid(11)]), &ChurnConfig::default());
        assert!(!report.rebuilt_lanes.is_empty());
        assert!(report
            .rebuilt_lanes
            .iter()
            .all(|&lane| lane < oracle.admission_lanes()));
        assert_eq!(oracle.epoch(), epoch_before + 1);
        let metrics = oracle.service_metrics();
        assert!(metrics.queries >= 4);
        assert_eq!(metrics.waves, 1);
        assert_eq!(metrics.submitted, 0, "front-end counters stay zero");
    }

    #[test]
    fn fault_oracle_serves_through_the_trait() {
        let mut oracle = FaultOracle::build(
            workload(61),
            SpannerParams::vertex(2, 1),
            OracleOptions::default(),
        );
        drive(&mut oracle);
        assert_eq!(SpannerOracle::admission_lanes(&oracle), 1);
        assert_eq!(SpannerOracle::admission_lane(&oracle, vid(3), vid(7)), 0);
        assert!(SpannerOracle::service_metrics(&oracle).locality.is_none());
    }

    #[test]
    fn sharded_oracle_serves_through_the_trait() {
        let mut oracle = ShardedOracle::build(
            workload(62),
            SpannerParams::vertex(2, 1),
            ShardedOptions {
                plan: ShardPlanOptions {
                    shards: 3,
                    ..ShardPlanOptions::default()
                },
                ..ShardedOptions::default()
            },
        );
        let lanes = SpannerOracle::admission_lanes(&oracle);
        assert_eq!(lanes, oracle.shard_count());
        drive(&mut oracle);
        for u in 0..oracle.graph().vertex_count() {
            let lane = SpannerOracle::admission_lane(&oracle, vid(u), vid(0));
            assert!(lane < lanes);
            assert_eq!(lane, oracle.plan().shard_of(vid(u)) as usize);
        }
        assert!(SpannerOracle::service_metrics(&oracle).locality.is_some());
    }

    #[test]
    fn hierarchical_oracle_serves_through_the_trait() {
        let mut oracle = crate::HierarchicalOracle::build(
            workload(64),
            SpannerParams::vertex(2, 1),
            crate::HierarchicalOptions {
                plan: ShardPlanOptions {
                    shards: 4,
                    ..ShardPlanOptions::default()
                },
                super_shards: 2,
                ..crate::HierarchicalOptions::default()
            },
        );
        let lanes = SpannerOracle::admission_lanes(&oracle);
        assert_eq!(lanes, oracle.leaf_count());
        drive(&mut oracle);
        for u in 0..oracle.graph().vertex_count() {
            let lane = SpannerOracle::admission_lane(&oracle, vid(u), vid(0));
            assert!(lane < lanes);
            assert_eq!(lane, oracle.leaf_plan().shard_of(vid(u)) as usize);
        }
        assert!(SpannerOracle::service_metrics(&oracle).locality.is_some());
    }

    #[test]
    fn trait_wave_report_matches_inherent_outcomes() {
        let graph = workload(63);
        let mut a = FaultOracle::build(
            graph.clone(),
            SpannerParams::vertex(2, 1),
            OracleOptions::default(),
        );
        let mut b =
            FaultOracle::build(graph, SpannerParams::vertex(2, 1), OracleOptions::default());
        let wave = FaultSet::vertices([vid(4), vid(9)]);
        let inherent = a.apply_wave(&wave, &ChurnConfig::default());
        let report = SpannerOracle::apply_wave(&mut b, &wave, &ChurnConfig::default());
        assert_eq!(report.outcome.edges_added, inherent.edges_added);
        assert_eq!(report.outcome.broken_pairs, inherent.broken_pairs);
        assert_eq!(report.outcome.escalated, inherent.escalated);
        assert_eq!(report.rebuilt_lanes, vec![0]);
        assert!(report.severed_pairs.is_empty());
    }
}
