//! # ftspan-graph
//!
//! Graph substrate for the `ftspan` fault-tolerant spanner workspace.
//!
//! The crate provides the pieces that the spanner algorithms of
//! Dinitz & Robelle (PODC 2020) are built on:
//!
//! * [`Graph`] — an undirected simple graph with optional weights, stored as
//!   an adjacency list with dense [`VertexId`]/[`EdgeId`] identifiers.
//! * [`FaultView`] — a zero-copy view of `G \ F` for a growing set of vertex
//!   and/or edge faults, behind the [`GraphView`] trait that all traversal
//!   algorithms are generic over.
//! * [`bfs`] / [`dijkstra`] — hop-bounded breadth-first search (the inner
//!   primitive of the paper's Length-Bounded Cut approximation) and weighted
//!   shortest paths (used by the spanner verifier).
//! * [`traversal`] / [`girth`] / [`metrics`] — connectivity, girth, and
//!   summary statistics used by the analyses and the experiment harness.
//! * [`generators`] — deterministic, seedable random-graph workloads.
//! * [`io`] — plain-text edge-list serialization.
//! * [`wire`] — compact binary encoding with bit-exact weights, the
//!   substrate of oracle snapshots and the `ftspan-server` protocol.
//!
//! ## Example
//!
//! ```
//! use ftspan_graph::{bfs, vid, FaultView, Graph, GraphView};
//!
//! // A 4-cycle with a chord.
//! let mut g = Graph::new(4);
//! g.add_unit_edge(0, 1);
//! g.add_unit_edge(1, 2);
//! g.add_unit_edge(2, 3);
//! g.add_unit_edge(3, 0);
//! g.add_unit_edge(0, 2);
//!
//! // Distances in G and in G \ {v1}.
//! assert_eq!(bfs::hop_distance(&g, vid(1), vid(3)), Some(2));
//! let mut faulted = FaultView::new(&g);
//! faulted.block_vertex(vid(0));
//! assert_eq!(bfs::hop_distance(&faulted, vid(1), vid(3)), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bfs;
pub mod dijkstra;
mod edge;
mod epoch;
mod error;
pub mod generators;
pub mod girth;
mod graph;
mod ids;
pub mod io;
pub mod metrics;
pub mod traversal;
mod view;
pub mod wire;

pub use edge::Edge;
pub use epoch::EpochMarks;
pub use error::{GraphError, Result};
pub use graph::{Graph, GraphBuilder};
pub use ids::{eid, vid, EdgeId, IdRemap, VertexId};
pub use view::{
    fault_fingerprint, fault_fingerprint_namespaced, namespace_fingerprint, FaultScratch,
    FaultView, GraphView, ScratchFaultView,
};
pub use wire::{fnv1a64, WireError, WireReader, WireWriter};
