//! Summary statistics for graphs: density, degree distribution, diameter.

use crate::bfs::bfs_hop_distances;
use crate::{GraphView, VertexId};

/// A compact statistical summary of a graph view, used by the experiment
/// harness to describe workloads and outputs.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// Number of live vertices.
    pub vertices: usize,
    /// Number of live edges.
    pub edges: usize,
    /// Minimum degree over live vertices (0 for an empty graph).
    pub min_degree: usize,
    /// Maximum degree over live vertices (0 for an empty graph).
    pub max_degree: usize,
    /// Average degree `2m / n` (0 for an empty graph).
    pub average_degree: f64,
    /// Edge density `m / C(n, 2)` (0 when `n < 2`).
    pub density: f64,
}

/// Computes a [`GraphSummary`] for any view.
#[must_use]
pub fn summarize<V: GraphView>(view: &V) -> GraphSummary {
    let n = view.live_vertex_count();
    let mut degrees = Vec::with_capacity(n);
    let mut edges2 = 0usize;
    for i in 0..view.vertex_count() {
        let v = VertexId::new(i);
        if !view.contains_vertex(v) {
            continue;
        }
        let d = view.neighbors(v).count();
        edges2 += d;
        degrees.push(d);
    }
    let edges = edges2 / 2;
    let possible = if n >= 2 { n * (n - 1) / 2 } else { 0 };
    GraphSummary {
        vertices: n,
        edges,
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        average_degree: if n == 0 {
            0.0
        } else {
            2.0 * edges as f64 / n as f64
        },
        density: if possible == 0 {
            0.0
        } else {
            edges as f64 / possible as f64
        },
    }
}

/// Exact hop diameter of the view: the maximum hop distance over all pairs of
/// live vertices in the same component. Returns `None` when there are no live
/// vertices. Disconnected pairs are ignored.
///
/// Runs a BFS from every vertex (`O(n(m + n))`), fine for experiment-scale
/// graphs; use [`estimate_diameter`] for large inputs.
#[must_use]
pub fn hop_diameter<V: GraphView>(view: &V) -> Option<u32> {
    let mut best: Option<u32> = None;
    for i in 0..view.vertex_count() {
        let v = VertexId::new(i);
        if !view.contains_vertex(v) {
            continue;
        }
        let ecc = bfs_hop_distances(view, v)
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0);
        best = Some(best.map_or(ecc, |b| b.max(ecc)));
    }
    best
}

/// Lower-bound estimate of the hop diameter via a double BFS sweep: BFS from
/// `start`, then BFS from the farthest vertex found. Exact on trees and a
/// 2-approximation in general.
#[must_use]
pub fn estimate_diameter<V: GraphView>(view: &V, start: VertexId) -> Option<u32> {
    if !view.contains_vertex(start) {
        return None;
    }
    let d1 = bfs_hop_distances(view, start);
    let farthest = d1
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (i, d)))
        .max_by_key(|&(_, d)| d)
        .map(|(i, _)| VertexId::new(i))?;
    bfs_hop_distances(view, farthest)
        .into_iter()
        .flatten()
        .max()
}

/// Degree histogram: entry `i` counts live vertices with degree exactly `i`.
#[must_use]
pub fn degree_histogram<V: GraphView>(view: &V) -> Vec<usize> {
    let mut hist = Vec::new();
    for i in 0..view.vertex_count() {
        let v = VertexId::new(i);
        if !view.contains_vertex(v) {
            continue;
        }
        let d = view.neighbors(v).count();
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::{vid, FaultView};

    #[test]
    fn summary_of_complete_graph() {
        let g = generators::complete(5);
        let s = summarize(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 10);
        assert_eq!(s.min_degree, 4);
        assert_eq!(s.max_degree, 4);
        assert!((s.average_degree - 4.0).abs() < 1e-12);
        assert!((s.density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_respects_faults() {
        let g = generators::complete(5);
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(0));
        let s = summarize(&view);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 6);
        assert_eq!(s.max_degree, 3);
    }

    #[test]
    fn summary_of_empty_graph() {
        let g = crate::Graph::new(0);
        let s = summarize(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.average_degree, 0.0);
    }

    #[test]
    fn diameter_of_path_and_star() {
        let p = generators::path(6);
        assert_eq!(hop_diameter(&p), Some(5));
        assert_eq!(estimate_diameter(&p, vid(2)), Some(5));
        let s = generators::star(6);
        assert_eq!(hop_diameter(&s), Some(2));
    }

    #[test]
    fn diameter_of_disconnected_graph_ignores_cross_pairs() {
        let mut g = crate::Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        assert_eq!(hop_diameter(&g), Some(1));
    }

    #[test]
    fn diameter_estimate_is_a_lower_bound() {
        let g = generators::grid(5, 5);
        let exact = hop_diameter(&g).unwrap();
        let est = estimate_diameter(&g, vid(12)).unwrap();
        assert!(est <= exact);
        assert!(est >= exact / 2);
    }

    #[test]
    fn degree_histogram_counts_each_vertex_once() {
        let g = generators::star(5);
        let hist = degree_histogram(&g);
        // One hub of degree 4, four leaves of degree 1.
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
        assert_eq!(hist.iter().sum::<usize>(), 5);
    }
}
