//! Epoch-stamped marks: a dense boolean set with `O(1)` bulk clear.
//!
//! Pooled scratch state all over this workspace needs the same primitive —
//! "mark elements of `0..n`, then forget everything instantly on the next
//! run" — for fault views, BFS visited sets, candidate dedup, and
//! per-source cache validity. Hand-rolling it repeats a subtle wrap-safety
//! invariant (stamps must be reset when the epoch counter wraps, and slots
//! grown later must never alias a live epoch), so the pattern lives here
//! once.

/// A set over `0..len` whose `clear` is an epoch bump.
///
/// `begin(n)` starts a new empty generation in `O(1)` (amortized: growing
/// to a larger `n` and the once-per-`u32::MAX` wrap reset are the only
/// linear steps). `set`/`is_set` then behave like a boolean array scoped to
/// the current generation.
///
/// # Examples
///
/// ```
/// use ftspan_graph::EpochMarks;
///
/// let mut marks = EpochMarks::new();
/// marks.begin(4);
/// assert!(marks.set(2));
/// assert!(!marks.set(2), "already set this generation");
/// assert!(marks.is_set(2));
/// marks.begin(4); // O(1) clear
/// assert!(!marks.is_set(2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EpochMarks {
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochMarks {
    /// Creates an empty set; storage grows on first [`EpochMarks::begin`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new, empty generation over `0..n`.
    ///
    /// Growing fills new slots with stamp `0`, which can never equal the
    /// (post-bump, non-zero) current epoch; on the rare epoch wrap every
    /// stamp is reset so stale marks cannot alias the restarted counter.
    pub fn begin(&mut self, n: usize) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    /// Number of slots currently backed (the high-water `n`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Returns `true` when no slots are backed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Returns `true` if `i` was marked in the current generation.
    #[inline]
    #[must_use]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// Marks `i` in the current generation; returns `true` if newly marked.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        let slot = &mut self.stamp[i];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_clears_and_grows() {
        let mut marks = EpochMarks::new();
        marks.begin(3);
        assert_eq!(marks.len(), 3);
        assert!(marks.set(0));
        assert!(marks.set(2));
        assert!(!marks.set(2));
        marks.begin(3);
        assert!(!marks.is_set(0));
        assert!(!marks.is_set(2));
        // Growing keeps earlier slots usable and new slots unmarked.
        marks.begin(6);
        assert_eq!(marks.len(), 6);
        assert!(!marks.is_set(5));
        assert!(marks.set(5));
        // Shrinking requests keep the high-water backing.
        marks.begin(2);
        assert_eq!(marks.len(), 6);
    }

    #[test]
    fn wrap_resets_every_stamp() {
        // One generation before the wrap: slot 0 marked, slot 1 untouched.
        let mut marks = EpochMarks {
            stamp: vec![u32::MAX - 1, 0],
            epoch: u32::MAX - 1,
        };
        assert!(marks.is_set(0));
        marks.begin(2); // epoch becomes u32::MAX
        assert!(!marks.is_set(0));
        assert!(marks.set(1)); // stamps a slot with u32::MAX
        marks.begin(2); // wrap: full reset, epoch restarts at 1
        assert!(!marks.is_set(0));
        assert!(!marks.is_set(1), "wrap must clear slots stamped u32::MAX");
        assert!(marks.set(0));
    }
}
