//! Weighted shortest paths (Dijkstra) on graph views.
//!
//! The spanner *verifier* needs true weighted distances in `G \ F` and in
//! `H \ F` to check the stretch condition of Definition 1; the construction
//! algorithms themselves only ever use BFS (see [`crate::bfs`]).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::{GraphView, VertexId};

/// Entry in the Dijkstra priority queue (min-heap by distance).
#[derive(Copy, Clone, Debug, PartialEq)]
struct HeapEntry {
    distance: f64,
    vertex: VertexId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert the distance comparison to pop the
        // smallest tentative distance first. Ties break on vertex id so the
        // ordering is total even with equal distances.
        other
            .distance
            .total_cmp(&self.distance)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes weighted shortest-path distances from `source` to every vertex.
///
/// Returns a vector indexed by vertex id with `f64::INFINITY` for vertices
/// that are unreachable or faulted. Edge weights must be non-negative, which
/// the [`Graph`](crate::Graph) constructors enforce.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{dijkstra::dijkstra_distances, vid, Graph};
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 2.0);
/// g.add_edge(1, 2, 3.0);
/// g.add_edge(0, 2, 10.0);
/// let dist = dijkstra_distances(&g, vid(0));
/// assert_eq!(dist[2], 5.0);
/// ```
#[must_use]
pub fn dijkstra_distances<V: GraphView>(view: &V, source: VertexId) -> Vec<f64> {
    let n = view.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    if !view.contains_vertex(source) {
        return dist;
    }
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        distance: 0.0,
        vertex: source,
    });
    while let Some(HeapEntry { distance, vertex }) = heap.pop() {
        if settled[vertex.index()] {
            continue;
        }
        settled[vertex.index()] = true;
        for (nbr, e) in view.neighbors(vertex) {
            let cand = distance + view.edge_weight(e);
            if cand < dist[nbr.index()] {
                dist[nbr.index()] = cand;
                heap.push(HeapEntry {
                    distance: cand,
                    vertex: nbr,
                });
            }
        }
    }
    dist
}

/// Weighted distance between two vertices, or `None` if disconnected (or an
/// endpoint is faulted).
#[must_use]
pub fn weighted_distance<V: GraphView>(
    view: &V,
    source: VertexId,
    target: VertexId,
) -> Option<f64> {
    if !view.contains_vertex(source) || !view.contains_vertex(target) {
        return None;
    }
    let d = dijkstra_distances(view, source)[target.index()];
    d.is_finite().then_some(d)
}

/// Computes a shortest weighted path, returning `(total weight, vertices)`.
///
/// Returns `None` if the target is unreachable or either endpoint is faulted.
#[must_use]
pub fn shortest_weighted_path<V: GraphView>(
    view: &V,
    source: VertexId,
    target: VertexId,
) -> Option<(f64, Vec<VertexId>)> {
    if !view.contains_vertex(source) || !view.contains_vertex(target) {
        return None;
    }
    let n = view.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        distance: 0.0,
        vertex: source,
    });
    while let Some(HeapEntry { distance, vertex }) = heap.pop() {
        if settled[vertex.index()] {
            continue;
        }
        settled[vertex.index()] = true;
        if vertex == target {
            break;
        }
        for (nbr, e) in view.neighbors(vertex) {
            let cand = distance + view.edge_weight(e);
            if cand < dist[nbr.index()] {
                dist[nbr.index()] = cand;
                parent[nbr.index()] = Some(vertex);
                heap.push(HeapEntry {
                    distance: cand,
                    vertex: nbr,
                });
            }
        }
    }
    if !dist[target.index()].is_finite() {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = parent[cur.index()].expect("path reconstruction must reach the source");
        path.push(cur);
    }
    path.reverse();
    Some((dist[target.index()], path))
}

/// A single-source shortest-path tree: distances and parent pointers from one
/// source over a (possibly faulted) view.
///
/// Trees are the unit of caching in query-serving layers: one Dijkstra run
/// from `source` answers every `(source, *)` distance or path query under the
/// same fault set, so the tree owns its data and can outlive both the scratch
/// space that computed it and the view it was computed on.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    source: VertexId,
    dist: Vec<f64>,
    parent: Vec<Option<VertexId>>,
}

impl ShortestPathTree {
    /// The source vertex the tree is rooted at.
    #[inline]
    #[must_use]
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Number of vertices covered by the tree (the view's vertex count).
    #[inline]
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.dist.len()
    }

    /// Heap bytes held by the tree's distance and parent arrays — the unit
    /// the tree-cache memory accounting sums over.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.dist.capacity() * std::mem::size_of::<f64>()
            + self.parent.capacity() * std::mem::size_of::<Option<VertexId>>()
    }

    /// Weighted distance from the source to `v`, or `None` when `v` is
    /// unreachable (or was faulted).
    #[must_use]
    pub fn distance_to(&self, v: VertexId) -> Option<f64> {
        let d = *self.dist.get(v.index())?;
        d.is_finite().then_some(d)
    }

    /// The shortest path from the source to `v` (inclusive on both ends), or
    /// `None` when `v` is unreachable.
    #[must_use]
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if !self.dist.get(v.index())?.is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent[cur.index()].expect("finite distance implies a parent chain");
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Raw distance slice indexed by vertex id (`f64::INFINITY` marks
    /// unreachable vertices), for bulk consumers like verifiers.
    #[inline]
    #[must_use]
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }
}

/// Reusable buffers for repeated Dijkstra runs.
///
/// Serving layers run Dijkstra once per (fault set, source) pair, thousands
/// of times per second; reallocating the distance, parent, settled, and heap
/// storage on every run is measurable. A scratch instance keeps those
/// allocations alive across runs and across views (it resizes itself to each
/// view's vertex count).
///
/// On unit-weighted views ([`GraphView::unit_weighted`]) the tree is built
/// with a bucket queue (Dial's algorithm with bucket width 1, which
/// degenerates to plain BFS): no heap, no `f64` comparisons in the queue
/// discipline. The distances are bit-identical to the Dijkstra lane — both
/// compute exact small-integer sums of `1.0` — only the choice of parent
/// among equal-distance predecessors (and therefore which of several equally
/// short paths a tree reports) can differ.
///
/// # Examples
///
/// ```
/// use ftspan_graph::dijkstra::DijkstraScratch;
/// use ftspan_graph::{vid, Graph};
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 2.0);
/// g.add_edge(1, 2, 3.0);
/// let mut scratch = DijkstraScratch::new();
/// let tree = scratch.shortest_path_tree(&g, vid(0));
/// assert_eq!(tree.distance_to(vid(2)), Some(5.0));
/// assert_eq!(tree.path_to(vid(2)).unwrap(), vec![vid(0), vid(1), vid(2)]);
/// ```
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    parent: Vec<Option<VertexId>>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    /// FIFO bucket of the Dial lane (unit weights ⇒ one active bucket).
    bucket: VecDeque<VertexId>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for views with `n` vertices.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            dist: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
            settled: Vec::with_capacity(n),
            heap: BinaryHeap::with_capacity(n),
            bucket: VecDeque::with_capacity(n),
        }
    }

    /// Runs a single-source shortest-path computation from `source` over
    /// `view`, returning an owned tree. The scratch buffers are reset and
    /// reused; the returned tree copies only the distance and parent arrays
    /// it needs. Unit-weighted views take the bucket-queue (Dial) lane, all
    /// others run binary-heap Dijkstra; the distances agree bit-for-bit.
    #[must_use]
    pub fn shortest_path_tree<V: GraphView>(
        &mut self,
        view: &V,
        source: VertexId,
    ) -> ShortestPathTree {
        let _ = self.distances(view, source);
        ShortestPathTree {
            source,
            dist: self.dist.clone(),
            parent: self.parent.clone(),
        }
    }

    /// Like [`DijkstraScratch::shortest_path_tree`] but returning a borrow
    /// of the scratch's distance array instead of cloning it into an owned
    /// tree — the form bulk consumers (the spanner verifier, broken-pair
    /// detection) use when they only need distances. The slice is valid
    /// until the next run; distances are identical to
    /// [`dijkstra_distances`] (the Dial lane's are bit-identical by the
    /// argument in the type docs).
    pub fn distances<V: GraphView>(&mut self, view: &V, source: VertexId) -> &[f64] {
        let n = view.vertex_count();
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.parent.clear();
        self.parent.resize(n, None);
        if view.contains_vertex(source) {
            if view.unit_weighted() {
                self.run_dial(view, source);
            } else {
                self.run_dijkstra(view, source);
            }
        }
        &self.dist
    }

    /// The Dial lane: with every weight exactly 1 the bucket queue has one
    /// live bucket per frontier level, i.e. a FIFO — every vertex settles on
    /// first discovery at distance `parent + 1.0` (an exact small-integer
    /// `f64`, so the sums match the heap lane's).
    fn run_dial<V: GraphView>(&mut self, view: &V, source: VertexId) {
        self.bucket.clear();
        self.dist[source.index()] = 0.0;
        self.bucket.push_back(source);
        while let Some(u) = self.bucket.pop_front() {
            let du = self.dist[u.index()];
            for (nbr, _) in view.neighbors(u) {
                let slot = &mut self.dist[nbr.index()];
                if slot.is_infinite() {
                    *slot = du + 1.0;
                    self.parent[nbr.index()] = Some(u);
                    self.bucket.push_back(nbr);
                }
            }
        }
    }

    /// The general lane: binary-heap Dijkstra with a settled bitmap.
    fn run_dijkstra<V: GraphView>(&mut self, view: &V, source: VertexId) {
        let n = view.vertex_count();
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
        self.dist[source.index()] = 0.0;
        self.heap.push(HeapEntry {
            distance: 0.0,
            vertex: source,
        });
        while let Some(HeapEntry { distance, vertex }) = self.heap.pop() {
            if self.settled[vertex.index()] {
                continue;
            }
            self.settled[vertex.index()] = true;
            for (nbr, e) in view.neighbors(vertex) {
                let cand = distance + view.edge_weight(e);
                if cand < self.dist[nbr.index()] {
                    self.dist[nbr.index()] = cand;
                    self.parent[nbr.index()] = Some(vertex);
                    self.heap.push(HeapEntry {
                        distance: cand,
                        vertex: nbr,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vid, FaultView, Graph};

    fn weighted_square() -> Graph {
        // 0 --1.0-- 1
        // |         |
        // 4.0      1.0
        // |         |
        // 3 --1.0-- 2
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 0, 4.0);
        g
    }

    #[test]
    fn distances_prefer_lower_weight_route() {
        let g = weighted_square();
        let dist = dijkstra_distances(&g, vid(0));
        assert_eq!(dist[0], 0.0);
        assert_eq!(dist[1], 1.0);
        assert_eq!(dist[2], 2.0);
        assert_eq!(dist[3], 3.0); // via 1-2-3, not the weight-4 edge
    }

    #[test]
    fn unreachable_is_infinite_and_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let dist = dijkstra_distances(&g, vid(0));
        assert!(dist[2].is_infinite());
        assert_eq!(weighted_distance(&g, vid(0), vid(2)), None);
    }

    #[test]
    fn faulted_endpoint_yields_none() {
        let g = weighted_square();
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(1));
        assert_eq!(weighted_distance(&view, vid(0), vid(1)), None);
        // Distance 0 -> 2 must now go around through 3.
        assert_eq!(weighted_distance(&view, vid(0), vid(2)), Some(5.0));
    }

    #[test]
    fn path_reconstruction_matches_distance() {
        let g = weighted_square();
        let (w, path) = shortest_weighted_path(&g, vid(0), vid(3)).unwrap();
        assert_eq!(w, 3.0);
        assert_eq!(path, vec![vid(0), vid(1), vid(2), vid(3)]);
    }

    #[test]
    fn path_to_self_is_trivial() {
        let g = weighted_square();
        let (w, path) = shortest_weighted_path(&g, vid(2), vid(2)).unwrap();
        assert_eq!(w, 0.0);
        assert_eq!(path, vec![vid(2)]);
    }

    #[test]
    fn dijkstra_agrees_with_bfs_on_unit_weights() {
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)] {
            g.add_unit_edge(u, v);
        }
        let bfs = crate::bfs::bfs_hop_distances(&g, vid(0));
        let dij = dijkstra_distances(&g, vid(0));
        for v in 0..6 {
            assert_eq!(bfs[v].map(f64::from), Some(dij[v]));
        }
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 0.0);
        let dist = dijkstra_distances(&g, vid(0));
        assert_eq!(dist[2], 0.0);
    }

    #[test]
    fn scratch_tree_matches_one_shot_functions() {
        let g = weighted_square();
        let mut scratch = DijkstraScratch::with_capacity(4);
        let tree = scratch.shortest_path_tree(&g, vid(0));
        let dist = dijkstra_distances(&g, vid(0));
        for (v, &expected) in dist.iter().enumerate() {
            assert_eq!(tree.distances()[v], expected);
            assert_eq!(tree.distance_to(vid(v)), Some(expected));
        }
        let (w, path) = shortest_weighted_path(&g, vid(0), vid(3)).unwrap();
        assert_eq!(tree.distance_to(vid(3)), Some(w));
        assert_eq!(tree.path_to(vid(3)).unwrap(), path);
        assert_eq!(tree.source(), vid(0));
        assert_eq!(tree.vertex_count(), 4);
    }

    #[test]
    fn scratch_is_reusable_across_views_and_sizes() {
        let g = weighted_square();
        let mut scratch = DijkstraScratch::new();
        let full = scratch.shortest_path_tree(&g, vid(0));
        assert_eq!(full.distance_to(vid(2)), Some(2.0));

        let mut view = FaultView::new(&g);
        view.block_vertex(vid(1));
        let faulted = scratch.shortest_path_tree(&view, vid(0));
        assert_eq!(faulted.distance_to(vid(2)), Some(5.0));
        assert_eq!(faulted.distance_to(vid(1)), None);
        assert!(faulted.path_to(vid(1)).is_none());

        // A bigger graph afterwards: buffers must regrow correctly.
        let mut big = Graph::new(10);
        for i in 0..9 {
            big.add_edge(i, i + 1, 1.0);
        }
        let chain = scratch.shortest_path_tree(&big, vid(0));
        assert_eq!(chain.distance_to(vid(9)), Some(9.0));
        assert_eq!(chain.path_to(vid(9)).unwrap().len(), 10);
    }

    #[test]
    fn scratch_tree_from_faulted_source_is_empty() {
        let g = weighted_square();
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(0));
        let tree = DijkstraScratch::new().shortest_path_tree(&view, vid(0));
        for v in 0..4 {
            assert_eq!(tree.distance_to(vid(v)), None);
        }
    }

    #[test]
    fn dial_lane_matches_heap_distances_on_unit_graphs() {
        // A unit-weight graph takes the bucket-queue lane; distances must be
        // bit-identical to the heap lane (forced here by a FaultView over a
        // graph whose flag we break with a weight-1.0-but-general instance:
        // compare against the one-shot heap implementation instead).
        let mut g = Graph::new(8);
        for (u, v) in [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (1, 6),
            (6, 7),
            (2, 7),
        ] {
            g.add_unit_edge(u, v);
        }
        assert!(g.is_unit_weighted());
        let mut scratch = DijkstraScratch::new();
        let tree = scratch.shortest_path_tree(&g, vid(0));
        let heap_dist = dijkstra_distances(&g, vid(0));
        assert_eq!(tree.distances(), &heap_dist[..]);

        // Same under faults: the view inherits the unit-weight flag.
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(1));
        let tree = scratch.shortest_path_tree(&view, vid(0));
        let heap_dist = dijkstra_distances(&view, vid(0));
        assert_eq!(tree.distances(), &heap_dist[..]);
        // Paths from the Dial lane are valid shortest walks.
        let p = tree.path_to(vid(3)).expect("reachable around the fault");
        assert_eq!(p.first(), Some(&vid(0)));
        assert_eq!(p.last(), Some(&vid(3)));
        assert_eq!((p.len() - 1) as f64, tree.distance_to(vid(3)).unwrap());
    }

    #[test]
    fn heap_entry_ordering_is_a_min_heap() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            distance: 3.0,
            vertex: vid(0),
        });
        heap.push(HeapEntry {
            distance: 1.0,
            vertex: vid(1),
        });
        heap.push(HeapEntry {
            distance: 2.0,
            vertex: vid(2),
        });
        assert_eq!(heap.pop().unwrap().distance, 1.0);
        assert_eq!(heap.pop().unwrap().distance, 2.0);
        assert_eq!(heap.pop().unwrap().distance, 3.0);
    }
}
