//! Zero-copy views of a graph with a set of vertices and/or edges removed.
//!
//! Fault-tolerant spanner algorithms constantly ask questions about `G \ F`
//! for many different fault sets `F`. Copying the graph for each query would
//! dominate the running time, so instead the traversal algorithms in this
//! crate are generic over [`GraphView`], and [`FaultView`] implements that
//! trait by filtering a borrowed [`Graph`] through cheap membership bitmaps.

use crate::bfs::BfsScratch;
use crate::{EdgeId, Graph, IdRemap, VertexId};

/// Read-only access to an undirected graph, possibly with faults applied.
///
/// All traversal algorithms ([`bfs`](crate::bfs), [`dijkstra`](crate::dijkstra),
/// connectivity, girth) are generic over this trait so that they can run on a
/// full [`Graph`] or on a [`FaultView`] without copying.
pub trait GraphView {
    /// Total size of the vertex identifier space (including faulted vertices).
    fn vertex_count(&self) -> usize;

    /// Returns `true` if vertex `v` is present (not faulted).
    fn contains_vertex(&self, v: VertexId) -> bool;

    /// Returns `true` if edge `e` is present: not faulted itself and neither
    /// endpoint faulted.
    fn contains_edge(&self, e: EdgeId) -> bool;

    /// Iterates over the live `(neighbor, edge)` pairs of `v`.
    ///
    /// If `v` itself is faulted the iterator is empty.
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_;

    /// Weight of edge `e` in the underlying graph.
    fn edge_weight(&self, e: EdgeId) -> f64;

    /// Endpoints of edge `e` in the underlying graph.
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId);

    /// Returns `true` when every edge of the underlying graph has weight
    /// exactly 1. Traversals use this to take the bucket-queue (Dial)
    /// shortest-path lane, which on unit weights degenerates to BFS and
    /// produces bit-identical distances to Dijkstra without a heap. The
    /// default is conservative: `false`.
    fn unit_weighted(&self) -> bool {
        false
    }

    /// Number of live vertices.
    fn live_vertex_count(&self) -> usize {
        (0..self.vertex_count())
            .filter(|&i| self.contains_vertex(VertexId::new(i)))
            .count()
    }
}

impl GraphView for Graph {
    #[inline]
    fn vertex_count(&self) -> usize {
        Graph::vertex_count(self)
    }

    #[inline]
    fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < Graph::vertex_count(self)
    }

    #[inline]
    fn contains_edge(&self, e: EdgeId) -> bool {
        e.index() < self.edge_count()
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        Graph::neighbors(self, v)
    }

    #[inline]
    fn edge_weight(&self, e: EdgeId) -> f64 {
        self.weight(e)
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edge(e).endpoints()
    }

    #[inline]
    fn unit_weighted(&self) -> bool {
        self.is_unit_weighted()
    }

    #[inline]
    fn live_vertex_count(&self) -> usize {
        Graph::vertex_count(self)
    }
}

impl<T: GraphView + ?Sized> GraphView for &T {
    #[inline]
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }

    #[inline]
    fn contains_vertex(&self, v: VertexId) -> bool {
        (**self).contains_vertex(v)
    }

    #[inline]
    fn contains_edge(&self, e: EdgeId) -> bool {
        (**self).contains_edge(e)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        (**self).neighbors(v)
    }

    #[inline]
    fn edge_weight(&self, e: EdgeId) -> f64 {
        (**self).edge_weight(e)
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        (**self).edge_endpoints(e)
    }

    #[inline]
    fn unit_weighted(&self) -> bool {
        (**self).unit_weighted()
    }

    #[inline]
    fn live_vertex_count(&self) -> usize {
        (**self).live_vertex_count()
    }
}

/// A view of `G \ F` for a mutable fault set `F` of vertices and/or edges.
///
/// The view borrows the underlying graph and maintains two bitmaps, so
/// blocking or unblocking an element is `O(1)` and the view itself costs
/// `O(n + m)` bits to create. The fault set can be grown incrementally, which
/// is exactly the access pattern of the Length-Bounded Cut approximation
/// (Algorithm 2 of the paper): repeatedly find a short path, block all its
/// interior vertices, repeat.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{vid, FaultView, Graph, GraphView};
///
/// let mut g = Graph::new(4);
/// g.add_unit_edge(0, 1);
/// g.add_unit_edge(1, 2);
/// g.add_unit_edge(2, 3);
/// let mut view = FaultView::new(&g);
/// assert!(view.contains_vertex(vid(1)));
/// view.block_vertex(vid(1));
/// assert!(!view.contains_vertex(vid(1)));
/// // Edge {0,1} is gone because an endpoint is faulted.
/// assert_eq!(view.neighbors(vid(0)).count(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct FaultView<'g> {
    graph: &'g Graph,
    vertex_blocked: Vec<bool>,
    edge_blocked: Vec<bool>,
    blocked_vertex_count: usize,
    blocked_edge_count: usize,
    namespace: u64,
    fingerprint: u64,
}

/// Domain-separation tags mixed into the [`FaultView::fingerprint`] so a
/// blocked vertex and a blocked edge with the same index hash differently,
/// and so a namespace qualifier can never cancel against either.
const VERTEX_FINGERPRINT_TAG: u64 = 0x9E6C_63D0_76CC_4311;
const EDGE_FINGERPRINT_TAG: u64 = 0x5851_F42D_4C95_7F2D;
const NAMESPACE_FINGERPRINT_TAG: u64 = 0xA24B_AED4_963E_E407;

/// SplitMix64 finalizer, used to spread fault element ids over 64 bits.
#[inline]
fn mix64(tag: u64, value: u64) -> u64 {
    let mut z = tag ^ value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn mix_fingerprint(tag: u64, index: usize) -> u64 {
    mix64(tag, index as u64)
}

/// The fingerprint contribution of a namespace qualifier: `0` for the default
/// namespace `0`, a SplitMix64 hash otherwise.
///
/// Fault fingerprints are computed over *local* element indices, so two
/// different regions (for example two shards of a sharded oracle) holding
/// identical local fault patterns would collide. Namespacing folds a
/// region-unique qualifier into the fingerprint so cached `G \ F` artifacts
/// can never be confused across regions. Namespace `0` is the global
/// namespace and leaves every existing fingerprint unchanged.
#[inline]
#[must_use]
pub fn namespace_fingerprint(namespace: u64) -> u64 {
    if namespace == 0 {
        0
    } else {
        mix64(NAMESPACE_FINGERPRINT_TAG, namespace)
    }
}

/// Like [`fault_fingerprint`] but qualified by a namespace (see
/// [`namespace_fingerprint`]). `fault_fingerprint_namespaced(0, ..)` equals
/// `fault_fingerprint(..)`.
#[must_use]
pub fn fault_fingerprint_namespaced<VI, EI>(namespace: u64, vertices: VI, edges: EI) -> u64
where
    VI: IntoIterator<Item = VertexId>,
    EI: IntoIterator<Item = EdgeId>,
{
    namespace_fingerprint(namespace) ^ fault_fingerprint(vertices, edges)
}

/// Computes the fingerprint a [`FaultView`] would report after blocking
/// exactly the given vertices and edges, without building the view.
///
/// Caching layers key "`G \ F` artifacts" by fault set; this lets them derive
/// the key in `O(|F|)` straight from the fault lists while staying consistent
/// with [`FaultView::fingerprint`]. Duplicate elements must not be passed
/// (XOR would cancel them out).
#[must_use]
pub fn fault_fingerprint<VI, EI>(vertices: VI, edges: EI) -> u64
where
    VI: IntoIterator<Item = VertexId>,
    EI: IntoIterator<Item = EdgeId>,
{
    let mut fp = 0u64;
    for v in vertices {
        fp ^= mix_fingerprint(VERTEX_FINGERPRINT_TAG, v.index());
    }
    for e in edges {
        fp ^= mix_fingerprint(EDGE_FINGERPRINT_TAG, e.index());
    }
    fp
}

impl<'g> FaultView<'g> {
    /// Creates a view with an empty fault set in the global namespace `0`.
    #[must_use]
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_namespace(graph, 0)
    }

    /// Creates a view with an empty fault set whose fingerprints are
    /// qualified by `namespace` (see [`namespace_fingerprint`]).
    ///
    /// Views over remapped regions (shards) must use a region-unique
    /// namespace: their local element indices overlap, so unqualified
    /// fingerprints of identical local fault patterns would collide across
    /// regions.
    #[must_use]
    pub fn with_namespace(graph: &'g Graph, namespace: u64) -> Self {
        Self {
            graph,
            vertex_blocked: vec![false; graph.vertex_count()],
            edge_blocked: vec![false; graph.edge_count()],
            blocked_vertex_count: 0,
            blocked_edge_count: 0,
            namespace,
            fingerprint: namespace_fingerprint(namespace),
        }
    }

    /// The namespace qualifier this view folds into its fingerprint.
    #[inline]
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// Creates a view with the given vertices already blocked.
    #[must_use]
    pub fn with_blocked_vertices<I>(graph: &'g Graph, vertices: I) -> Self
    where
        I: IntoIterator<Item = VertexId>,
    {
        let mut view = Self::new(graph);
        for v in vertices {
            view.block_vertex(v);
        }
        view
    }

    /// Creates a view with the given edges already blocked.
    #[must_use]
    pub fn with_blocked_edges<I>(graph: &'g Graph, edges: I) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let mut view = Self::new(graph);
        for e in edges {
            view.block_edge(e);
        }
        view
    }

    /// The underlying graph.
    #[inline]
    #[must_use]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Blocks (removes) vertex `v`. Blocking an already-blocked vertex is a
    /// no-op. Returns `true` if the vertex was newly blocked.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the underlying graph.
    pub fn block_vertex(&mut self, v: VertexId) -> bool {
        let slot = &mut self.vertex_blocked[v.index()];
        if *slot {
            false
        } else {
            *slot = true;
            self.blocked_vertex_count += 1;
            self.fingerprint ^= mix_fingerprint(VERTEX_FINGERPRINT_TAG, v.index());
            true
        }
    }

    /// Unblocks vertex `v`. Returns `true` if the vertex had been blocked.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the underlying graph.
    pub fn unblock_vertex(&mut self, v: VertexId) -> bool {
        let slot = &mut self.vertex_blocked[v.index()];
        if *slot {
            *slot = false;
            self.blocked_vertex_count -= 1;
            self.fingerprint ^= mix_fingerprint(VERTEX_FINGERPRINT_TAG, v.index());
            true
        } else {
            false
        }
    }

    /// Blocks (removes) edge `e`. Returns `true` if the edge was newly blocked.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the underlying graph.
    pub fn block_edge(&mut self, e: EdgeId) -> bool {
        let slot = &mut self.edge_blocked[e.index()];
        if *slot {
            false
        } else {
            *slot = true;
            self.blocked_edge_count += 1;
            self.fingerprint ^= mix_fingerprint(EDGE_FINGERPRINT_TAG, e.index());
            true
        }
    }

    /// Unblocks edge `e`. Returns `true` if the edge had been blocked.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the underlying graph.
    pub fn unblock_edge(&mut self, e: EdgeId) -> bool {
        let slot = &mut self.edge_blocked[e.index()];
        if *slot {
            *slot = false;
            self.blocked_edge_count -= 1;
            self.fingerprint ^= mix_fingerprint(EDGE_FINGERPRINT_TAG, e.index());
            true
        } else {
            false
        }
    }

    /// Removes all faults, restoring the full graph (the namespace is kept).
    pub fn clear(&mut self) {
        self.vertex_blocked.fill(false);
        self.edge_blocked.fill(false);
        self.blocked_vertex_count = 0;
        self.blocked_edge_count = 0;
        self.fingerprint = namespace_fingerprint(self.namespace);
    }

    /// A 64-bit fingerprint of the current fault set, maintained in `O(1)`
    /// per block/unblock operation.
    ///
    /// The fingerprint is an XOR of per-element SplitMix64 hashes, so it is
    /// independent of the order in which faults were applied and returns to
    /// its previous value when a fault is lifted; two views over the same
    /// graph with equal fault sets always share a fingerprint. Caching layers
    /// use it as a cheap first-level key for "`G \ F` artifacts" (for
    /// example per-fault-set shortest-path trees) without materializing or
    /// sorting the fault set on every lookup. As with any 64-bit hash,
    /// distinct fault sets can collide with probability `~2⁻⁶⁴`; exact caches
    /// must confirm equality on the full fault set after a fingerprint hit.
    #[inline]
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of currently blocked vertices.
    #[inline]
    #[must_use]
    pub fn blocked_vertex_count(&self) -> usize {
        self.blocked_vertex_count
    }

    /// Number of currently blocked edges.
    #[inline]
    #[must_use]
    pub fn blocked_edge_count(&self) -> usize {
        self.blocked_edge_count
    }

    /// Returns `true` if vertex `v` is blocked.
    #[inline]
    #[must_use]
    pub fn is_vertex_blocked(&self, v: VertexId) -> bool {
        self.vertex_blocked[v.index()]
    }

    /// Returns `true` if edge `e` is blocked (directly, not via endpoints).
    #[inline]
    #[must_use]
    pub fn is_edge_blocked(&self, e: EdgeId) -> bool {
        self.edge_blocked[e.index()]
    }

    /// Iterates over the currently blocked vertices.
    pub fn blocked_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_blocked
            .iter()
            .enumerate()
            .filter(|&(_i, &b)| b)
            .map(|(i, &_b)| VertexId::new(i))
    }

    /// Iterates over the currently blocked edges.
    pub fn blocked_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edge_blocked
            .iter()
            .enumerate()
            .filter(|&(_i, &b)| b)
            .map(|(i, &_b)| EdgeId::new(i))
    }
}

impl GraphView for FaultView<'_> {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    #[inline]
    fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.graph.vertex_count() && !self.vertex_blocked[v.index()]
    }

    #[inline]
    fn contains_edge(&self, e: EdgeId) -> bool {
        if e.index() >= self.graph.edge_count() || self.edge_blocked[e.index()] {
            return false;
        }
        let (u, v) = self.graph.edge(e).endpoints();
        !self.vertex_blocked[u.index()] && !self.vertex_blocked[v.index()]
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let blocked_self = self.vertex_blocked[v.index()];
        self.graph.neighbors(v).filter(move |&(nbr, e)| {
            !blocked_self && !self.vertex_blocked[nbr.index()] && !self.edge_blocked[e.index()]
        })
    }

    #[inline]
    fn edge_weight(&self, e: EdgeId) -> f64 {
        self.graph.weight(e)
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.graph.edge(e).endpoints()
    }

    #[inline]
    fn unit_weighted(&self) -> bool {
        self.graph.is_unit_weighted()
    }

    #[inline]
    fn live_vertex_count(&self) -> usize {
        self.graph.vertex_count() - self.blocked_vertex_count
    }
}

/// Pooled storage for short-lived fault views.
///
/// [`FaultView::new`] allocates two bitmaps sized by the graph — fine for a
/// long-lived view, but the Length-Bounded Cut decision builds a fresh view
/// *per candidate edge*, thousands of times per repair wave. A
/// `FaultScratch` keeps epoch-stamped marks ([`crate::EpochMarks`]) alive
/// across those views: starting a new view ([`FaultScratch::view`]) bumps
/// the epoch instead of clearing, so view setup is `O(1)` after the first
/// use on a graph size.
///
/// The produced [`ScratchFaultView`] filters traversal exactly like a
/// [`FaultView`] with the same blocked set, so algorithms generic over
/// [`GraphView`] behave identically on either.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{vid, FaultScratch, Graph, GraphView};
///
/// let mut g = Graph::new(3);
/// g.add_unit_edge(0, 1);
/// g.add_unit_edge(1, 2);
/// let mut scratch = FaultScratch::new();
/// let mut view = scratch.view(&g);
/// view.block_vertex(vid(1));
/// assert_eq!(view.neighbors(vid(0)).count(), 0);
/// // The next view starts empty again, without touching the marks.
/// let view = scratch.view(&g);
/// assert_eq!(view.neighbors(vid(0)).count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultScratch {
    vertices: crate::EpochMarks,
    edges: crate::EpochMarks,
    blocked_vertices: usize,
}

impl FaultScratch {
    /// Creates an empty scratch; the marks grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh, empty fault view over `graph`, reusing the pooled
    /// marks (`O(1)` apart from growing them the first time a larger graph
    /// is seen).
    pub fn view<'s, 'g>(&'s mut self, graph: &'g Graph) -> ScratchFaultView<'s, 'g> {
        self.vertices.begin(graph.vertex_count());
        self.edges.begin(graph.edge_count());
        self.blocked_vertices = 0;
        ScratchFaultView { graph, marks: self }
    }
}

/// A borrowed fault view over pooled [`FaultScratch`] marks.
///
/// Supports the same grow-only blocking operations the Length-Bounded Cut
/// decision needs ([`ScratchFaultView::block_vertex`],
/// [`ScratchFaultView::block_edge`]) and implements [`GraphView`] with the
/// same filtering semantics as [`FaultView`]. Dropping the view leaves the
/// marks in the scratch for the next one.
#[derive(Debug)]
pub struct ScratchFaultView<'s, 'g> {
    graph: &'g Graph,
    marks: &'s mut FaultScratch,
}

impl ScratchFaultView<'_, '_> {
    /// The underlying graph.
    #[inline]
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Blocks (removes) vertex `v`. Returns `true` if newly blocked.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the underlying graph.
    pub fn block_vertex(&mut self, v: VertexId) -> bool {
        assert!(v.index() < self.graph.vertex_count(), "vertex out of range");
        let newly = self.marks.vertices.set(v.index());
        self.marks.blocked_vertices += usize::from(newly);
        newly
    }

    /// Blocks (removes) edge `e`. Returns `true` if newly blocked.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the underlying graph.
    pub fn block_edge(&mut self, e: EdgeId) -> bool {
        assert!(e.index() < self.graph.edge_count(), "edge out of range");
        self.marks.edges.set(e.index())
    }

    /// Returns `true` if vertex `v` is blocked.
    #[inline]
    #[must_use]
    pub fn is_vertex_blocked(&self, v: VertexId) -> bool {
        self.marks.vertices.is_set(v.index())
    }

    /// Returns `true` if edge `e` is blocked (directly, not via endpoints).
    #[inline]
    #[must_use]
    pub fn is_edge_blocked(&self, e: EdgeId) -> bool {
        self.marks.edges.is_set(e.index())
    }
}

impl GraphView for ScratchFaultView<'_, '_> {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    #[inline]
    fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.graph.vertex_count() && !self.is_vertex_blocked(v)
    }

    #[inline]
    fn contains_edge(&self, e: EdgeId) -> bool {
        if e.index() >= self.graph.edge_count() || self.is_edge_blocked(e) {
            return false;
        }
        let (u, v) = self.graph.edge(e).endpoints();
        !self.is_vertex_blocked(u) && !self.is_vertex_blocked(v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let blocked_self = self.is_vertex_blocked(v);
        self.graph.neighbors(v).filter(move |&(nbr, e)| {
            !blocked_self && !self.is_vertex_blocked(nbr) && !self.is_edge_blocked(e)
        })
    }

    #[inline]
    fn edge_weight(&self, e: EdgeId) -> f64 {
        self.graph.weight(e)
    }

    #[inline]
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.graph.edge(e).endpoints()
    }

    #[inline]
    fn unit_weighted(&self) -> bool {
        self.graph.is_unit_weighted()
    }

    #[inline]
    fn live_vertex_count(&self) -> usize {
        self.graph.vertex_count() - self.marks.blocked_vertices
    }
}

/// Region extraction: induced subgraphs with a halo, the building block of
/// sharded serving. A *region* is a vertex subset (a shard's core) expanded
/// by every vertex within a hop radius (the halo), re-indexed densely via
/// [`IdRemap`] so per-region data structures stay compact.
impl Graph {
    /// All vertices within `radius` hops of any core vertex — the core plus
    /// its halo — in ascending global id order (so downstream local ids are
    /// deterministic). Out-of-range core vertices are ignored.
    #[must_use]
    pub fn halo_members(&self, core: &[VertexId], radius: u32) -> Vec<VertexId> {
        let mut scratch = BfsScratch::new();
        self.halo_members_with(&mut scratch, core, radius)
    }

    /// Like [`Graph::halo_members`] but reusing caller-owned BFS buffers —
    /// the form repair fan-outs use when they extract one region per shard
    /// in a loop.
    #[must_use]
    pub fn halo_members_with(
        &self,
        scratch: &mut BfsScratch,
        core: &[VertexId],
        radius: u32,
    ) -> Vec<VertexId> {
        let dist = scratch.multi_source_hop_distances(self, core.iter().copied(), radius);
        dist.iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(i, _)| VertexId::new(i))
            .collect()
    }

    /// Builds the induced subgraph on the given members together with the
    /// local↔global id mapping. Duplicate members keep their first position;
    /// local ids follow member order.
    ///
    /// # Panics
    ///
    /// Panics if any member is out of range.
    #[must_use]
    pub fn induced_subgraph_remap(&self, members: &[VertexId]) -> (Graph, IdRemap) {
        let (sub, original_of) = self.induced_subgraph(members);
        let remap = IdRemap::from_members(self.vertex_count(), &original_of);
        (sub, remap)
    }

    /// Builds the induced subgraph on `core` plus its hop-`radius` halo,
    /// together with the id mapping: the region a shard serves locally. A
    /// disconnected core vertex still belongs to its own region.
    #[must_use]
    pub fn induced_subgraph_with_halo(&self, core: &[VertexId], radius: u32) -> (Graph, IdRemap) {
        let members = self.halo_members(core, radius);
        self.induced_subgraph_remap(&members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vid;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_unit_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn graph_implements_view_faithfully() {
        let g = cycle(5);
        assert_eq!(GraphView::vertex_count(&g), 5);
        assert_eq!(g.live_vertex_count(), 5);
        assert!(g.contains_vertex(vid(4)));
        assert!(!g.contains_vertex(vid(5)));
        assert_eq!(GraphView::neighbors(&g, vid(0)).count(), 2);
    }

    #[test]
    fn blocking_vertex_hides_incident_edges() {
        let g = cycle(4);
        let mut view = FaultView::new(&g);
        assert_eq!(view.neighbors(vid(0)).count(), 2);
        view.block_vertex(vid(1));
        let nbrs: Vec<_> = view.neighbors(vid(0)).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![vid(3)]);
        assert_eq!(view.live_vertex_count(), 3);
        assert!(!view.contains_vertex(vid(1)));
        // Neighbors of a blocked vertex are empty.
        assert_eq!(view.neighbors(vid(1)).count(), 0);
    }

    #[test]
    fn blocking_edge_hides_only_that_edge() {
        let g = cycle(4);
        let e01 = g.edge_between(vid(0), vid(1)).unwrap();
        let mut view = FaultView::new(&g);
        view.block_edge(e01);
        assert!(!view.contains_edge(e01));
        let nbrs: Vec<_> = view.neighbors(vid(0)).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![vid(3)]);
        // Vertex 1 is still live and sees vertex 2.
        assert!(view.contains_vertex(vid(1)));
        let nbrs: Vec<_> = view.neighbors(vid(1)).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![vid(2)]);
    }

    #[test]
    fn block_and_unblock_round_trip() {
        let g = cycle(4);
        let mut view = FaultView::new(&g);
        assert!(view.block_vertex(vid(2)));
        assert!(!view.block_vertex(vid(2)));
        assert_eq!(view.blocked_vertex_count(), 1);
        assert!(view.unblock_vertex(vid(2)));
        assert!(!view.unblock_vertex(vid(2)));
        assert_eq!(view.blocked_vertex_count(), 0);
        assert_eq!(view.neighbors(vid(1)).count(), 2);

        let e = g.edge_between(vid(0), vid(1)).unwrap();
        assert!(view.block_edge(e));
        assert!(!view.block_edge(e));
        assert_eq!(view.blocked_edge_count(), 1);
        assert!(view.unblock_edge(e));
        assert_eq!(view.blocked_edge_count(), 0);
    }

    #[test]
    fn clear_restores_full_graph() {
        let g = cycle(6);
        let mut view = FaultView::with_blocked_vertices(&g, [vid(0), vid(3)]);
        view.block_edge(g.edge_between(vid(1), vid(2)).unwrap());
        assert_eq!(view.live_vertex_count(), 4);
        view.clear();
        assert_eq!(view.live_vertex_count(), 6);
        assert_eq!(view.blocked_edge_count(), 0);
        assert_eq!(view.neighbors(vid(1)).count(), 2);
    }

    #[test]
    fn constructors_with_initial_faults() {
        let g = cycle(5);
        let view = FaultView::with_blocked_vertices(&g, [vid(1), vid(2)]);
        assert_eq!(view.blocked_vertex_count(), 2);
        let blocked: Vec<_> = view.blocked_vertices().collect();
        assert_eq!(blocked, vec![vid(1), vid(2)]);

        let e0 = g.edge_between(vid(0), vid(1)).unwrap();
        let view = FaultView::with_blocked_edges(&g, [e0]);
        assert_eq!(view.blocked_edge_count(), 1);
        let blocked: Vec<_> = view.blocked_edges().collect();
        assert_eq!(blocked, vec![e0]);
    }

    #[test]
    fn contains_edge_accounts_for_blocked_endpoints() {
        let g = cycle(4);
        let e01 = g.edge_between(vid(0), vid(1)).unwrap();
        let mut view = FaultView::new(&g);
        assert!(view.contains_edge(e01));
        view.block_vertex(vid(0));
        assert!(!view.contains_edge(e01));
    }

    #[test]
    fn fingerprint_is_order_independent_and_reversible() {
        let g = cycle(6);
        let mut a = FaultView::new(&g);
        let mut b = FaultView::new(&g);
        assert_eq!(a.fingerprint(), 0);
        a.block_vertex(vid(1));
        a.block_vertex(vid(4));
        b.block_vertex(vid(4));
        b.block_vertex(vid(1));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), 0);
        // Lifting one fault returns to the single-fault fingerprint.
        let mut single = FaultView::new(&g);
        single.block_vertex(vid(1));
        a.unblock_vertex(vid(4));
        assert_eq!(a.fingerprint(), single.fingerprint());
        // Re-blocking an already blocked element must not change anything.
        a.block_vertex(vid(1));
        assert_eq!(a.fingerprint(), single.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_vertex_and_edge_faults() {
        let g = cycle(5);
        let mut by_vertex = FaultView::new(&g);
        by_vertex.block_vertex(vid(2));
        let mut by_edge = FaultView::new(&g);
        by_edge.block_edge(crate::eid(2));
        assert_ne!(by_vertex.fingerprint(), by_edge.fingerprint());
    }

    #[test]
    fn standalone_fault_fingerprint_matches_view() {
        let g = cycle(6);
        let e = g.edge_between(vid(2), vid(3)).unwrap();
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(5));
        view.block_vertex(vid(1));
        view.block_edge(e);
        assert_eq!(view.fingerprint(), fault_fingerprint([vid(1), vid(5)], [e]));
        assert_eq!(fault_fingerprint([], []), 0);
    }

    #[test]
    fn fingerprint_resets_on_clear() {
        let g = cycle(5);
        let mut view = FaultView::with_blocked_vertices(&g, [vid(0), vid(2)]);
        view.block_edge(g.edge_between(vid(3), vid(4)).unwrap());
        assert_ne!(view.fingerprint(), 0);
        view.clear();
        assert_eq!(view.fingerprint(), 0);
    }

    #[test]
    fn namespaced_views_with_equal_faults_have_distinct_fingerprints() {
        let g = cycle(6);
        let mut a = FaultView::with_namespace(&g, 1);
        let mut b = FaultView::with_namespace(&g, 2);
        assert_eq!(a.namespace(), 1);
        assert_ne!(a.fingerprint(), b.fingerprint(), "empty sets must differ");
        a.block_vertex(vid(3));
        b.block_vertex(vid(3));
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "identical local fault patterns in different namespaces must not collide"
        );
        // Clearing returns to the namespace's base fingerprint, not to 0.
        let base = FaultView::with_namespace(&g, 1).fingerprint();
        a.clear();
        assert_eq!(a.fingerprint(), base);
        assert_ne!(base, 0);
    }

    #[test]
    fn namespace_zero_matches_unnamespaced_fingerprints() {
        let g = cycle(5);
        let mut plain = FaultView::new(&g);
        let mut zero = FaultView::with_namespace(&g, 0);
        plain.block_vertex(vid(2));
        zero.block_vertex(vid(2));
        assert_eq!(plain.fingerprint(), zero.fingerprint());
        assert_eq!(
            fault_fingerprint_namespaced(0, [vid(2)], []),
            fault_fingerprint([vid(2)], [])
        );
        assert_eq!(
            fault_fingerprint_namespaced(7, [vid(2)], []),
            namespace_fingerprint(7) ^ fault_fingerprint([vid(2)], [])
        );
    }

    #[test]
    fn halo_members_grow_with_radius_and_include_the_core() {
        let g = {
            let mut g = Graph::new(8);
            for i in 0..7 {
                g.add_unit_edge(i, i + 1);
            }
            g
        };
        assert_eq!(g.halo_members(&[vid(3)], 0), vec![vid(3)]);
        assert_eq!(
            g.halo_members(&[vid(3)], 2),
            vec![vid(1), vid(2), vid(3), vid(4), vid(5)]
        );
        // Out-of-range cores are tolerated.
        assert_eq!(g.halo_members(&[vid(99)], 3), Vec::<VertexId>::new());
    }

    #[test]
    fn induced_subgraph_with_halo_keeps_weights_and_mapping() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 5, 1.0);
        let (sub, remap) = g.induced_subgraph_with_halo(&[vid(1)], 1);
        assert_eq!(remap.members(), &[vid(0), vid(1), vid(2)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        let e = sub
            .edge_between(
                remap.to_local(vid(1)).unwrap(),
                remap.to_local(vid(2)).unwrap(),
            )
            .unwrap();
        assert_eq!(sub.weight(e), 3.0);
        // Plain remapped induction on an explicit member list agrees.
        let (sub2, remap2) = g.induced_subgraph_remap(&[vid(0), vid(1), vid(2)]);
        assert_eq!(sub2.edge_count(), sub.edge_count());
        assert_eq!(remap2.members(), remap.members());
    }

    #[test]
    fn fault_scratch_views_filter_like_fault_views() {
        let g = cycle(6);
        let e12 = g.edge_between(vid(1), vid(2)).unwrap();
        let mut reference = FaultView::new(&g);
        reference.block_vertex(vid(0));
        reference.block_edge(e12);

        let mut scratch = FaultScratch::new();
        let mut view = scratch.view(&g);
        assert!(view.block_vertex(vid(0)));
        assert!(!view.block_vertex(vid(0)), "re-blocking reports false");
        assert!(view.block_edge(e12));
        for v in 0..6 {
            assert_eq!(
                view.contains_vertex(vid(v)),
                reference.contains_vertex(vid(v))
            );
            let a: Vec<_> = view.neighbors(vid(v)).collect();
            let b: Vec<_> = reference.neighbors(vid(v)).collect();
            assert_eq!(a, b, "neighbors of {v}");
        }
        for e in 0..g.edge_count() {
            assert_eq!(
                view.contains_edge(crate::eid(e)),
                reference.contains_edge(crate::eid(e))
            );
        }
        assert!(view.is_vertex_blocked(vid(0)));
        assert!(view.is_edge_blocked(e12));
        assert_eq!(view.live_vertex_count(), reference.live_vertex_count());
    }

    #[test]
    fn fault_scratch_epoch_clears_between_views() {
        let g = cycle(4);
        let mut scratch = FaultScratch::new();
        let mut view = scratch.view(&g);
        view.block_vertex(vid(1));
        assert!(!view.contains_vertex(vid(1)));
        // The next view starts with no faults, in O(1).
        let view = scratch.view(&g);
        assert!(view.contains_vertex(vid(1)));
        assert_eq!(view.neighbors(vid(0)).count(), 2);
        // And works on a larger graph afterwards (marks regrow).
        let big = cycle(9);
        let mut view = scratch.view(&big);
        view.block_vertex(vid(8));
        assert!(!view.contains_vertex(vid(8)));
        assert!(view.contains_vertex(vid(1)));
        assert_eq!(view.graph().vertex_count(), 9);
    }

    #[test]
    fn view_through_reference_also_works() {
        fn count_neighbors<V: GraphView>(view: V, v: VertexId) -> usize {
            view.neighbors(v).count()
        }
        let g = cycle(4);
        let view = FaultView::new(&g);
        assert_eq!(count_neighbors(&view, vid(0)), 2);
        assert_eq!(count_neighbors(&g, vid(0)), 2);
    }
}
