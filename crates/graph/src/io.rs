//! Plain-text edge-list serialization.
//!
//! The format is a line-oriented edge list compatible with the usual
//! `u v [weight]` convention used by SNAP/DIMACS-style datasets:
//!
//! ```text
//! # comment lines start with '#' or '%'
//! p 5 4          (optional header: vertex count, edge count)
//! 0 1
//! 1 2 2.5
//! ```
//!
//! Lines without a weight default to weight 1.

use std::fmt::Write as _;

use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};

/// Serializes a graph to the edge-list text format, including a `p n m`
/// header so that isolated vertices survive a round trip.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{io, Graph};
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 2.0);
/// let text = io::to_edge_list(&g);
/// let back = io::from_edge_list(&text).unwrap();
/// assert_eq!(back.vertex_count(), 3);
/// assert_eq!(back.edge_count(), 1);
/// ```
#[must_use]
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p {} {}", graph.vertex_count(), graph.edge_count());
    for (_, e) in graph.edges() {
        let (u, v) = e.endpoints();
        if (e.weight() - 1.0).abs() < f64::EPSILON {
            let _ = writeln!(out, "{} {}", u.index(), v.index());
        } else {
            let _ = writeln!(out, "{} {} {}", u.index(), v.index(), e.weight());
        }
    }
    out
}

/// Parses a graph from the edge-list text format.
///
/// Vertices referenced by edges are created automatically; a `p n m` header
/// (if present) fixes the minimum vertex count. Comment lines beginning with
/// `#` or `%` and blank lines are ignored.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines, and the usual
/// construction errors for self-loops, duplicate edges, or invalid weights.
pub fn from_edge_list(text: &str) -> Result<Graph> {
    let mut builder = GraphBuilder::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let first = tokens.next().expect("non-empty line has a first token");
        if first == "p" {
            let n: usize = parse_token(tokens.next(), lineno + 1, "vertex count")?;
            // The edge count token is optional and only used as a sanity hint.
            let _ = tokens.next();
            builder = builder.vertices(n);
            continue;
        }
        let u: usize = parse_str(first, lineno + 1, "source vertex")?;
        let v: usize = parse_token(tokens.next(), lineno + 1, "target vertex")?;
        let w: f64 = match tokens.next() {
            None => 1.0,
            Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("invalid weight '{tok}'"),
            })?,
        };
        if tokens.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "too many fields on edge line".to_owned(),
            });
        }
        builder = builder.edge(u, v, w);
    }
    builder.try_build()
}

fn parse_token<T: std::str::FromStr>(token: Option<&str>, line: usize, what: &str) -> Result<T> {
    match token {
        Some(tok) => parse_str(tok, line, what),
        None => Err(GraphError::Parse {
            line,
            message: format!("missing {what}"),
        }),
    }
}

fn parse_str<T: std::str::FromStr>(token: &str, line: usize, what: &str) -> Result<T> {
    token.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} '{token}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_structure_and_weights() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.5);
        g.add_edge(3, 4, 0.25);
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(back.vertex_count(), 5);
        assert_eq!(back.edge_count(), 3);
        for (_, e) in g.edges() {
            let (u, v) = e.endpoints();
            let id = back
                .edge_between(u, v)
                .expect("edge must survive round trip");
            assert!((back.weight(id) - e.weight()).abs() < 1e-12);
        }
    }

    #[test]
    fn header_preserves_isolated_vertices() {
        let g = Graph::new(7);
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(back.vertex_count(), 7);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\n% another comment\n0 1\n1 2 3.0\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.vertex_count(), 3);
        assert!(!g.is_unit_weighted());
    }

    #[test]
    fn missing_weight_defaults_to_one() {
        let g = from_edge_list("0 1\n").unwrap();
        assert!(g.is_unit_weighted());
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = from_edge_list("0 1\nx y\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = from_edge_list("0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = from_edge_list("0 1 2.0 extra\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = from_edge_list("0 1 notaweight\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn construction_errors_propagate() {
        assert!(from_edge_list("3 3\n").is_err());
        assert!(from_edge_list("0 1\n1 0\n").is_err());
    }
}
