//! Strongly-typed identifiers for vertices and edges.
//!
//! Using newtypes instead of bare `usize` values prevents an entire class of
//! bugs where a vertex index is accidentally used to index the edge table (or
//! vice versa), which matters in this workspace because the spanner algorithms
//! juggle both kinds of indices inside tight loops.

use core::fmt;

/// Identifier of a vertex inside a [`Graph`](crate::Graph).
///
/// Vertex identifiers are dense: a graph with `n` vertices uses exactly the
/// identifiers `0..n`. They are created either by
/// [`VertexId::new`] or by the graph construction APIs.
///
/// # Examples
///
/// ```
/// use ftspan_graph::VertexId;
///
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`. Graphs of more than
    /// 2^32 − 1 vertices are outside the supported range of this crate.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// Returns the dense index of this vertex.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(value: u32) -> Self {
        Self(value)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(value: VertexId) -> Self {
        value.0
    }
}

impl From<VertexId> for usize {
    #[inline]
    fn from(value: VertexId) -> Self {
        value.index()
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an edge inside a [`Graph`](crate::Graph).
///
/// Edge identifiers are dense: a graph with `m` edges uses exactly the
/// identifiers `0..m`, in insertion order.
///
/// # Examples
///
/// ```
/// use ftspan_graph::EdgeId;
///
/// let e = EdgeId::new(7);
/// assert_eq!(e.index(), 7);
/// assert_eq!(format!("{e}"), "e7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the dense index of this edge.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(value: u32) -> Self {
        Self(value)
    }
}

impl From<EdgeId> for u32 {
    #[inline]
    fn from(value: EdgeId) -> Self {
        value.0
    }
}

impl From<EdgeId> for usize {
    #[inline]
    fn from(value: EdgeId) -> Self {
        value.index()
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A bidirectional mapping between a graph's global vertex identifiers and
/// the dense local identifiers of an extracted region (an induced subgraph,
/// typically a shard plus its halo).
///
/// Local identifiers are assigned in the order the members were listed, so a
/// region built from a sorted member list has deterministic local ids — the
/// property the sharded serving layer relies on for reproducible caching.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{vid, IdRemap};
///
/// let remap = IdRemap::from_members(10, &[vid(7), vid(2), vid(9)]);
/// assert_eq!(remap.local_count(), 3);
/// assert_eq!(remap.to_local(vid(2)), Some(vid(1)));
/// assert_eq!(remap.to_global(vid(1)), vid(2));
/// assert_eq!(remap.to_local(vid(3)), None);
/// ```
#[derive(Clone, Debug)]
pub struct IdRemap {
    to_global: Vec<VertexId>,
    universe_size: usize,
    /// One entry per [`REMAP_PAGE`]-sized page of the global id space;
    /// [`REMAP_ABSENT`] marks a page with no members, otherwise the value
    /// indexes the page's slot block in `pages`.
    page_of: Vec<u32>,
    /// Allocated pages, [`REMAP_PAGE`] slots each; [`REMAP_ABSENT`] marks a
    /// non-member global id, any other value is the local id.
    pages: Vec<u32>,
}

/// Page width of the global→local map. Regions are halos around BFS balls, so
/// their members cluster in id space; 64-id pages keep the map a few percent
/// of a dense `Vec<Option<VertexId>>` over a 10⁶-vertex universe while
/// staying a two-load lookup.
const REMAP_PAGE: usize = 64;
/// Sentinel for "absent" in both the page index and page slots.
const REMAP_ABSENT: u32 = u32::MAX;

impl IdRemap {
    /// Builds the mapping for the given members of a universe of
    /// `universe_size` global vertices. Duplicate members keep their first
    /// position; members out of range are ignored.
    #[must_use]
    pub fn from_members(universe_size: usize, members: &[VertexId]) -> Self {
        let page_count = universe_size.div_ceil(REMAP_PAGE);
        let mut page_of: Vec<u32> = vec![REMAP_ABSENT; page_count];
        let mut pages: Vec<u32> = Vec::new();
        let mut to_global = Vec::with_capacity(members.len());
        for &v in members {
            if v.index() >= universe_size {
                continue;
            }
            let page = v.index() / REMAP_PAGE;
            if page_of[page] == REMAP_ABSENT {
                page_of[page] = u32::try_from(pages.len() / REMAP_PAGE)
                    .expect("remap page count exceeds u32::MAX");
                pages.resize(pages.len() + REMAP_PAGE, REMAP_ABSENT);
            }
            let slot = (page_of[page] as usize) * REMAP_PAGE + v.index() % REMAP_PAGE;
            if pages[slot] == REMAP_ABSENT {
                pages[slot] = u32::try_from(to_global.len()).expect("local id exceeds u32::MAX");
                to_global.push(v);
            }
        }
        Self {
            to_global,
            universe_size,
            page_of,
            pages,
        }
    }

    /// Number of vertices in the region (the local identifier space).
    #[inline]
    #[must_use]
    pub fn local_count(&self) -> usize {
        self.to_global.len()
    }

    /// Size of the global identifier space the mapping was built over.
    #[inline]
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The region members, in local-id order (`members()[i]` is the global
    /// id of local vertex `i`).
    #[inline]
    #[must_use]
    pub fn members(&self) -> &[VertexId] {
        &self.to_global
    }

    /// Maps a global vertex into the region, or `None` if it is not a member
    /// (or out of range).
    #[inline]
    #[must_use]
    pub fn to_local(&self, global: VertexId) -> Option<VertexId> {
        if global.index() >= self.universe_size {
            return None;
        }
        let page = self.page_of[global.index() / REMAP_PAGE];
        if page == REMAP_ABSENT {
            return None;
        }
        let slot = (page as usize) * REMAP_PAGE + global.index() % REMAP_PAGE;
        let local = self.pages[slot];
        (local != REMAP_ABSENT).then_some(VertexId(local))
    }

    /// Heap bytes held by the mapping (capacity, not just length), the number
    /// the scale tier's memory audit sums per region. The paged global→local
    /// map costs `O(local_count + universe/64)` instead of the dense map's
    /// `O(universe)`.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.to_global.capacity() * core::mem::size_of::<VertexId>()
            + self.page_of.capacity() * core::mem::size_of::<u32>()
            + self.pages.capacity() * core::mem::size_of::<u32>()
    }

    /// Returns `true` if the global vertex belongs to the region.
    #[inline]
    #[must_use]
    pub fn contains(&self, global: VertexId) -> bool {
        self.to_local(global).is_some()
    }

    /// Maps a local vertex back to its global identifier.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range for the region.
    #[inline]
    #[must_use]
    pub fn to_global(&self, local: VertexId) -> VertexId {
        self.to_global[local.index()]
    }

    /// Re-expresses a local path in global identifiers.
    #[must_use]
    pub fn globalize_path(&self, path: &[VertexId]) -> Vec<VertexId> {
        path.iter().map(|&v| self.to_global(v)).collect()
    }

    /// Maps the global vertices that belong to the region into local ids,
    /// silently dropping non-members (the tolerance serving layers need when
    /// restricting a global fault set to one shard).
    #[must_use]
    pub fn localize_vertices<I>(&self, vertices: I) -> Vec<VertexId>
    where
        I: IntoIterator<Item = VertexId>,
    {
        vertices
            .into_iter()
            .filter_map(|v| self.to_local(v))
            .collect()
    }
}

/// Convenience constructor used pervasively in tests and examples.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{vid, VertexId};
/// assert_eq!(vid(2), VertexId::new(2));
/// ```
#[inline]
#[must_use]
pub fn vid(index: usize) -> VertexId {
    VertexId::new(index)
}

/// Convenience constructor for [`EdgeId`] used in tests and examples.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{eid, EdgeId};
/// assert_eq!(eid(2), EdgeId::new(2));
/// ```
#[inline]
#[must_use]
pub fn eid(index: usize) -> EdgeId {
    EdgeId::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vertex_id_round_trips_through_index() {
        for i in [0usize, 1, 5, 1000, 1 << 20] {
            assert_eq!(VertexId::new(i).index(), i);
        }
    }

    #[test]
    fn edge_id_round_trips_through_index() {
        for i in [0usize, 1, 5, 1000, 1 << 20] {
            assert_eq!(EdgeId::new(i).index(), i);
        }
    }

    #[test]
    fn vertex_id_ordering_matches_index_ordering() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(VertexId::new(100) > VertexId::new(99));
        assert_eq!(VertexId::new(7), VertexId::new(7));
    }

    #[test]
    fn display_and_debug_are_nonempty_and_distinctive() {
        assert_eq!(format!("{}", vid(12)), "v12");
        assert_eq!(format!("{:?}", vid(12)), "v12");
        assert_eq!(format!("{}", eid(3)), "e3");
        assert_eq!(format!("{:?}", eid(3)), "e3");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<VertexId> = (0..100).map(VertexId::new).collect();
        assert_eq!(set.len(), 100);
        let eset: HashSet<EdgeId> = (0..100).map(EdgeId::new).collect();
        assert_eq!(eset.len(), 100);
    }

    #[test]
    fn conversions_to_and_from_u32() {
        let v: VertexId = 9u32.into();
        assert_eq!(u32::from(v), 9);
        assert_eq!(usize::from(v), 9);
        let e: EdgeId = 11u32.into();
        assert_eq!(u32::from(e), 11);
        assert_eq!(usize::from(e), 11);
    }

    #[test]
    #[should_panic(expected = "vertex index exceeds u32::MAX")]
    fn vertex_id_overflow_panics() {
        let _ = VertexId::new(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }

    #[test]
    fn remap_round_trips_members_in_order() {
        let remap = IdRemap::from_members(8, &[vid(5), vid(0), vid(3)]);
        assert_eq!(remap.local_count(), 3);
        assert_eq!(remap.universe_size(), 8);
        assert_eq!(remap.members(), &[vid(5), vid(0), vid(3)]);
        for (local, &global) in remap.members().iter().enumerate() {
            assert_eq!(remap.to_local(global), Some(vid(local)));
            assert_eq!(remap.to_global(vid(local)), global);
        }
        assert!(remap.contains(vid(0)));
        assert!(!remap.contains(vid(1)));
        assert_eq!(remap.to_local(vid(100)), None, "out of range maps to None");
    }

    #[test]
    fn remap_ignores_duplicates_and_out_of_range_members() {
        let remap = IdRemap::from_members(4, &[vid(2), vid(2), vid(9), vid(1)]);
        assert_eq!(remap.members(), &[vid(2), vid(1)]);
        assert_eq!(remap.to_local(vid(2)), Some(vid(0)));
    }

    #[test]
    fn remap_handles_sparse_high_id_members_with_paged_storage() {
        // Members scattered near the top of a large universe: the paged map
        // must allocate only the touched pages.
        let universe = 1 << 20;
        let members: Vec<VertexId> = (0..200).map(|i| vid(universe - 1 - i * 4097)).collect();
        let remap = IdRemap::from_members(universe, &members);
        assert_eq!(remap.local_count(), members.len());
        assert_eq!(remap.universe_size(), universe);
        for (local, &global) in members.iter().enumerate() {
            assert_eq!(remap.to_local(global), Some(vid(local)));
            assert_eq!(remap.to_global(vid(local)), global);
        }
        assert_eq!(remap.to_local(vid(0)), None);
        assert_eq!(remap.to_local(vid(universe - 2)), None);
        assert_eq!(remap.to_local(vid(universe)), None);
        // Sparse members cost pages, not the universe: far below the dense
        // map's ~8 MiB for a 2^20 universe.
        assert!(
            remap.memory_bytes() < universe / 4,
            "paged remap used {} bytes",
            remap.memory_bytes()
        );
    }

    #[test]
    fn remap_page_boundaries_round_trip() {
        // Ids straddling page edges (63/64/65, 127/128) and a duplicate on a
        // boundary exercise the slot arithmetic.
        let members = [
            vid(63),
            vid(64),
            vid(65),
            vid(127),
            vid(128),
            vid(64),
            vid(0),
        ];
        let remap = IdRemap::from_members(130, &members);
        assert_eq!(
            remap.members(),
            &[vid(63), vid(64), vid(65), vid(127), vid(128), vid(0)]
        );
        for (local, &global) in remap.members().iter().enumerate() {
            assert_eq!(remap.to_local(global), Some(vid(local)));
        }
        assert_eq!(remap.to_local(vid(62)), None);
        assert_eq!(remap.to_local(vid(129)), None);
    }

    #[test]
    fn remap_translates_paths_and_filters_vertices() {
        let remap = IdRemap::from_members(6, &[vid(4), vid(1), vid(5)]);
        assert_eq!(
            remap.globalize_path(&[vid(0), vid(2), vid(1)]),
            vec![vid(4), vid(5), vid(1)]
        );
        assert_eq!(
            remap.localize_vertices([vid(1), vid(3), vid(5)]),
            vec![vid(1), vid(2)]
        );
    }
}
