//! Strongly-typed identifiers for vertices and edges.
//!
//! Using newtypes instead of bare `usize` values prevents an entire class of
//! bugs where a vertex index is accidentally used to index the edge table (or
//! vice versa), which matters in this workspace because the spanner algorithms
//! juggle both kinds of indices inside tight loops.

use core::fmt;

/// Identifier of a vertex inside a [`Graph`](crate::Graph).
///
/// Vertex identifiers are dense: a graph with `n` vertices uses exactly the
/// identifiers `0..n`. They are created either by
/// [`VertexId::new`] or by the graph construction APIs.
///
/// # Examples
///
/// ```
/// use ftspan_graph::VertexId;
///
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`. Graphs of more than
    /// 2^32 − 1 vertices are outside the supported range of this crate.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// Returns the dense index of this vertex.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(value: u32) -> Self {
        Self(value)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(value: VertexId) -> Self {
        value.0
    }
}

impl From<VertexId> for usize {
    #[inline]
    fn from(value: VertexId) -> Self {
        value.index()
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an edge inside a [`Graph`](crate::Graph).
///
/// Edge identifiers are dense: a graph with `m` edges uses exactly the
/// identifiers `0..m`, in insertion order.
///
/// # Examples
///
/// ```
/// use ftspan_graph::EdgeId;
///
/// let e = EdgeId::new(7);
/// assert_eq!(e.index(), 7);
/// assert_eq!(format!("{e}"), "e7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the dense index of this edge.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(value: u32) -> Self {
        Self(value)
    }
}

impl From<EdgeId> for u32 {
    #[inline]
    fn from(value: EdgeId) -> Self {
        value.0
    }
}

impl From<EdgeId> for usize {
    #[inline]
    fn from(value: EdgeId) -> Self {
        value.index()
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Convenience constructor used pervasively in tests and examples.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{vid, VertexId};
/// assert_eq!(vid(2), VertexId::new(2));
/// ```
#[inline]
#[must_use]
pub fn vid(index: usize) -> VertexId {
    VertexId::new(index)
}

/// Convenience constructor for [`EdgeId`] used in tests and examples.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{eid, EdgeId};
/// assert_eq!(eid(2), EdgeId::new(2));
/// ```
#[inline]
#[must_use]
pub fn eid(index: usize) -> EdgeId {
    EdgeId::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vertex_id_round_trips_through_index() {
        for i in [0usize, 1, 5, 1000, 1 << 20] {
            assert_eq!(VertexId::new(i).index(), i);
        }
    }

    #[test]
    fn edge_id_round_trips_through_index() {
        for i in [0usize, 1, 5, 1000, 1 << 20] {
            assert_eq!(EdgeId::new(i).index(), i);
        }
    }

    #[test]
    fn vertex_id_ordering_matches_index_ordering() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(VertexId::new(100) > VertexId::new(99));
        assert_eq!(VertexId::new(7), VertexId::new(7));
    }

    #[test]
    fn display_and_debug_are_nonempty_and_distinctive() {
        assert_eq!(format!("{}", vid(12)), "v12");
        assert_eq!(format!("{:?}", vid(12)), "v12");
        assert_eq!(format!("{}", eid(3)), "e3");
        assert_eq!(format!("{:?}", eid(3)), "e3");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<VertexId> = (0..100).map(VertexId::new).collect();
        assert_eq!(set.len(), 100);
        let eset: HashSet<EdgeId> = (0..100).map(EdgeId::new).collect();
        assert_eq!(eset.len(), 100);
    }

    #[test]
    fn conversions_to_and_from_u32() {
        let v: VertexId = 9u32.into();
        assert_eq!(u32::from(v), 9);
        assert_eq!(usize::from(v), 9);
        let e: EdgeId = 11u32.into();
        assert_eq!(u32::from(e), 11);
        assert_eq!(usize::from(e), 11);
    }

    #[test]
    #[should_panic(expected = "vertex index exceeds u32::MAX")]
    fn vertex_id_overflow_panics() {
        let _ = VertexId::new(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
