//! Connectivity queries: reachability, connected components, spanning forests.

use std::collections::VecDeque;

use crate::{EdgeId, GraphView, VertexId};

/// Returns, for each vertex, whether it is reachable from `source` in the view.
///
/// Faulted vertices are never reachable; a faulted `source` reaches nothing.
#[must_use]
pub fn reachable_from<V: GraphView>(view: &V, source: VertexId) -> Vec<bool> {
    let n = view.vertex_count();
    let mut seen = vec![false; n];
    if !view.contains_vertex(source) {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for (v, _) in view.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Labels every live vertex with a component id in `0..component_count`;
/// faulted vertices are labelled `None`.
///
/// Component ids are assigned in increasing order of the smallest vertex id
/// they contain, so the labelling is deterministic.
#[must_use]
pub fn connected_components<V: GraphView>(view: &V) -> ComponentLabeling {
    let n = view.vertex_count();
    let mut label: Vec<Option<usize>> = vec![None; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        let start_v = VertexId::new(start);
        if !view.contains_vertex(start_v) || label[start].is_some() {
            continue;
        }
        label[start] = Some(count);
        queue.push_back(start_v);
        while let Some(u) = queue.pop_front() {
            for (v, _) in view.neighbors(u) {
                if label[v.index()].is_none() {
                    label[v.index()] = Some(count);
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    ComponentLabeling { label, count }
}

/// The result of [`connected_components`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentLabeling {
    label: Vec<Option<usize>>,
    count: usize,
}

impl ComponentLabeling {
    /// Number of connected components among the live vertices.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.count
    }

    /// Component id of `v`, or `None` if `v` is faulted (or out of range).
    #[must_use]
    pub fn component_of(&self, v: VertexId) -> Option<usize> {
        self.label.get(v.index()).copied().flatten()
    }

    /// Returns `true` if `u` and `v` are live and in the same component.
    #[must_use]
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        match (self.component_of(u), self.component_of(v)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Lists the vertices of each component, indexed by component id.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, lab) in self.label.iter().enumerate() {
            if let Some(c) = lab {
                out[*c].push(VertexId::new(i));
            }
        }
        out
    }
}

/// Returns `true` if all live vertices of the view are in one component.
///
/// A view with zero or one live vertices counts as connected.
#[must_use]
pub fn is_connected<V: GraphView>(view: &V) -> bool {
    connected_components(view).component_count() <= 1
}

/// Computes a spanning forest of the view as a list of edge ids (one BFS tree
/// per component).
#[must_use]
pub fn spanning_forest<V: GraphView>(view: &V) -> Vec<EdgeId> {
    let n = view.vertex_count();
    let mut seen = vec![false; n];
    let mut forest = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        let start_v = VertexId::new(start);
        if !view.contains_vertex(start_v) || seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(start_v);
        while let Some(u) = queue.pop_front() {
            for (v, e) in view.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    forest.push(e);
                    queue.push_back(v);
                }
            }
        }
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vid, FaultView, Graph};

    fn two_triangles() -> Graph {
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_unit_edge(u, v);
        }
        g
    }

    #[test]
    fn reachability_respects_components() {
        let g = two_triangles();
        let r = reachable_from(&g, vid(0));
        assert_eq!(r, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn reachability_from_faulted_source_is_empty() {
        let g = two_triangles();
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(0));
        assert!(reachable_from(&view, vid(0)).iter().all(|&b| !b));
    }

    #[test]
    fn component_labels_and_count() {
        let g = two_triangles();
        let comp = connected_components(&g);
        assert_eq!(comp.component_count(), 2);
        assert_eq!(comp.component_of(vid(0)), Some(0));
        assert_eq!(comp.component_of(vid(5)), Some(1));
        assert!(comp.same_component(vid(0), vid(2)));
        assert!(!comp.same_component(vid(0), vid(3)));
        let groups = comp.components();
        assert_eq!(groups[0], vec![vid(0), vid(1), vid(2)]);
        assert_eq!(groups[1], vec![vid(3), vid(4), vid(5)]);
    }

    #[test]
    fn faulted_vertices_have_no_component() {
        let g = two_triangles();
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(1));
        let comp = connected_components(&view);
        assert_eq!(comp.component_of(vid(1)), None);
        assert!(!comp.same_component(vid(1), vid(0)));
        // Triangle 0-1-2 with 1 removed is still connected through edge {0,2}.
        assert_eq!(comp.component_count(), 2);
    }

    #[test]
    fn vertex_fault_can_disconnect() {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(1, 2);
        assert!(is_connected(&g));
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(1));
        assert!(!is_connected(&view));
    }

    #[test]
    fn empty_and_single_vertex_graphs_are_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        let g = Graph::new(2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn spanning_forest_size_matches_components() {
        let g = two_triangles();
        let forest = spanning_forest(&g);
        // n - (#components) edges: 6 - 2 = 4.
        assert_eq!(forest.len(), 4);
        let sub = g.edge_subgraph(forest);
        let comp = connected_components(&sub);
        assert_eq!(comp.component_count(), 2);
    }

    #[test]
    fn spanning_forest_respects_faults() {
        let g = two_triangles();
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(3));
        let forest = spanning_forest(&view);
        // Components among live vertices: {0,1,2} and {4,5} -> 2 + 1 edges.
        assert_eq!(forest.len(), 3);
    }
}
