//! Error types for graph construction and parsing.

use core::fmt;

use crate::{EdgeId, VertexId};

/// Errors produced by graph construction, mutation, and text parsing.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{Graph, GraphError};
///
/// let mut g = Graph::new(2);
/// let err = g.try_add_edge(0, 5, 1.0).unwrap_err();
/// assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex index was at least the number of vertices in the graph.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        vertex_count: usize,
    },
    /// An edge identifier was at least the number of edges in the graph.
    EdgeOutOfRange {
        /// The offending edge identifier.
        edge: EdgeId,
        /// The number of edges in the graph.
        edge_count: usize,
    },
    /// A self-loop `{u, u}` was rejected; spanner constructions operate on
    /// simple graphs.
    SelfLoop {
        /// The vertex at both endpoints of the rejected edge.
        vertex: VertexId,
    },
    /// A parallel edge `{u, v}` was rejected because the graph already
    /// contains that pair and was configured to be simple.
    ParallelEdge {
        /// One endpoint of the duplicate edge.
        u: VertexId,
        /// The other endpoint of the duplicate edge.
        v: VertexId,
    },
    /// An edge weight was negative, NaN, or infinite.
    InvalidWeight {
        /// The offending weight value.
        weight: f64,
    },
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex index {vertex} out of range for graph with {vertex_count} vertices"
            ),
            GraphError::EdgeOutOfRange { edge, edge_count } => write!(
                f,
                "edge {edge} out of range for graph with {edge_count} edges"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at {vertex} rejected: graphs must be simple")
            }
            GraphError::ParallelEdge { u, v } => {
                write!(
                    f,
                    "parallel edge {{{u}, {v}}} rejected: graphs must be simple"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(
                    f,
                    "invalid edge weight {weight}: must be finite and non-negative"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vid;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            vertex_count: 4,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));

        let e = GraphError::SelfLoop { vertex: vid(3) };
        assert!(e.to_string().contains("v3"));

        let e = GraphError::ParallelEdge {
            u: vid(1),
            v: vid(2),
        };
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v2"));

        let e = GraphError::InvalidWeight { weight: -1.5 };
        assert!(e.to_string().contains("-1.5"));

        let e = GraphError::Parse {
            line: 17,
            message: "expected two integers".to_owned(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("two integers"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }
}
