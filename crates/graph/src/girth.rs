//! Unweighted girth computation.
//!
//! The size analysis of the modified greedy algorithm (Lemma 7 / Theorem 8 of
//! the paper) rests on the Moore bound: a graph with girth greater than `2k`
//! has at most `O(n^{1+1/k})` edges. The girth routine here lets tests check
//! the structural claims directly on the subgraphs the algorithms produce.

use std::collections::VecDeque;

use crate::{GraphView, VertexId};

/// Computes the (unweighted) girth of the view: the number of edges on a
/// shortest cycle. Returns `None` for acyclic views (forests).
///
/// Runs one truncated BFS per vertex, for `O(n·(m + n))` total time, which is
/// fine at the scales used by the test-suite and experiment harness.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{girth::girth, Graph};
///
/// let mut g = Graph::new(5);
/// for i in 0..5 {
///     g.add_unit_edge(i, (i + 1) % 5);
/// }
/// assert_eq!(girth(&g), Some(5));
/// ```
#[must_use]
pub fn girth<V: GraphView>(view: &V) -> Option<u32> {
    let n = view.vertex_count();
    let mut best: Option<u32> = None;
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut parent_edge: Vec<Option<usize>> = vec![None; n];
    for start in 0..n {
        let start_v = VertexId::new(start);
        if !view.contains_vertex(start_v) {
            continue;
        }
        dist.fill(None);
        parent_edge.fill(None);
        dist[start] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(start_v);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued vertex has distance");
            // Stop expanding once the frontier cannot improve the best cycle.
            if let Some(b) = best {
                if 2 * du + 1 >= b {
                    continue;
                }
            }
            for (v, e) in view.neighbors(u) {
                if Some(e.index()) == parent_edge[u.index()] {
                    continue;
                }
                match dist[v.index()] {
                    None => {
                        dist[v.index()] = Some(du + 1);
                        parent_edge[v.index()] = Some(e.index());
                        queue.push_back(v);
                    }
                    Some(dv) => {
                        // Found a cycle through the BFS tree rooted at start:
                        // its length is du + dv + 1. This overestimates only
                        // when the cycle does not pass through `start`, and
                        // the minimum over all start vertices is exact.
                        let cycle = du + dv + 1;
                        best = Some(best.map_or(cycle, |b| b.min(cycle)));
                    }
                }
            }
        }
    }
    best
}

/// Returns `true` if the view contains no cycle of length at most `bound`.
///
/// Equivalent to `girth(view).map_or(true, |g| g > bound)` but exits early.
#[must_use]
pub fn girth_exceeds<V: GraphView>(view: &V, bound: u32) -> bool {
    girth(view).is_none_or(|g| g > bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vid, FaultView, Graph};

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_unit_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn forest_has_no_girth() {
        let mut g = Graph::new(5);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(1, 2);
        g.add_unit_edge(3, 4);
        assert_eq!(girth(&g), None);
        assert!(girth_exceeds(&g, 1_000));
    }

    #[test]
    fn cycle_girth_is_its_length() {
        for n in 3..10 {
            assert_eq!(girth(&cycle(n)), Some(n as u32), "cycle of length {n}");
        }
    }

    #[test]
    fn chord_shortens_girth() {
        let mut g = cycle(6);
        g.add_unit_edge(0, 3); // creates two 4-cycles
        assert_eq!(girth(&g), Some(4));
        g.add_unit_edge(0, 2); // creates a triangle
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn complete_graph_has_triangles() {
        let mut g = Graph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_unit_edge(u, v);
            }
        }
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn petersen_graph_has_girth_five() {
        // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -> i+5.
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_unit_edge(i, (i + 1) % 5);
            g.add_unit_edge(5 + i, 5 + (i + 2) % 5);
            g.add_unit_edge(i, i + 5);
        }
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn girth_respects_faults() {
        let mut g = cycle(4);
        g.add_unit_edge(0, 2);
        assert_eq!(girth(&g), Some(3));
        let mut view = FaultView::new(&g);
        view.block_edge(g.edge_between(vid(0), vid(2)).unwrap());
        assert_eq!(girth(&view), Some(4));
        view.block_vertex(vid(3));
        assert_eq!(girth(&view), None);
    }

    #[test]
    fn girth_exceeds_threshold_checks() {
        let g = cycle(7);
        assert!(girth_exceeds(&g, 6));
        assert!(!girth_exceeds(&g, 7));
        assert!(!girth_exceeds(&g, 8));
    }

    #[test]
    fn two_disjoint_cycles_take_the_minimum() {
        let mut g = Graph::new(9);
        for i in 0..5 {
            g.add_unit_edge(i, (i + 1) % 5);
        }
        for i in 0..4 {
            g.add_unit_edge(5 + i, 5 + (i + 1) % 4);
        }
        assert_eq!(girth(&g), Some(4));
    }
}
