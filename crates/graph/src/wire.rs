//! Compact binary wire encoding for graph state.
//!
//! The snapshot subsystem and the `ftspan-server` protocol both need a
//! deterministic, dependency-free byte encoding. This module provides the
//! primitives — a little-endian [`WireWriter`]/[`WireReader`] pair and the
//! [`fnv1a64`] checksum — plus the codec for [`Graph`] itself.
//!
//! ## Graph encoding
//!
//! A graph is encoded as its **flat edge table in insertion order**:
//!
//! ```text
//! u64 vertex_count · u64 edge_count · edge_count × (u32 u, u32 v, u64 weight_bits)
//! ```
//!
//! Weights travel as [`f64::to_bits`], so the round trip is bit-exact even
//! for weights that have no short decimal form. Encoding reads the edge
//! table directly — any append buffers a mutating caller has not yet folded
//! in serialize flat for free — and decoding replays `add_edge` in the same
//! order and then compacts, so edge identifiers, CSR layout, and the
//! unit-weight flag of the decoded graph are identical to a compacted copy
//! of the original. Everything downstream (fault fingerprints, cached tree
//! answers, region signatures) is a pure function of that state, which is
//! what makes snapshot restores bit-identical.

use crate::Graph;

/// Errors produced when decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes mid-value.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The bytes decoded to a structurally invalid value.
    Malformed {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of wire data: needed {needed} bytes, {remaining} remaining"
            ),
            Self::Malformed { message } => write!(f, "malformed wire data: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Shorthand for a [`WireError::Malformed`] with a formatted message.
    #[must_use]
    pub fn malformed(message: impl Into<String>) -> Self {
        Self::Malformed {
            message: message.into(),
        }
    }
}

/// FNV-1a 64-bit hash — the snapshot payload checksum. Deterministic across
/// platforms, no dependencies, and sensitive to every byte and position.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer whose buffer pre-reserves `capacity` bytes.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (wire sizes are 64-bit everywhere).
    pub fn put_len(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, for bit-exact round
    /// trips.
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Empties the buffer, keeping its allocation — the reuse hook for
    /// encode paths that write one value per iteration (e.g. a server
    /// connection's reply frames) and should not pay a fresh allocation
    /// each time.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// A view of the bytes written so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer and returns its buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian cursor over wire bytes.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` length and checks it is plausible for the bytes that
    /// remain (each element needs at least `min_element_size` bytes), so a
    /// corrupt length fails fast instead of provoking a huge allocation.
    pub fn len(&mut self, min_element_size: usize) -> Result<usize, WireError> {
        let raw = self.u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| WireError::malformed(format!("length {raw} overflows usize")))?;
        if min_element_size > 0 && len.saturating_mul(min_element_size) > self.remaining() {
            return Err(WireError::malformed(format!(
                "length {len} × {min_element_size} bytes exceeds the {} remaining",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads length-prefixed raw bytes (the inverse of
    /// [`WireWriter::put_bytes`]).
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.len(1)?;
        self.take(len)
    }

    /// Fails unless every byte was consumed — decoders call this last so
    /// trailing garbage is rejected rather than ignored.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::malformed(format!(
                "{} trailing bytes after a complete value",
                self.remaining()
            )))
        }
    }
}

impl Graph {
    /// Encodes this graph onto `w` in the format described in the
    /// [module docs](self): vertex count, then the flat edge table in
    /// insertion order with bit-exact weights.
    pub fn encode_wire(&self, w: &mut WireWriter) {
        w.put_len(self.vertex_count());
        w.put_len(self.edge_count());
        for (_, edge) in self.edges() {
            let (u, v) = edge.endpoints();
            w.put_u32(u.as_u32());
            w.put_u32(v.as_u32());
            w.put_f64(edge.weight());
        }
    }

    /// Decodes a graph previously written by [`Graph::encode_wire`]. The
    /// returned graph is compacted; its edge ids, CSR layout, and
    /// unit-weight flag match a compacted copy of the encoded graph exactly.
    pub fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.len(0)?;
        if n > u32::MAX as usize {
            return Err(WireError::malformed(format!(
                "vertex count {n} exceeds the u32 id space"
            )));
        }
        let m = r.len(16)?;
        let mut graph = Self::with_capacity(n, m);
        for i in 0..m {
            let u = r.u32()? as usize;
            let v = r.u32()? as usize;
            let weight = r.f64()?;
            graph
                .try_add_edge(u, v, weight)
                .map_err(|e| WireError::malformed(format!("edge {i}: {e}")))?;
        }
        graph.compact();
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph(weighted: bool) -> Graph {
        let mut g = Graph::new(7);
        let weights = [1.0, 2.5, 0.75, 1.0, 3.25, 1.5];
        for (i, (u, v)) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
            .into_iter()
            .enumerate()
        {
            if weighted {
                g.add_edge(u, v, weights[i]);
            } else {
                g.add_unit_edge(u, v);
            }
        }
        g
    }

    fn encode(g: &Graph) -> Vec<u8> {
        let mut w = WireWriter::new();
        g.encode_wire(&mut w);
        w.into_vec()
    }

    #[test]
    fn graph_round_trip_is_bit_identical() {
        for weighted in [false, true] {
            let mut original = sample_graph(weighted);
            original.compact();
            let bytes = encode(&original);
            let mut r = WireReader::new(&bytes);
            let decoded = Graph::decode_wire(&mut r).expect("decodes");
            r.finish().expect("no trailing bytes");
            assert_eq!(decoded.vertex_count(), original.vertex_count());
            assert_eq!(decoded.edge_count(), original.edge_count());
            assert_eq!(decoded.is_unit_weighted(), original.is_unit_weighted());
            assert!(decoded.is_compacted());
            // Re-encoding must reproduce the exact bytes: same edge table,
            // same order, same weight bits.
            assert_eq!(encode(&decoded), bytes);
        }
    }

    #[test]
    fn append_buffers_serialize_flat() {
        let mut compacted = sample_graph(true);
        compacted.compact();
        let mut appended = sample_graph(true);
        appended.compact();
        appended.add_edge(0, 6, 9.5);
        compacted.add_edge(0, 6, 9.5);
        compacted.compact();
        // The uncompacted graph's pending edge is encoded in place; decoding
        // yields the same state as compacting first.
        assert_eq!(encode(&appended), encode(&compacted));
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let bytes = encode(&sample_graph(true));
        for cut in [0, 8, 15, bytes.len() - 1] {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(Graph::decode_wire(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_edge_endpoints_are_rejected() {
        let mut bytes = encode(&sample_graph(true));
        // First edge's source vertex, made out of range.
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = WireReader::new(&bytes);
        let err = Graph::decode_wire(&mut r).unwrap_err();
        assert!(matches!(err, WireError::Malformed { .. }));
    }

    #[test]
    fn oversized_length_prefix_fails_fast() {
        let mut w = WireWriter::new();
        w.put_len(4);
        w.put_u64(u64::MAX); // edge count far beyond the bytes present
        let mut r = WireReader::new(w.as_slice());
        assert!(Graph::decode_wire(&mut r).is_err());
    }

    #[test]
    fn fnv1a64_is_stable_and_position_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"a\0"));
    }

    #[test]
    fn reader_primitives_round_trip() {
        let mut w = WireWriter::with_capacity(64);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_bytes(b"abc");
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.bytes().unwrap(), b"abc");
        r.finish().unwrap();
        assert!(r.u8().is_err());
    }
}
