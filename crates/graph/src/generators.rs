//! Random and structured graph generators used by tests, examples, and the
//! experiment harness.
//!
//! Every randomized generator takes an explicit `&mut impl Rng` so that
//! experiments are reproducible from a seed. The workloads mirror the graph
//! families usually used to evaluate spanner constructions: Erdős–Rényi,
//! random geometric (the classical motivation for fault-tolerant spanners),
//! preferential attachment, small-world rings, grids, and hypercubes.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::Graph;

/// Above this vertex count, [`gnp`] switches from the classical per-pair
/// Bernoulli loop to geometric skip sampling. The two paths draw from the RNG
/// differently, so the seeds pinned by existing differential suites (all of
/// which use `n ≤ 200`) keep their byte-identical output, while sparse
/// million-node inputs become `O(n + m)` instead of `O(n²)`.
const GNP_SKIP_THRESHOLD: usize = 2048;

/// Erdős–Rényi `G(n, p)`: each of the `n·(n−1)/2` possible edges is present
/// independently with probability `p`, with unit weights.
///
/// For `n ≤ 2048` this draws one Bernoulli variable per pair (the historical
/// behavior, preserved bit-for-bit for pinned seeds). Larger graphs use
/// geometric skip sampling over the linearized pair index — expected
/// `O(n + p·n²)` work and RNG draws — which is what makes the 10⁵–10⁶-node
/// scale tier feasible.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut g = Graph::new(n);
    if p == 0.0 || n < 2 {
        return g;
    }
    if n <= GNP_SKIP_THRESHOLD {
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    g.add_unit_edge(u, v);
                }
            }
        }
    } else {
        gnp_skip_sample(n, p, &mut g, rng);
    }
    g
}

/// Geometric skip sampling for sparse `G(n, p)`: instead of flipping a coin
/// per pair, jump directly to the next successful pair. The gap between
/// successes in a Bernoulli(p) sequence is geometric, so
/// `skip = ⌊ln(U) / ln(1 − p)⌋` with `U ~ Uniform[0, 1)` lands on the next
/// edge; total work is `O(n + m)`.
fn gnp_skip_sample<R: Rng + ?Sized>(n: usize, p: f64, g: &mut Graph, rng: &mut R) {
    let max_pairs = (n as u64) * (n as u64 - 1) / 2;
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_unit_edge(u, v);
            }
        }
        return;
    }
    let ln_q = (1.0 - p).ln();
    // `idx` walks the linearized upper-triangle pair index; row `u` owns the
    // `n − 1 − u` consecutive indices starting at `row_start`.
    let mut idx: u64 = 0;
    let mut u = 0usize;
    let mut row_start: u64 = 0;
    let mut row_len: u64 = (n - 1) as u64;
    loop {
        let draw: f64 = rng.gen::<f64>();
        // U = 0 means an infinite skip (ln 0 = −∞); compare in f64 before
        // casting so the infinity never truncates into a bogus index.
        let skip = if draw > 0.0 {
            (draw.ln() / ln_q).floor()
        } else {
            f64::INFINITY
        };
        if skip >= (max_pairs - idx) as f64 {
            break;
        }
        idx += skip as u64;
        while idx >= row_start + row_len {
            row_start += row_len;
            row_len -= 1;
            u += 1;
        }
        let v = u + 1 + (idx - row_start) as usize;
        g.add_unit_edge(u, v);
        idx += 1;
        if idx >= max_pairs {
            break;
        }
    }
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly at
/// random (unit weights).
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges `n·(n−1)/2`.
#[must_use]
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} are possible"
    );
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    // Rejection sampling is fine as long as the graph is not nearly complete;
    // fall back to shuffling all pairs when it is.
    if (m as f64) < 0.6 * max_edges as f64 {
        while g.edge_count() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !g.has_edge_between(u, v) {
                g.add_unit_edge(u, v);
            }
        }
    } else {
        let mut pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        pairs.shuffle(rng);
        for &(u, v) in pairs.iter().take(m) {
            g.add_unit_edge(u, v);
        }
    }
    g
}

/// `G(n, p)` conditioned on connectivity by overlaying a uniformly random
/// spanning tree (unit weights). The result always has at least `n − 1` edges.
#[must_use]
pub fn connected_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = gnp(n, p, rng);
    overlay_random_spanning_tree(&mut g, rng);
    g
}

/// Adds a uniformly random spanning tree (random permutation + random parent)
/// on top of an existing graph so that it becomes connected. Existing edges
/// are kept; duplicates are skipped.
pub fn overlay_random_spanning_tree<R: Rng + ?Sized>(g: &mut Graph, rng: &mut R) {
    let n = g.vertex_count();
    if n < 2 {
        return;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let child = order[i];
        let parent = order[rng.gen_range(0..i)];
        if !g.has_edge_between(child, parent) {
            g.add_unit_edge(child, parent);
        }
    }
}

/// The complete graph `K_n` with unit weights.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_unit_edge(u, v);
        }
    }
    g
}

/// A simple path `0 − 1 − ⋯ − (n−1)` with unit weights.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_unit_edge(i - 1, i);
    }
    g
}

/// A cycle on `n ≥ 3` vertices with unit weights.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a simple cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_unit_edge(n - 1, 0);
    g
}

/// A star with `n − 1` leaves attached to vertex 0 (unit weights).
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_unit_edge(0, i);
    }
    g
}

/// A `rows × cols` grid graph with unit weights; vertex `(r, c)` has index
/// `r * cols + c`.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                g.add_unit_edge(i, i + 1);
            }
            if r + 1 < rows {
                g.add_unit_edge(i, i + cols);
            }
        }
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` vertices (unit weights).
///
/// # Panics
///
/// Panics if `d > 20` (more than a million vertices), which is outside the
/// intended scale of this crate's experiments.
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if u > v {
                g.add_unit_edge(v, u);
            }
        }
    }
    g
}

/// Random geometric graph: `n` points placed uniformly in the unit square,
/// connected when their Euclidean distance is at most `radius`, with the edge
/// weight equal to that distance.
///
/// This is the natural weighted workload for fault-tolerant spanners, since
/// geometric spanners are where the notion was introduced.
/// The implementation uses a spatial-grid bucket index (cell width ≥ radius,
/// so every edge endpoint pair shares a 3×3 cell neighborhood), replacing the
/// historical all-pairs loop. RNG consumption (the `2n` coordinate draws) and
/// edge emission order (`u` ascending, then `v` ascending) are identical to
/// the all-pairs loop, so output is **byte-identical for every seed** while
/// expected work drops to `O(n + m)` on bounded-density inputs.
#[must_use]
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    let r2 = radius * radius;
    // Cell width must stay ≥ radius (3×3 sufficiency); more cells than ~√n
    // buys nothing and costs memory, so clamp.
    let per_axis = if radius > 0.0 {
        let by_radius = (1.0 / radius).floor().max(1.0) as usize;
        let by_points = (n as f64).sqrt() as usize + 1;
        by_radius.min(by_points).max(1)
    } else {
        1
    };
    let cell_xy = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x * per_axis as f64) as usize).min(per_axis - 1);
        let cy = ((y * per_axis as f64) as usize).min(per_axis - 1);
        (cx, cy)
    };
    // Counting-sort points into a CSR bucket layout over the grid cells.
    let cells = per_axis * per_axis;
    let mut starts = vec![0u32; cells + 1];
    for &(x, y) in &points {
        let (cx, cy) = cell_xy(x, y);
        starts[cy * per_axis + cx + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    let mut bucket = vec![0u32; n];
    let mut cursor = starts.clone();
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_xy(x, y);
        let c = cy * per_axis + cx;
        bucket[cursor[c] as usize] = u32::try_from(i).expect("point index exceeds u32::MAX");
        cursor[c] += 1;
    }
    let mut candidates: Vec<(usize, f64)> = Vec::new();
    for u in 0..n {
        let (x, y) = points[u];
        let (cx, cy) = cell_xy(x, y);
        candidates.clear();
        for ny in cy.saturating_sub(1)..=(cy + 1).min(per_axis - 1) {
            for nx in cx.saturating_sub(1)..=(cx + 1).min(per_axis - 1) {
                let c = ny * per_axis + nx;
                for &w in &bucket[starts[c] as usize..starts[c + 1] as usize] {
                    let v = w as usize;
                    if v <= u {
                        continue;
                    }
                    let dx = points[u].0 - points[v].0;
                    let dy = points[u].1 - points[v].1;
                    let d2 = dx * dx + dy * dy;
                    if d2 <= r2 {
                        candidates.push((v, d2));
                    }
                }
            }
        }
        // Emit in ascending-v order, matching the all-pairs inner loop.
        candidates.sort_unstable_by_key(|&(v, _)| v);
        for &(v, d2) in candidates.iter() {
            g.add_edge(u, v, d2.sqrt().max(f64::MIN_POSITIVE));
        }
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `attach` vertices and attaches each new vertex to `attach` distinct
/// existing vertices chosen proportionally to degree (unit weights).
///
/// # Panics
///
/// Panics if `attach == 0` or `attach >= n`.
#[must_use]
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, attach: usize, rng: &mut R) -> Graph {
    assert!(attach >= 1, "attachment parameter must be at least 1");
    assert!(attach < n, "attachment parameter must be smaller than n");
    let mut g = Graph::new(n);
    // Seed clique.
    for u in 0..attach {
        for v in (u + 1)..attach {
            g.add_unit_edge(u, v);
        }
    }
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::new();
    for (_, e) in g.edges() {
        endpoints.push(e.source().index());
        endpoints.push(e.target().index());
    }
    if endpoints.is_empty() {
        // attach == 1: seed "clique" has no edges, sample uniformly instead.
        endpoints.push(0);
    }
    for v in attach.max(1)..n {
        let mut chosen = Vec::with_capacity(attach);
        let mut guard = 0;
        while chosen.len() < attach && guard < 100 * attach {
            guard += 1;
            let &candidate = endpoints
                .get(rng.gen_range(0..endpoints.len()))
                .expect("endpoint multiset is non-empty");
            if candidate != v && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        // Fall back to uniform choices if the multiset was too concentrated.
        let mut fallback = 0usize;
        while chosen.len() < attach {
            if fallback != v && !chosen.contains(&fallback) {
                chosen.push(fallback);
            }
            fallback += 1;
        }
        for &u in &chosen {
            g.add_unit_edge(v, u);
            endpoints.push(v);
            endpoints.push(u);
        }
    }
    g
}

/// Watts–Strogatz small-world ring: each vertex is connected to its `k`
/// nearest neighbours on a ring (k must be even), then each edge is rewired to
/// a random endpoint with probability `beta` (unit weights).
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
#[must_use]
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k.is_multiple_of(2), "ring degree k must be even");
    assert!(k < n, "ring degree k must be smaller than n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut g = Graph::new(n);
    for v in 0..n {
        for step in 1..=(k / 2) {
            let u = (v + step) % n;
            let (a, b) = if rng.gen_bool(beta) {
                // Rewire: pick a random non-neighbour target.
                let mut w = rng.gen_range(0..n);
                let mut guard = 0;
                while (w == v || g.has_edge_between(v, w)) && guard < 4 * n {
                    w = rng.gen_range(0..n);
                    guard += 1;
                }
                if w == v || g.has_edge_between(v, w) {
                    (v, u)
                } else {
                    (v, w)
                }
            } else {
                (v, u)
            };
            if a != b && !g.has_edge_between(a, b) {
                g.add_unit_edge(a, b);
            }
        }
    }
    g
}

/// A ring of `cliques` cliques of size `clique_size` each, with consecutive
/// cliques joined by a single bridge edge (unit weights). This family has
/// many small cuts and is a stress test for fault tolerance: removing a
/// bridge endpoint separates the ring locally.
///
/// # Panics
///
/// Panics if `cliques < 3` or `clique_size < 1`.
#[must_use]
pub fn ring_of_cliques(cliques: usize, clique_size: usize) -> Graph {
    assert!(cliques >= 3, "need at least three cliques to form a ring");
    assert!(clique_size >= 1, "cliques must be non-empty");
    let n = cliques * clique_size;
    let mut g = Graph::new(n);
    for c in 0..cliques {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                g.add_unit_edge(base + i, base + j);
            }
        }
        // Bridge from the last vertex of this clique to the first of the next.
        let next_base = ((c + 1) % cliques) * clique_size;
        let from = base + clique_size - 1;
        let to = next_base;
        if !g.has_edge_between(from, to) {
            g.add_unit_edge(from, to);
        }
    }
    g
}

/// A uniformly random labelled tree on `n` vertices (via random attachment to
/// a random earlier vertex), plus `chords` extra uniformly random non-tree
/// edges, all unit weight.
#[must_use]
pub fn random_tree_with_chords<R: Rng + ?Sized>(n: usize, chords: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    overlay_random_spanning_tree(&mut g, rng);
    let max_extra = n.saturating_mul(n.saturating_sub(1)) / 2 - g.edge_count();
    let chords = chords.min(max_extra);
    let mut added = 0;
    let mut guard = 0;
    while added < chords && guard < 100 * (chords + 1) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge_between(u, v) {
            g.add_unit_edge(u, v);
            added += 1;
        }
    }
    g
}

/// Returns a copy of `g` with every edge weight replaced by an independent
/// uniform draw from `[lo, hi)`. Useful for turning any unit-weighted
/// generator output into a weighted workload.
///
/// # Panics
///
/// Panics if `lo` is negative or `lo >= hi`.
#[must_use]
pub fn with_random_weights<R: Rng + ?Sized>(g: &Graph, lo: f64, hi: f64, rng: &mut R) -> Graph {
    assert!(
        lo >= 0.0 && lo < hi,
        "weight range must satisfy 0 <= lo < hi"
    );
    let mut out = Graph::with_capacity(g.vertex_count(), g.edge_count());
    for (_, e) in g.edges() {
        let (u, v) = e.endpoints();
        out.add_edge(u.index(), v.index(), rng.gen_range(lo..hi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng(1);
        let empty = gnp(10, 0.0, &mut r);
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, &mut r);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_density_is_roughly_p() {
        let mut r = rng(2);
        let g = gnp(200, 0.1, &mut r);
        let possible = 200.0 * 199.0 / 2.0;
        let density = g.edge_count() as f64 / possible;
        assert!(
            (density - 0.1).abs() < 0.02,
            "density {density} too far from 0.1"
        );
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let mut r = rng(3);
        for &m in &[0usize, 1, 10, 100, 190] {
            let g = gnm(20, m, &mut r);
            assert_eq!(g.edge_count(), m);
        }
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn gnm_rejects_too_many_edges() {
        let mut r = rng(4);
        let _ = gnm(5, 11, &mut r);
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut r = rng(5);
        for seed in 0..5u64 {
            let mut rr = rng(seed);
            let g = connected_gnp(60, 0.02, &mut rr);
            assert!(is_connected(&g));
        }
        let g = connected_gnp(1, 0.5, &mut r);
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn complete_path_cycle_star_sizes() {
        assert_eq!(complete(6).edge_count(), 15);
        assert_eq!(path(6).edge_count(), 5);
        assert_eq!(cycle(6).edge_count(), 6);
        assert_eq!(star(6).edge_count(), 5);
        assert_eq!(path(0).vertex_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        // Horizontal: 3 rows * 3 = 9; vertical: 2 * 4 = 8.
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
        assert!(g.has_edge_between(0, 1));
        assert!(g.has_edge_between(0, 4));
        assert!(!g.has_edge_between(3, 4)); // row wrap must not connect
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.vertex_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.max_degree(), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_geometric_weights_match_radius() {
        let mut r = rng(6);
        let g = random_geometric(80, 0.3, &mut r);
        for (_, e) in g.edges() {
            assert!(e.weight() <= 0.3 + 1e-12);
            assert!(e.weight() > 0.0);
        }
        assert!(!g.is_unit_weighted() || g.edge_count() == 0);
    }

    #[test]
    fn barabasi_albert_edge_count_and_connectivity() {
        let mut r = rng(7);
        let g = barabasi_albert(100, 3, &mut r);
        assert_eq!(g.vertex_count(), 100);
        // Seed clique has 3 edges; each of the 97 later vertices adds 3.
        assert_eq!(g.edge_count(), 3 + 97 * 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn barabasi_albert_attach_one_builds_a_tree() {
        let mut r = rng(8);
        let g = barabasi_albert(50, 1, &mut r);
        assert_eq!(g.edge_count(), 49);
        assert!(is_connected(&g));
    }

    #[test]
    fn watts_strogatz_degree_and_connectivity() {
        let mut r = rng(9);
        let g = watts_strogatz(60, 4, 0.0, &mut r);
        // beta = 0: pure ring lattice, every vertex has degree exactly 4.
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
        let g = watts_strogatz(60, 4, 0.3, &mut r);
        assert!(g.edge_count() > 0);
        assert_eq!(g.vertex_count(), 60);
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(4, 5);
        assert_eq!(g.vertex_count(), 20);
        // 4 cliques of C(5,2)=10 edges plus 4 bridges.
        assert_eq!(g.edge_count(), 44);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_tree_with_chords_edge_count() {
        let mut r = rng(10);
        let g = random_tree_with_chords(40, 15, &mut r);
        assert_eq!(g.edge_count(), 39 + 15);
        assert!(is_connected(&g));
        // Zero chords gives exactly a tree.
        let t = random_tree_with_chords(40, 0, &mut rng(11));
        assert_eq!(t.edge_count(), 39);
    }

    #[test]
    fn with_random_weights_preserves_topology() {
        let mut r = rng(12);
        let g = grid(4, 4);
        let w = with_random_weights(&g, 1.0, 5.0, &mut r);
        assert_eq!(w.edge_count(), g.edge_count());
        assert_eq!(w.vertex_count(), g.vertex_count());
        for (_, e) in w.edges() {
            assert!(e.weight() >= 1.0 && e.weight() < 5.0);
            let (u, v) = e.endpoints();
            assert!(g.has_edge_between(u.index(), v.index()));
        }
        assert!(!w.is_unit_weighted());
    }

    /// The historical all-pairs geometric loop, kept as the reference the
    /// grid-indexed fast path must reproduce bit for bit.
    fn random_geometric_naive<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let mut g = Graph::new(n);
        let r2 = radius * radius;
        for u in 0..n {
            for v in (u + 1)..n {
                let dx = points[u].0 - points[v].0;
                let dy = points[u].1 - points[v].1;
                let d2 = dx * dx + dy * dy;
                if d2 <= r2 {
                    g.add_edge(u, v, d2.sqrt().max(f64::MIN_POSITIVE));
                }
            }
        }
        g
    }

    #[test]
    fn random_geometric_grid_matches_naive_reference_bit_for_bit() {
        for seed in [1u64, 2, 3, 6, 99] {
            for &(n, radius) in &[(60usize, 0.25f64), (120, 0.1), (40, 0.9), (25, 0.0)] {
                let fast = random_geometric(n, radius, &mut rng(seed));
                let naive = random_geometric_naive(n, radius, &mut rng(seed));
                assert_eq!(fast.edge_count(), naive.edge_count(), "n={n} r={radius}");
                for (e, edge) in naive.edges() {
                    let got = fast.edge(e);
                    assert_eq!(got.endpoints(), edge.endpoints(), "seed {seed} edge {e}");
                    assert_eq!(
                        got.weight().to_bits(),
                        edge.weight().to_bits(),
                        "seed {seed} edge {e}: weights must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn gnp_skip_sampling_is_deterministic_and_has_the_right_density() {
        let n = 4096; // above GNP_SKIP_THRESHOLD: exercises the skip path
        let p = 0.002;
        let a = gnp(n, p, &mut rng(77));
        let b = gnp(n, p, &mut rng(77));
        let edges_a: Vec<_> = a.edges().map(|(_, e)| e.endpoints()).collect();
        let edges_b: Vec<_> = b.edges().map(|(_, e)| e.endpoints()).collect();
        assert_eq!(edges_a, edges_b, "skip sampling must be seed-deterministic");
        let possible = n as f64 * (n as f64 - 1.0) / 2.0;
        let density = a.edge_count() as f64 / possible;
        assert!(
            (density - p).abs() < p * 0.1,
            "density {density} too far from {p}"
        );
        // Pairs arrive in ascending linearized order, hence simple and sorted.
        let mut prev = (0usize, 0usize);
        for (_, e) in a.edges() {
            let (u, v) = e.endpoints();
            let cur = (u.index(), v.index());
            assert!(cur > prev || a.edge_count() <= 1);
            assert!(u < v);
            prev = cur;
        }
    }

    #[test]
    fn gnp_skip_sampling_handles_extreme_probabilities() {
        let empty = gnp(3000, 0.0, &mut rng(5));
        assert_eq!(empty.edge_count(), 0);
        // Drive the sampler directly at small n so the p = 1 all-pairs branch
        // and a near-1 probability stay cheap to verify.
        let mut g = Graph::new(30);
        gnp_skip_sample(30, 1.0, &mut g, &mut rng(5));
        assert_eq!(g.edge_count(), 30 * 29 / 2);
        let mut dense = Graph::new(40);
        gnp_skip_sample(40, 0.97, &mut dense, &mut rng(5));
        let possible = 40 * 39 / 2;
        assert!(dense.edge_count() <= possible);
        assert!(dense.edge_count() > possible * 9 / 10);
    }

    #[test]
    fn generators_are_deterministic_given_a_seed() {
        let a = gnp(50, 0.2, &mut rng(42));
        let b = gnp(50, 0.2, &mut rng(42));
        assert_eq!(a.edge_count(), b.edge_count());
        let edges_a: Vec<_> = a.edges().map(|(_, e)| e.endpoints()).collect();
        let edges_b: Vec<_> = b.edges().map(|(_, e)| e.endpoints()).collect();
        assert_eq!(edges_a, edges_b);
    }
}
