//! Undirected edges with optional weights.

use core::fmt;

use crate::VertexId;

/// An undirected edge `{u, v}` with a non-negative weight.
///
/// Unweighted graphs are represented with every weight equal to `1.0`; the
/// spanner algorithms in the `ftspan` crate check
/// [`Graph::is_unit_weighted`](crate::Graph::is_unit_weighted) when they need
/// to distinguish the two cases.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{vid, Edge};
///
/// let e = Edge::new(vid(0), vid(3), 2.5);
/// assert_eq!(e.endpoints(), (vid(0), vid(3)));
/// assert_eq!(e.other_endpoint(vid(3)), Some(vid(0)));
/// assert_eq!(e.weight(), 2.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    u: VertexId,
    v: VertexId,
    weight: f64,
}

impl Edge {
    /// Creates a new edge between `u` and `v` with the given weight.
    ///
    /// Endpoints are stored in normalized order (smaller identifier first) so
    /// that `Edge::new(a, b, w) == Edge::new(b, a, w)`.
    #[must_use]
    pub fn new(u: VertexId, v: VertexId, weight: f64) -> Self {
        let (u, v) = if u <= v { (u, v) } else { (v, u) };
        Self { u, v, weight }
    }

    /// Creates a unit-weight edge between `u` and `v`.
    #[must_use]
    pub fn unit(u: VertexId, v: VertexId) -> Self {
        Self::new(u, v, 1.0)
    }

    /// Returns both endpoints, smaller identifier first.
    #[inline]
    #[must_use]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Returns the endpoint with the smaller identifier.
    #[inline]
    #[must_use]
    pub fn source(&self) -> VertexId {
        self.u
    }

    /// Returns the endpoint with the larger identifier.
    #[inline]
    #[must_use]
    pub fn target(&self) -> VertexId {
        self.v
    }

    /// Returns the weight of the edge.
    #[inline]
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Returns `true` if `x` is one of the two endpoints.
    #[inline]
    #[must_use]
    pub fn is_incident_to(&self, x: VertexId) -> bool {
        self.u == x || self.v == x
    }

    /// Returns the endpoint opposite `x`, or `None` if `x` is not an endpoint.
    #[inline]
    #[must_use]
    pub fn other_endpoint(&self, x: VertexId) -> Option<VertexId> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}} (w={})", self.u, self.v, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vid;

    #[test]
    fn endpoints_are_normalized() {
        let a = Edge::new(vid(5), vid(2), 1.0);
        let b = Edge::new(vid(2), vid(5), 1.0);
        assert_eq!(a, b);
        assert_eq!(a.endpoints(), (vid(2), vid(5)));
        assert_eq!(a.source(), vid(2));
        assert_eq!(a.target(), vid(5));
    }

    #[test]
    fn unit_edge_has_weight_one() {
        assert_eq!(Edge::unit(vid(0), vid(1)).weight(), 1.0);
    }

    #[test]
    fn incidence_and_other_endpoint() {
        let e = Edge::new(vid(3), vid(7), 2.0);
        assert!(e.is_incident_to(vid(3)));
        assert!(e.is_incident_to(vid(7)));
        assert!(!e.is_incident_to(vid(4)));
        assert_eq!(e.other_endpoint(vid(3)), Some(vid(7)));
        assert_eq!(e.other_endpoint(vid(7)), Some(vid(3)));
        assert_eq!(e.other_endpoint(vid(0)), None);
    }

    #[test]
    fn display_mentions_both_endpoints_and_weight() {
        let e = Edge::new(vid(1), vid(2), 3.5);
        let s = format!("{e}");
        assert!(s.contains("v1"));
        assert!(s.contains("v2"));
        assert!(s.contains("3.5"));
    }
}
