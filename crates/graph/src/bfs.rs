//! Breadth-first search on graph views: hop distances and hop-bounded paths.
//!
//! BFS is the workhorse of the paper's polynomial-time algorithm: the
//! Length-Bounded Cut approximation (Algorithm 2) repeatedly asks for a path
//! of at most `t` hops between two terminals in the current spanner with a
//! growing fault set applied, which is exactly [`shortest_hop_path_within`].

use std::collections::VecDeque;

use crate::{EdgeId, GraphView, VertexId};

/// A simple (vertex- and edge-listing) path found by BFS.
///
/// `vertices` always starts at the source and ends at the target;
/// `edges[i]` connects `vertices[i]` and `vertices[i + 1]`, so
/// `edges.len() == vertices.len() - 1` and the hop length of the path is
/// `edges.len()`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HopPath {
    /// Vertices along the path, source first, target last.
    pub vertices: Vec<VertexId>,
    /// Edges along the path, in order.
    pub edges: Vec<EdgeId>,
}

impl HopPath {
    /// Number of edges (hops) on the path.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.edges.len()
    }

    /// Interior vertices of the path (everything except the two endpoints).
    ///
    /// These are exactly the vertices that the Length-Bounded Cut
    /// approximation adds to its growing fault set.
    #[must_use]
    pub fn interior_vertices(&self) -> &[VertexId] {
        if self.vertices.len() <= 2 {
            &[]
        } else {
            &self.vertices[1..self.vertices.len() - 1]
        }
    }

    /// Total weight of the path under the given view.
    #[must_use]
    pub fn total_weight<V: GraphView>(&self, view: &V) -> f64 {
        self.edges.iter().map(|&e| view.edge_weight(e)).sum()
    }
}

/// Computes hop (unweighted) distances from `source` to every vertex.
///
/// Returns a vector indexed by vertex id; unreachable or faulted vertices map
/// to `None`. If `source` itself is faulted every entry is `None`.
///
/// # Examples
///
/// ```
/// use ftspan_graph::{bfs::bfs_hop_distances, vid, Graph};
///
/// let mut g = Graph::new(4);
/// g.add_unit_edge(0, 1);
/// g.add_unit_edge(1, 2);
/// let dist = bfs_hop_distances(&g, vid(0));
/// assert_eq!(dist[2], Some(2));
/// assert_eq!(dist[3], None);
/// ```
#[must_use]
pub fn bfs_hop_distances<V: GraphView>(view: &V, source: VertexId) -> Vec<Option<u32>> {
    let n = view.vertex_count();
    let mut dist = vec![None; n];
    if !view.contains_vertex(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued vertex must have a distance");
        for (v, _) in view.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Hop distance between `source` and `target`, or `None` if disconnected (or
/// either endpoint is faulted).
#[must_use]
pub fn hop_distance<V: GraphView>(view: &V, source: VertexId, target: VertexId) -> Option<u32> {
    if !view.contains_vertex(source) || !view.contains_vertex(target) {
        return None;
    }
    if source == target {
        return Some(0);
    }
    // Early-exit BFS.
    let n = view.vertex_count();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued vertex must have a distance");
        for (v, _) in view.neighbors(u) {
            if dist[v.index()].is_none() {
                if v == target {
                    return Some(du + 1);
                }
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    None
}

/// Finds a shortest (by hop count) path from `source` to `target`, or `None`
/// if no path exists in the view.
#[must_use]
pub fn shortest_hop_path<V: GraphView>(
    view: &V,
    source: VertexId,
    target: VertexId,
) -> Option<HopPath> {
    shortest_hop_path_within(view, source, target, u32::MAX)
}

/// Finds a shortest hop path of at most `max_hops` edges from `source` to
/// `target`, or `None` if every path needs more than `max_hops` hops (or the
/// endpoints are disconnected / faulted).
///
/// The search stops expanding once the BFS frontier exceeds `max_hops`, so the
/// running time is `O(m + n)` in the worst case but typically much less for
/// small `max_hops` — this is the primitive called `O(α)` times per edge by
/// the paper's Algorithm 2.
#[must_use]
pub fn shortest_hop_path_within<V: GraphView>(
    view: &V,
    source: VertexId,
    target: VertexId,
    max_hops: u32,
) -> Option<HopPath> {
    // One implementation serves both this one-shot form and the pooled
    // [`HopBfsScratch`] form — their exact agreement is a load-bearing
    // contract for the incremental LBC engine, so there is nothing to
    // drift.
    let mut path = HopPath::default();
    HopBfsScratch::new()
        .find_path_into(view, source, target, max_hops, &mut path)
        .then_some(path)
}

/// Computes the eccentricity (maximum hop distance to any reachable vertex)
/// of `source`, ignoring unreachable vertices. Returns `None` if `source` is
/// faulted.
#[must_use]
pub fn eccentricity<V: GraphView>(view: &V, source: VertexId) -> Option<u32> {
    if !view.contains_vertex(source) {
        return None;
    }
    Some(
        bfs_hop_distances(view, source)
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0),
    )
}

/// Reusable buffers for repeated hop-bounded BFS runs.
///
/// Repair and serving layers run a BFS per damaged element to collect the
/// affected neighbourhood; a scratch instance keeps the distance array and
/// queue allocations alive across those runs (resizing to each view's vertex
/// count), mirroring [`crate::dijkstra::DijkstraScratch`] for the unweighted
/// case.
///
/// # Examples
///
/// ```
/// use ftspan_graph::bfs::BfsScratch;
/// use ftspan_graph::{vid, Graph};
///
/// let mut g = Graph::new(4);
/// g.add_unit_edge(0, 1);
/// g.add_unit_edge(1, 2);
/// g.add_unit_edge(2, 3);
/// let mut scratch = BfsScratch::new();
/// let dist = scratch.hop_distances_within(&g, vid(0), 2);
/// assert_eq!(dist[2], Some(2));
/// assert_eq!(dist[3], None); // beyond the hop budget
/// ```
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    dist: Vec<Option<u32>>,
    queue: VecDeque<VertexId>,
}

impl BfsScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes hop distances from `source`, exploring at most `max_hops`
    /// levels. Vertices farther than the budget (or unreachable, or faulted)
    /// map to `None`. The returned slice borrows the scratch and is valid
    /// until the next run.
    pub fn hop_distances_within<V: GraphView>(
        &mut self,
        view: &V,
        source: VertexId,
        max_hops: u32,
    ) -> &[Option<u32>] {
        self.multi_source_hop_distances(view, [source], max_hops)
    }

    /// Computes hop distances from the nearest of several sources (the
    /// "ball around the damage" primitive of repair layers), exploring at
    /// most `max_hops` levels. Out-of-range, faulted, and duplicate seeds
    /// are ignored. The returned slice borrows the scratch and is valid
    /// until the next run.
    pub fn multi_source_hop_distances<V, I>(
        &mut self,
        view: &V,
        sources: I,
        max_hops: u32,
    ) -> &[Option<u32>]
    where
        V: GraphView,
        I: IntoIterator<Item = VertexId>,
    {
        let n = view.vertex_count();
        self.dist.clear();
        self.dist.resize(n, None);
        self.queue.clear();
        for s in sources {
            if s.index() < n && view.contains_vertex(s) && self.dist[s.index()].is_none() {
                self.dist[s.index()] = Some(0);
                self.queue.push_back(s);
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()].expect("queued vertex must have a distance");
            if du >= max_hops {
                continue;
            }
            for (v, _) in view.neighbors(u) {
                if self.dist[v.index()].is_none() {
                    self.dist[v.index()] = Some(du + 1);
                    self.queue.push_back(v);
                }
            }
        }
        &self.dist
    }
}

/// Reusable buffers for repeated hop-bounded *path* searches, plus a
/// batched same-source mode.
///
/// [`shortest_hop_path_within`] allocates a distance array, a parent array,
/// a queue, and two path vectors per call — `O(n)` setup for searches whose
/// useful work is often a small ball. The Length-Bounded Cut decision runs
/// up to `α + 1` such searches *per candidate edge*, so a repair wave pays
/// that setup thousands of times. This scratch keeps every buffer alive
/// across searches and clears in `O(1)` via epoch stamps.
///
/// Two modes are provided:
///
/// * [`HopBfsScratch::find_path_into`] — one early-exit search, reusing the
///   buffers; the found path is bit-identical to
///   [`shortest_hop_path_within`]'s.
/// * [`HopBfsScratch::build_tree`] + [`HopBfsScratch::tree_path_into`] — one
///   hop-bounded BFS **tree** from a source, from which paths to *many*
///   targets can be extracted without further traversals. This is the
///   batched primitive behind the incremental LBC engine: consecutive
///   candidates sharing a source (and an unchanged graph) are all decided
///   against one pass.
///
/// Bit-identity of the two modes: BFS assigns each vertex its parent at
/// first discovery and never reassigns it, and the discovery order is fully
/// determined by the view's neighbor order. The early-exit search merely
/// stops expanding once the target is discovered, so every vertex discovered
/// before that point — in particular the whole parent chain of the target —
/// carries exactly the parent the full tree records. Paths extracted from
/// either mode are therefore identical, which is what lets the incremental
/// engine swap one for the other without changing any decision.
#[derive(Clone, Debug, Default)]
pub struct HopBfsScratch {
    /// Set ⇔ the vertex was discovered by the current search.
    mark: crate::EpochMarks,
    dist: Vec<u32>,
    parent_vertex: Vec<u32>,
    parent_edge: Vec<u32>,
    queue: VecDeque<VertexId>,
    /// Source of the tree currently held (see [`HopBfsScratch::build_tree`]).
    tree_source: Option<VertexId>,
}

impl HopBfsScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new search: bumps the mark epoch (O(1) clear) and resizes
    /// the per-vertex arrays for `n` vertices.
    fn begin(&mut self, n: usize) {
        self.mark.begin(n);
        let backed = self.mark.len();
        if self.dist.len() < backed {
            self.dist.resize(backed, 0);
            self.parent_vertex.resize(backed, 0);
            self.parent_edge.resize(backed, 0);
        }
        self.queue.clear();
        self.tree_source = None;
    }

    #[inline]
    fn discovered(&self, v: VertexId) -> bool {
        self.mark.is_set(v.index())
    }

    #[inline]
    fn discover(&mut self, v: VertexId, dist: u32, parent: Option<(VertexId, EdgeId)>) {
        let i = v.index();
        self.mark.set(i);
        self.dist[i] = dist;
        if let Some((pv, pe)) = parent {
            self.parent_vertex[i] = pv.as_u32();
            self.parent_edge[i] = pe.index() as u32;
        }
    }

    /// Finds a shortest hop path of at most `max_hops` edges from `source`
    /// to `target`, writing it into `out` and returning `true`, or returns
    /// `false` when no such path exists. The search and the found path are
    /// bit-identical to [`shortest_hop_path_within`]; only the storage is
    /// pooled.
    pub fn find_path_into<V: GraphView>(
        &mut self,
        view: &V,
        source: VertexId,
        target: VertexId,
        max_hops: u32,
        out: &mut HopPath,
    ) -> bool {
        out.vertices.clear();
        out.edges.clear();
        if !view.contains_vertex(source) || !view.contains_vertex(target) {
            return false;
        }
        if source == target {
            out.vertices.push(source);
            return true;
        }
        if max_hops == 0 {
            return false;
        }
        self.begin(view.vertex_count());
        self.discover(source, 0, None);
        self.queue.push_back(source);
        'search: while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if du >= max_hops {
                continue;
            }
            for (v, e) in view.neighbors(u) {
                if !self.discovered(v) {
                    self.discover(v, du + 1, Some((u, e)));
                    if v == target {
                        break 'search;
                    }
                    self.queue.push_back(v);
                }
            }
        }
        if !self.discovered(target) {
            return false;
        }
        self.reconstruct_into(source, target, out);
        true
    }

    /// Runs one hop-bounded BFS from `source`, keeping the whole tree in the
    /// scratch. Afterwards [`HopBfsScratch::tree_dist`] answers the hop
    /// distance to every vertex and [`HopBfsScratch::tree_path_into`]
    /// extracts paths — this is the "decide several same-source candidates
    /// per pass" primitive. The tree is valid until the next search on this
    /// scratch.
    pub fn build_tree<V: GraphView>(&mut self, view: &V, source: VertexId, max_hops: u32) {
        self.begin(view.vertex_count());
        if !view.contains_vertex(source) {
            return;
        }
        self.discover(source, 0, None);
        self.tree_source = Some(source);
        self.queue.push_back(source);
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if du >= max_hops {
                continue;
            }
            for (v, e) in view.neighbors(u) {
                if !self.discovered(v) {
                    self.discover(v, du + 1, Some((u, e)));
                    self.queue.push_back(v);
                }
            }
        }
    }

    /// Source of the currently held tree, if any.
    #[must_use]
    pub fn tree_source(&self) -> Option<VertexId> {
        self.tree_source
    }

    /// Hop distance from the tree's source to `v`, or `None` when `v` was
    /// out of the hop budget (or unreachable, or faulted, or no tree is
    /// held).
    #[must_use]
    pub fn tree_dist(&self, v: VertexId) -> Option<u32> {
        self.tree_source?;
        (v.index() < self.mark.len() && self.discovered(v)).then(|| self.dist[v.index()])
    }

    /// Extracts the tree path from the source to `target` into `out`,
    /// returning `true` on success (`false` when `target` is outside the
    /// tree). The path equals the one an early-exit search
    /// ([`HopBfsScratch::find_path_into`] / [`shortest_hop_path_within`])
    /// from the same source would find.
    pub fn tree_path_into(&self, target: VertexId, out: &mut HopPath) -> bool {
        out.vertices.clear();
        out.edges.clear();
        let Some(source) = self.tree_source else {
            return false;
        };
        if target.index() >= self.mark.len() || !self.discovered(target) {
            return false;
        }
        if source == target {
            out.vertices.push(source);
            return true;
        }
        self.reconstruct_into(source, target, out);
        true
    }

    /// Walks parent pointers from `target` back to `source`, writing the
    /// forward-ordered path into `out`.
    fn reconstruct_into(&self, source: VertexId, target: VertexId, out: &mut HopPath) {
        out.vertices.push(target);
        let mut cur = target;
        while cur != source {
            let prev = VertexId::new(self.parent_vertex[cur.index()] as usize);
            out.edges
                .push(EdgeId::new(self.parent_edge[cur.index()] as usize));
            out.vertices.push(prev);
            cur = prev;
        }
        out.vertices.reverse();
        out.edges.reverse();
        debug_assert_eq!(out.vertices.len(), out.edges.len() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vid, FaultView, Graph};

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_unit_edge(i, i + 1);
        }
        g
    }

    fn grid3x3() -> Graph {
        // 0 1 2
        // 3 4 5
        // 6 7 8
        let mut g = Graph::new(9);
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    g.add_unit_edge(i, i + 1);
                }
                if r + 1 < 3 {
                    g.add_unit_edge(i, i + 3);
                }
            }
        }
        g
    }

    #[test]
    fn distances_on_a_path() {
        let g = path_graph(5);
        let dist = bfs_hop_distances(&g, vid(0));
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn unreachable_vertices_have_no_distance() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        let dist = bfs_hop_distances(&g, vid(0));
        assert_eq!(dist[2], None);
        assert_eq!(dist[3], None);
    }

    #[test]
    fn faulted_source_yields_all_none() {
        let g = path_graph(3);
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(0));
        let dist = bfs_hop_distances(&view, vid(0));
        assert!(dist.iter().all(Option::is_none));
        assert_eq!(hop_distance(&view, vid(0), vid(2)), None);
        assert_eq!(eccentricity(&view, vid(0)), None);
    }

    #[test]
    fn hop_distance_matches_full_bfs() {
        let g = grid3x3();
        for s in 0..9 {
            let dist = bfs_hop_distances(&g, vid(s));
            for (t, &expected) in dist.iter().enumerate() {
                assert_eq!(hop_distance(&g, vid(s), vid(t)), expected);
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = grid3x3();
        let p = shortest_hop_path(&g, vid(0), vid(8)).unwrap();
        assert_eq!(p.hop_count(), 4);
        assert_eq!(p.vertices.first(), Some(&vid(0)));
        assert_eq!(p.vertices.last(), Some(&vid(8)));
        // Consecutive vertices are connected by the listed edges.
        for (i, &e) in p.edges.iter().enumerate() {
            let (a, b) = g.edge(e).endpoints();
            let (x, y) = (p.vertices[i], p.vertices[i + 1]);
            assert!((a, b) == (x, y) || (a, b) == (y, x));
        }
    }

    #[test]
    fn trivial_path_when_source_equals_target() {
        let g = path_graph(3);
        let p = shortest_hop_path(&g, vid(1), vid(1)).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.vertices, vec![vid(1)]);
        assert!(p.interior_vertices().is_empty());
    }

    #[test]
    fn hop_bound_excludes_long_paths() {
        let g = path_graph(6);
        assert!(shortest_hop_path_within(&g, vid(0), vid(5), 5).is_some());
        assert!(shortest_hop_path_within(&g, vid(0), vid(5), 4).is_none());
        assert!(shortest_hop_path_within(&g, vid(0), vid(5), 0).is_none());
        assert!(shortest_hop_path_within(&g, vid(0), vid(0), 0).is_some());
    }

    #[test]
    fn hop_bound_finds_detour_only_if_within_budget() {
        // Square 0-1-2-3-0 plus a chord 0-2: removing the chord forces 2 hops.
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(1, 2);
        g.add_unit_edge(2, 3);
        g.add_unit_edge(3, 0);
        let chord = g.add_unit_edge(0, 2);
        let mut view = FaultView::new(&g);
        view.block_edge(chord);
        let p = shortest_hop_path_within(&view, vid(0), vid(2), 2).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert!(shortest_hop_path_within(&view, vid(0), vid(2), 1).is_none());
    }

    #[test]
    fn interior_vertices_excludes_endpoints() {
        let g = path_graph(4);
        let p = shortest_hop_path(&g, vid(0), vid(3)).unwrap();
        assert_eq!(p.interior_vertices(), &[vid(1), vid(2)]);
        let p = shortest_hop_path(&g, vid(0), vid(1)).unwrap();
        assert!(p.interior_vertices().is_empty());
    }

    #[test]
    fn path_respects_vertex_faults() {
        let g = grid3x3();
        let mut view = FaultView::new(&g);
        // Block the middle column.
        view.block_vertex(vid(1));
        view.block_vertex(vid(4));
        view.block_vertex(vid(7));
        assert!(shortest_hop_path(&view, vid(0), vid(2)).is_none());
        assert_eq!(hop_distance(&view, vid(0), vid(6)), Some(2));
    }

    #[test]
    fn path_total_weight_uses_view_weights() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        let p = shortest_hop_path(&g, vid(0), vid(2)).unwrap();
        assert!((p.total_weight(&g) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn eccentricity_of_path_endpoints() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, vid(0)), Some(4));
        assert_eq!(eccentricity(&g, vid(2)), Some(2));
    }

    #[test]
    fn bfs_scratch_matches_unbounded_bfs_within_budget() {
        let g = grid3x3();
        let mut scratch = BfsScratch::new();
        let bounded = scratch.hop_distances_within(&g, vid(0), u32::MAX).to_vec();
        assert_eq!(bounded, bfs_hop_distances(&g, vid(0)));
    }

    #[test]
    fn bfs_scratch_respects_hop_budget_and_faults() {
        let g = path_graph(6);
        let mut scratch = BfsScratch::new();
        let dist = scratch.hop_distances_within(&g, vid(0), 3);
        assert_eq!(dist[3], Some(3));
        assert_eq!(dist[4], None);

        let mut view = FaultView::new(&g);
        view.block_vertex(vid(2));
        let dist = scratch.hop_distances_within(&view, vid(0), 5);
        assert_eq!(dist[1], Some(1));
        assert_eq!(dist[2], None);
        assert_eq!(dist[3], None);

        // Faulted source yields all-None.
        let dist = scratch.hop_distances_within(&view, vid(2), 5);
        assert!(dist.iter().all(Option::is_none));
    }

    #[test]
    fn multi_source_bfs_takes_nearest_seed_distance() {
        let g = path_graph(10); // 0-1-...-9
        let mut scratch = BfsScratch::new();
        let dist = scratch.multi_source_hop_distances(&g, [vid(0), vid(9)], 3);
        assert_eq!(dist[0], Some(0));
        assert_eq!(dist[9], Some(0));
        assert_eq!(dist[2], Some(2));
        assert_eq!(dist[7], Some(2));
        assert_eq!(dist[4], None); // 4 hops from either seed, budget 3
                                   // Out-of-range and duplicate seeds are tolerated; no seeds → all None.
        let dist = scratch.multi_source_hop_distances(&g, [vid(1), vid(1), vid(99)], 1);
        assert_eq!(dist[1], Some(0));
        assert_eq!(dist[2], Some(1));
        let dist = scratch.multi_source_hop_distances(&g, [], 5);
        assert!(dist.iter().all(Option::is_none));
    }

    #[test]
    fn hop_bfs_scratch_find_path_matches_free_function() {
        let g = grid3x3();
        let mut scratch = HopBfsScratch::new();
        let mut out = HopPath::default();
        for s in 0..9 {
            for t in 0..9 {
                for budget in [0u32, 1, 2, 4, u32::MAX] {
                    let reference = shortest_hop_path_within(&g, vid(s), vid(t), budget);
                    let found = scratch.find_path_into(&g, vid(s), vid(t), budget, &mut out);
                    assert_eq!(found, reference.is_some());
                    if let Some(p) = reference {
                        assert_eq!(out, p, "s={s} t={t} budget={budget}");
                    }
                }
            }
        }
        // Under faults too.
        let mut view = FaultView::new(&g);
        view.block_vertex(vid(4));
        let reference = shortest_hop_path_within(&view, vid(0), vid(8), 6).unwrap();
        assert!(scratch.find_path_into(&view, vid(0), vid(8), 6, &mut out));
        assert_eq!(out, reference);
    }

    #[test]
    fn hop_bfs_tree_paths_equal_early_exit_paths() {
        // The batched mode's contract: a tree path to any target equals the
        // early-exit search's path from the same source.
        let g = grid3x3();
        let mut tree = HopBfsScratch::new();
        tree.build_tree(&g, vid(0), 3);
        assert_eq!(tree.tree_source(), Some(vid(0)));
        let mut out = HopPath::default();
        for t in 0..9 {
            let reference = shortest_hop_path_within(&g, vid(0), vid(t), 3);
            assert_eq!(
                tree.tree_dist(vid(t)),
                reference.as_ref().map(|p| p.hop_count() as u32)
            );
            let found = tree.tree_path_into(vid(t), &mut out);
            assert_eq!(found, reference.is_some());
            if let Some(p) = reference {
                assert_eq!(out, p);
            }
        }
    }

    #[test]
    fn hop_bfs_tree_respects_budget_and_faults() {
        let g = path_graph(6);
        let mut tree = HopBfsScratch::new();
        tree.build_tree(&g, vid(0), 3);
        assert_eq!(tree.tree_dist(vid(3)), Some(3));
        assert_eq!(tree.tree_dist(vid(4)), None);

        let mut view = FaultView::new(&g);
        view.block_vertex(vid(2));
        tree.build_tree(&view, vid(0), 5);
        assert_eq!(tree.tree_dist(vid(1)), Some(1));
        assert_eq!(tree.tree_dist(vid(3)), None);

        // Faulted source: empty tree.
        tree.build_tree(&view, vid(2), 5);
        assert_eq!(tree.tree_dist(vid(2)), None);
        let mut out = HopPath::default();
        assert!(!tree.tree_path_into(vid(2), &mut out));
    }

    #[test]
    fn hop_bfs_scratch_reuses_buffers_across_searches_and_sizes() {
        let small = path_graph(3);
        let big = path_graph(12);
        let mut scratch = HopBfsScratch::new();
        let mut out = HopPath::default();
        assert!(scratch.find_path_into(&big, vid(0), vid(11), 20, &mut out));
        assert_eq!(out.hop_count(), 11);
        assert!(scratch.find_path_into(&small, vid(2), vid(0), 20, &mut out));
        assert_eq!(out.hop_count(), 2);
        // A fresh search invalidates the previous tree.
        scratch.build_tree(&big, vid(0), 4);
        assert_eq!(scratch.tree_dist(vid(4)), Some(4));
        assert!(scratch.find_path_into(&big, vid(1), vid(2), 3, &mut out));
        assert_eq!(scratch.tree_source(), None);
        assert_eq!(scratch.tree_dist(vid(4)), None);
    }

    #[test]
    fn bfs_scratch_reuses_buffers_across_sizes() {
        let small = path_graph(3);
        let big = path_graph(12);
        let mut scratch = BfsScratch::new();
        assert_eq!(scratch.hop_distances_within(&big, vid(0), 20)[11], Some(11));
        let dist = scratch.hop_distances_within(&small, vid(0), 20);
        assert_eq!(dist.len(), 3);
        assert_eq!(dist[2], Some(2));
    }
}
