//! The core undirected graph data structure, stored in compressed sparse row
//! (CSR) form.

use crate::error::{GraphError, Result};
use crate::{Edge, EdgeId, VertexId};

/// An undirected simple graph with optional edge weights, stored as a
/// compressed-sparse-row adjacency plus a dense edge table.
///
/// Vertices are the dense range `0..n`; edges are identified by [`EdgeId`] in
/// insertion order. The adjacency lives in two layers:
///
/// * a **CSR core** — `offsets: Vec<u32>` into one flat `(neighbor, edge id)`
///   array, with each vertex's slice sorted by neighbor id so
///   [`Graph::edge_between`] is a binary search and traversals walk
///   cache-contiguous memory;
/// * a small **append buffer** of edges added since the last compaction, so
///   incremental construction (the greedy spanner algorithms interleave
///   `add_edge` with reads) stays cheap.
///
/// [`Graph::compact`] merges the buffer into the CSR core; `add_edge` also
/// compacts automatically once the buffer grows past a fraction of the core,
/// so total maintenance cost is `O((n + m) log m)` over any insertion
/// sequence. Serving layers compact once after construction and then read a
/// pure CSR layout. All operations are correct regardless of compaction
/// state; compaction only changes layout (and therefore neighbor iteration
/// order, which is sorted within the core and insertion-ordered in the
/// buffer), never the answer of any query.
///
/// # Examples
///
/// ```
/// use ftspan_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// g.add_edge(2, 3, 2.0);
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.has_edge_between(1, 2));
/// assert!(!g.has_edge_between(0, 3));
/// ```
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    /// CSR offsets: the compacted neighbors of vertex `v` live in
    /// `csr_adj[csr_offsets[v] as usize..csr_offsets[v + 1] as usize]`.
    /// Always `n + 1` entries.
    csr_offsets: Vec<u32>,
    /// Flat `(neighbor, edge id)` pairs; each vertex's slice is sorted by
    /// neighbor id (neighbors are unique because the graph is simple).
    csr_adj: Vec<(VertexId, EdgeId)>,
    /// Per-vertex append buffers for edges added since the last compaction,
    /// in insertion order.
    pending: Vec<Vec<(VertexId, EdgeId)>>,
    /// Number of edges currently represented only in `pending`.
    pending_edges: usize,
    /// Dense edge table indexed by [`EdgeId`].
    edges: Vec<Edge>,
    /// True while every inserted edge has weight exactly 1.0.
    unit_weighted: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Graph {
    /// Creates a graph with `n` isolated vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            csr_offsets: vec![0; n + 1],
            csr_adj: Vec::new(),
            pending: vec![Vec::new(); n],
            pending_edges: 0,
            edges: Vec::new(),
            unit_weighted: true,
        }
    }

    /// Creates a graph with `n` vertices and space reserved for `m` edges.
    #[must_use]
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut g = Self::new(n);
        g.edges.reserve(m);
        g
    }

    /// Creates an empty subgraph skeleton on the same vertex set as `other`:
    /// same number of vertices, no edges. This is the starting point `H = (V, ∅)`
    /// of every greedy spanner construction.
    #[must_use]
    pub fn empty_like(other: &Graph) -> Self {
        Self::with_capacity(other.vertex_count(), other.vertex_count())
    }

    /// Number of vertices `n`.
    #[inline]
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.pending.len()
    }

    /// Number of edges `m`.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns `true` while every edge inserted so far has weight exactly 1.
    ///
    /// Unweighted inputs are represented as unit-weighted graphs; algorithms
    /// use this flag to pick the unweighted code path (for example the
    /// bucket-queue shortest-path-tree builder in
    /// [`crate::dijkstra::DijkstraScratch`]).
    #[inline]
    #[must_use]
    pub fn is_unit_weighted(&self) -> bool {
        self.unit_weighted
    }

    /// Returns `true` when every edge lives in the CSR core (no pending
    /// append buffer). Serving layers compact once after construction so the
    /// query hot path reads a pure flat layout.
    #[inline]
    #[must_use]
    pub fn is_compacted(&self) -> bool {
        self.pending_edges == 0
    }

    /// The compacted CSR slice of vertex `v` (sorted by neighbor id).
    #[inline]
    fn csr_slice(&self, v: usize) -> &[(VertexId, EdgeId)] {
        let start = self.csr_offsets[v] as usize;
        let end = self.csr_offsets[v + 1] as usize;
        &self.csr_adj[start..end]
    }

    /// Merges the pending append buffers into the CSR core.
    ///
    /// After compaction every vertex's neighbors form one contiguous slice
    /// sorted by neighbor id, [`Graph::edge_between`] is a pure binary
    /// search, and traversals touch no per-vertex heap allocations. Calling
    /// this on an already-compacted graph is a no-op. Compaction never
    /// changes vertex or edge identifiers, weights, or any query answer —
    /// only the memory layout and neighbor iteration order.
    pub fn compact(&mut self) {
        if self.pending_edges == 0 {
            return;
        }
        let n = self.vertex_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(2 * self.edges.len());
        offsets.push(0u32);
        for v in 0..n {
            let start = adj.len();
            let old_start = self.csr_offsets[v] as usize;
            let old_end = self.csr_offsets[v + 1] as usize;
            adj.extend_from_slice(&self.csr_adj[old_start..old_end]);
            adj.extend_from_slice(&self.pending[v]);
            adj[start..].sort_unstable_by_key(|&(nbr, _)| nbr);
            offsets.push(u32::try_from(adj.len()).expect("adjacency size exceeds u32::MAX"));
            // Free the buffer outright: a compacted graph carries no slack.
            self.pending[v] = Vec::new();
        }
        self.csr_offsets = offsets;
        self.csr_adj = adj;
        self.pending_edges = 0;
    }

    /// Iterates over all vertex identifiers `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_count()).map(VertexId::new)
    }

    /// Iterates over all edges as `(EdgeId, &Edge)` in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), e))
    }

    /// Iterates over all edge identifiers in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::new)
    }

    /// Returns the edge record for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Returns the edge record for `e`, or `None` if out of range.
    #[inline]
    #[must_use]
    pub fn get_edge(&self, e: EdgeId) -> Option<&Edge> {
        self.edges.get(e.index())
    }

    /// Returns the weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.edges[e.index()].weight()
    }

    /// Returns the degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        self.csr_slice(v.index()).len() + self.pending[v.index()].len()
    }

    /// Iterates over `(neighbor, edge id)` pairs of vertex `v`: first the
    /// CSR core (ascending neighbor id), then any pending appends.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.csr_slice(v.index())
            .iter()
            .copied()
            .chain(self.pending[v.index()].iter().copied())
    }

    /// Returns the identifier of the edge between `u` and `v`, if present:
    /// a binary search over the CSR slice plus a scan of the (small) pending
    /// buffer of the lower-degree endpoint. Out-of-range endpoints yield
    /// `None`.
    #[must_use]
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let n = self.vertex_count();
        if u.index() >= n || v.index() >= n || u == v {
            return None;
        }
        // Probe from the endpoint with the smaller degree.
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u.index(), v)
        } else {
            (v.index(), u)
        };
        let slice = self.csr_slice(probe);
        if let Ok(pos) = slice.binary_search_by_key(&target, |&(nbr, _)| nbr) {
            return Some(slice[pos].1);
        }
        self.pending[probe]
            .iter()
            .find(|&&(nbr, _)| nbr == target)
            .map(|&(_, e)| e)
    }

    /// Returns `true` if an edge `{u, v}` exists. Accepts raw indices for
    /// convenience in tests and examples.
    #[must_use]
    pub fn has_edge_between(&self, u: usize, v: usize) -> bool {
        if u >= self.vertex_count() || v >= self.vertex_count() {
            return false;
        }
        self.edge_between(VertexId::new(u), VertexId::new(v))
            .is_some()
    }

    /// Adds an undirected edge `{u, v}` with the given weight, returning its id.
    ///
    /// This is the panicking convenience wrapper over [`Graph::try_add_edge`]
    /// intended for construction code where indices are known to be valid.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, parallel edges, or
    /// invalid (negative / non-finite) weights.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> EdgeId {
        self.try_add_edge(u, v, weight)
            .expect("invalid edge insertion")
    }

    /// Adds a unit-weight edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Graph::add_edge`].
    pub fn add_unit_edge(&mut self, u: usize, v: usize) -> EdgeId {
        self.add_edge(u, v, 1.0)
    }

    /// Adds an undirected edge `{u, v}` with the given weight.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, the edge is a
    /// self-loop, the edge already exists, or the weight is negative or not
    /// finite.
    pub fn try_add_edge(&mut self, u: usize, v: usize, weight: f64) -> Result<EdgeId> {
        let n = self.vertex_count();
        if u >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                vertex_count: n,
            });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                vertex_count: n,
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        let (u, v) = (VertexId::new(u), VertexId::new(v));
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if self.edge_between(u, v).is_some() {
            return Err(GraphError::ParallelEdge { u, v });
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge::new(u, v, weight));
        self.pending[u.index()].push((v, id));
        self.pending[v.index()].push((u, id));
        self.pending_edges += 1;
        if weight != 1.0 {
            self.unit_weighted = false;
        }
        // Amortized self-compaction: once the append buffers hold a constant
        // fraction of the edges, fold them into the CSR core so long
        // incremental constructions keep binary-search lookups and contiguous
        // traversal. Geometric growth bounds total compaction work by
        // O((n + m) log m).
        let compacted = self.edges.len() - self.pending_edges;
        if self.pending_edges >= 64 && self.pending_edges >= compacted {
            self.compact();
        }
        Ok(id)
    }

    /// Adds the given edge record (typically copied from another graph over
    /// the same vertex set), returning its id in this graph.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::try_add_edge`].
    pub fn try_insert_edge(&mut self, edge: &Edge) -> Result<EdgeId> {
        let (u, v) = edge.endpoints();
        self.try_add_edge(u.index(), v.index(), edge.weight())
    }

    /// Returns the sum of all edge weights.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(Edge::weight).sum()
    }

    /// Returns all edge identifiers sorted by nondecreasing weight, breaking
    /// ties by insertion order. This is the edge ordering used by the greedy
    /// spanner algorithms on weighted graphs.
    #[must_use]
    pub fn edge_ids_by_weight(&self) -> Vec<EdgeId> {
        let mut ids: Vec<EdgeId> = self.edge_ids().collect();
        ids.sort_by(|a, b| {
            self.weight(*a)
                .total_cmp(&self.weight(*b))
                .then_with(|| a.cmp(b))
        });
        ids
    }

    /// Returns the maximum degree over all vertices (0 for an empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.csr_slice(v).len() + self.pending[v].len())
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n`, or 0 for a graph without vertices.
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Builds the subgraph of this graph containing exactly the given edges,
    /// on the same vertex set. Duplicate edge ids are ignored. The result is
    /// compacted.
    ///
    /// # Panics
    ///
    /// Panics if any edge id is out of range.
    #[must_use]
    pub fn edge_subgraph<I>(&self, edges: I) -> Graph
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let mut sub = Graph::with_capacity(self.vertex_count(), 0);
        for e in edges {
            let edge = self.edge(e);
            let (u, v) = edge.endpoints();
            if sub.edge_between(u, v).is_none() {
                sub.add_edge(u.index(), v.index(), edge.weight());
            }
        }
        sub.compact();
        sub
    }

    /// Builds the induced subgraph `G[C]` on the vertex subset `C`.
    ///
    /// Returns the induced graph (compacted) together with the mapping from
    /// new (dense) vertex indices back to the original vertex identifiers:
    /// entry `i` of the mapping is the original id of new vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if any vertex in `community` is out of range.
    #[must_use]
    pub fn induced_subgraph(&self, community: &[VertexId]) -> (Graph, Vec<VertexId>) {
        // Local-id lookup: a dense array is fastest but costs O(n) to zero,
        // which would make per-cluster loops (decomposition diagnostics,
        // LOCAL simulation) quadratic when called once per small cluster.
        // Switch representation on the community's share of the graph.
        enum LocalIds {
            Dense(Vec<Option<u32>>),
            Sparse(std::collections::HashMap<VertexId, u32>),
        }
        impl LocalIds {
            fn get(&self, v: VertexId) -> Option<u32> {
                match self {
                    LocalIds::Dense(ids) => ids[v.index()],
                    LocalIds::Sparse(ids) => ids.get(&v).copied(),
                }
            }
        }

        let dense = community.len() * 4 >= self.vertex_count();
        let mut new_of = if dense {
            LocalIds::Dense(vec![None; self.vertex_count()])
        } else {
            LocalIds::Sparse(std::collections::HashMap::with_capacity(community.len()))
        };
        let mut original_of = Vec::with_capacity(community.len());
        for &v in community {
            assert!(
                v.index() < self.vertex_count(),
                "vertex {v} out of range for induced subgraph"
            );
            let next = original_of.len() as u32;
            let inserted = match &mut new_of {
                LocalIds::Dense(ids) => {
                    let slot = &mut ids[v.index()];
                    slot.is_none() && {
                        *slot = Some(next);
                        true
                    }
                }
                LocalIds::Sparse(ids) => match ids.entry(v) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(next);
                        true
                    }
                    std::collections::hash_map::Entry::Occupied(_) => false,
                },
            };
            if inserted {
                original_of.push(v);
            }
        }
        let mut sub = Graph::new(original_of.len());
        for (i, &orig) in original_of.iter().enumerate() {
            for (nbr, e) in self.neighbors(orig) {
                if let Some(j) = new_of.get(nbr) {
                    if i < j as usize {
                        sub.add_edge(i, j as usize, self.weight(e));
                    }
                }
            }
        }
        sub.compact();
        (sub, original_of)
    }

    /// Merges all edges of `other` (over the same vertex set) into this graph,
    /// skipping edges already present. Returns the number of edges added.
    ///
    /// # Panics
    ///
    /// Panics if the vertex counts differ.
    pub fn union_edges_from(&mut self, other: &Graph) -> usize {
        assert_eq!(
            self.vertex_count(),
            other.vertex_count(),
            "union requires graphs over the same vertex set"
        );
        let mut added = 0;
        for (_, edge) in other.edges() {
            let (u, v) = edge.endpoints();
            if self.edge_between(u, v).is_none() {
                self.add_edge(u.index(), v.index(), edge.weight());
                added += 1;
            }
        }
        added
    }

    /// Heap bytes held by the graph's storage (capacities, not just lengths):
    /// CSR offsets and adjacency, pending append buffers, and the dense edge
    /// table. This is the accounting number the scale tier's memory audit
    /// sums across spanners, regions, and caches.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use core::mem::size_of;
        self.csr_offsets.capacity() * size_of::<u32>()
            + self.csr_adj.capacity() * size_of::<(VertexId, EdgeId)>()
            + self.pending.capacity() * size_of::<Vec<(VertexId, EdgeId)>>()
            + self
                .pending
                .iter()
                .map(|p| p.capacity() * size_of::<(VertexId, EdgeId)>())
                .sum::<usize>()
            + self.edges.capacity() * size_of::<Edge>()
    }

    /// Returns `true` if every edge of `self` is also an edge of `other`
    /// (ignoring weights).
    #[must_use]
    pub fn is_edge_subgraph_of(&self, other: &Graph) -> bool {
        self.vertex_count() == other.vertex_count()
            && self
                .edges
                .iter()
                .all(|e| other.edge_between(e.source(), e.target()).is_some())
    }
}

/// Incremental builder for [`Graph`] that tolerates out-of-order vertex
/// discovery: the vertex count grows automatically to cover every endpoint.
/// The built graph is compacted.
///
/// # Examples
///
/// ```
/// use ftspan_graph::GraphBuilder;
///
/// let g = GraphBuilder::new()
///     .edge(0, 1, 1.0)
///     .edge(1, 7, 2.0)
///     .build();
/// assert_eq!(g.vertex_count(), 8);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    min_vertices: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the built graph has at least `n` vertices.
    #[must_use]
    pub fn vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Records an edge `{u, v}` with the given weight.
    #[must_use]
    pub fn edge(mut self, u: usize, v: usize, weight: f64) -> Self {
        self.edges.push((u, v, weight));
        self
    }

    /// Records a unit-weight edge `{u, v}`.
    #[must_use]
    pub fn unit_edge(self, u: usize, v: usize) -> Self {
        self.edge(u, v, 1.0)
    }

    /// Records a batch of unit-weight edges.
    #[must_use]
    pub fn unit_edges<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (u, v) in edges {
            self.edges.push((u, v, 1.0));
        }
        self
    }

    /// Builds the graph.
    ///
    /// # Panics
    ///
    /// Panics if any recorded edge is invalid (self-loop, duplicate, bad
    /// weight); use [`GraphBuilder::try_build`] for fallible construction.
    #[must_use]
    pub fn build(self) -> Graph {
        self.try_build().expect("invalid edge in GraphBuilder")
    }

    /// Builds the graph, reporting the first invalid edge.
    ///
    /// # Errors
    ///
    /// Returns an error for self-loops, duplicate edges, or invalid weights.
    pub fn try_build(self) -> Result<Graph> {
        let n = self
            .edges
            .iter()
            .map(|&(u, v, _)| u.max(v) + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_vertices);
        let mut g = Graph::with_capacity(n, self.edges.len());
        for (u, v, w) in self.edges {
            g.try_add_edge(u, v, w)?;
        }
        g.compact();
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_unit_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn new_graph_is_empty() {
        let g = Graph::new(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert!(g.is_unit_weighted());
        assert!(g.is_compacted());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn add_edge_updates_adjacency_both_ways() {
        let mut g = Graph::new(3);
        let e = g.add_edge(0, 2, 1.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(VertexId::new(0)), 1);
        assert_eq!(g.degree(VertexId::new(2)), 1);
        assert_eq!(g.degree(VertexId::new(1)), 0);
        let nbrs: Vec<_> = g.neighbors(VertexId::new(0)).collect();
        assert_eq!(nbrs, vec![(VertexId::new(2), e)]);
        let nbrs: Vec<_> = g.neighbors(VertexId::new(2)).collect();
        assert_eq!(nbrs, vec![(VertexId::new(0), e)]);
    }

    #[test]
    fn compact_preserves_every_observation() {
        let mut g = Graph::new(6);
        g.add_edge(0, 3, 2.0);
        g.add_edge(0, 1, 1.0);
        g.add_edge(3, 5, 1.5);
        g.add_edge(0, 2, 1.0);
        let before: Vec<(usize, Vec<(VertexId, EdgeId)>)> = (0..6)
            .map(|v| {
                let mut nbrs: Vec<_> = g.neighbors(VertexId::new(v)).collect();
                nbrs.sort_unstable();
                (g.degree(VertexId::new(v)), nbrs)
            })
            .collect();
        assert!(!g.is_compacted());
        g.compact();
        assert!(g.is_compacted());
        for (v, expected) in before.iter().enumerate() {
            let mut nbrs: Vec<_> = g.neighbors(VertexId::new(v)).collect();
            nbrs.sort_unstable();
            assert_eq!(&(g.degree(VertexId::new(v)), nbrs), expected);
        }
        // Compacted slices are sorted by neighbor id.
        let ids: Vec<u32> = g
            .neighbors(VertexId::new(0))
            .map(|(n, _)| n.as_u32())
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // Compacting twice is a no-op.
        g.compact();
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn edge_between_works_across_core_and_pending() {
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 5, 1.0);
        g.compact();
        // Now some edges only in the pending buffer.
        g.add_edge(0, 3, 1.0);
        g.add_edge(2, 7, 1.0);
        assert!(g.has_edge_between(0, 1)); // core
        assert!(g.has_edge_between(0, 3)); // pending
        assert!(g.has_edge_between(7, 2)); // pending, reversed
        assert!(!g.has_edge_between(0, 4));
        assert_eq!(g.degree(VertexId::new(0)), 3);
    }

    #[test]
    fn automatic_compaction_keeps_growing_graphs_queryable() {
        // Enough edges to cross the self-compaction threshold several times.
        let n = 300;
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_unit_edge(i, i + 1);
        }
        for i in 0..n - 2 {
            g.add_unit_edge(i, i + 2);
        }
        assert_eq!(g.edge_count(), 2 * n - 3);
        for i in 0..n - 2 {
            assert!(g.has_edge_between(i, i + 1));
            assert!(g.has_edge_between(i, i + 2));
            assert!(!g.has_edge_between(i, i + 3) || i + 3 >= n);
        }
        g.compact();
        assert_eq!(g.edge_count(), 2 * n - 3);
        assert_eq!(g.degree(VertexId::new(10)), 4);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.try_add_edge(1, 1, 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn parallel_edge_rejected_in_both_orientations() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        assert!(matches!(
            g.try_add_edge(0, 1, 2.0),
            Err(GraphError::ParallelEdge { .. })
        ));
        assert!(matches!(
            g.try_add_edge(1, 0, 2.0),
            Err(GraphError::ParallelEdge { .. })
        ));
        // Also after compaction (binary-search path).
        g.compact();
        assert!(matches!(
            g.try_add_edge(0, 1, 2.0),
            Err(GraphError::ParallelEdge { .. })
        ));
    }

    #[test]
    fn out_of_range_vertex_rejected() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.try_add_edge(0, 3, 1.0),
            Err(GraphError::VertexOutOfRange { vertex: 3, .. })
        ));
    }

    #[test]
    fn invalid_weight_rejected() {
        let mut g = Graph::new(3);
        assert!(g.try_add_edge(0, 1, -1.0).is_err());
        assert!(g.try_add_edge(0, 1, f64::NAN).is_err());
        assert!(g.try_add_edge(0, 1, f64::INFINITY).is_err());
        assert!(g.try_add_edge(0, 1, 0.0).is_ok());
    }

    #[test]
    fn unit_weight_tracking() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        assert!(g.is_unit_weighted());
        g.add_edge(1, 2, 2.0);
        assert!(!g.is_unit_weighted());
    }

    #[test]
    fn edge_between_and_has_edge() {
        let g = path_graph(4);
        assert!(g.has_edge_between(0, 1));
        assert!(g.has_edge_between(1, 0));
        assert!(!g.has_edge_between(0, 2));
        assert!(!g.has_edge_between(0, 99));
        assert!(g.edge_between(VertexId::new(2), VertexId::new(3)).is_some());
        assert!(g.edge_between(VertexId::new(2), VertexId::new(2)).is_none());
        assert!(g
            .edge_between(VertexId::new(0), VertexId::new(99))
            .is_none());
    }

    #[test]
    fn edge_ids_by_weight_sorts_nondecreasing() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 3.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 2.0);
        let order = g.edge_ids_by_weight();
        let weights: Vec<f64> = order.iter().map(|&e| g.weight(e)).collect();
        assert_eq!(weights, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn edge_ids_by_weight_breaks_ties_by_insertion() {
        let mut g = Graph::new(4);
        let a = g.add_edge(0, 1, 1.0);
        let b = g.add_edge(1, 2, 1.0);
        let c = g.add_edge(2, 3, 1.0);
        assert_eq!(g.edge_ids_by_weight(), vec![a, b, c]);
    }

    #[test]
    fn total_weight_sums_all_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.5);
        g.add_edge(1, 2, 2.5);
        assert!((g.total_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn edge_subgraph_keeps_vertex_set() {
        let g = path_graph(5);
        let ids: Vec<EdgeId> = g.edge_ids().take(2).collect();
        let sub = g.edge_subgraph(ids);
        assert_eq!(sub.vertex_count(), 5);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.is_compacted());
        assert!(sub.has_edge_between(0, 1));
        assert!(sub.has_edge_between(1, 2));
        assert!(!sub.has_edge_between(2, 3));
        assert!(sub.is_edge_subgraph_of(&g));
    }

    #[test]
    fn induced_subgraph_maps_back_to_original_ids() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 5, 1.0);
        g.add_edge(1, 4, 7.0);
        let community = vec![VertexId::new(1), VertexId::new(2), VertexId::new(4)];
        let (sub, original) = g.induced_subgraph(&community);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(original, community);
        // Edges inside the community: {1,2} and {1,4}.
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge_between(0, 1)); // 1-2
        assert!(sub.has_edge_between(0, 2)); // 1-4
        let e = sub
            .edge_between(VertexId::new(0), VertexId::new(2))
            .unwrap();
        assert_eq!(sub.weight(e), 7.0);
    }

    #[test]
    fn induced_subgraph_deduplicates_vertices() {
        let g = path_graph(4);
        let community = vec![VertexId::new(1), VertexId::new(1), VertexId::new(2)];
        let (sub, original) = g.induced_subgraph(&community);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(original.len(), 2);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn union_edges_merges_without_duplicates() {
        let mut a = Graph::new(4);
        a.add_edge(0, 1, 1.0);
        a.add_edge(1, 2, 1.0);
        let mut b = Graph::new(4);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        let added = a.union_edges_from(&b);
        assert_eq!(added, 1);
        assert_eq!(a.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "same vertex set")]
    fn union_edges_panics_on_mismatched_vertex_sets() {
        let mut a = Graph::new(3);
        let b = Graph::new(4);
        a.union_edges_from(&b);
    }

    #[test]
    fn builder_grows_vertex_count_to_cover_endpoints() {
        let g = GraphBuilder::new().unit_edge(0, 9).build();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 1);
        assert!(g.is_compacted());
    }

    #[test]
    fn builder_respects_minimum_vertex_count() {
        let g = GraphBuilder::new().vertices(20).unit_edge(0, 1).build();
        assert_eq!(g.vertex_count(), 20);
    }

    #[test]
    fn builder_try_build_propagates_errors() {
        let r = GraphBuilder::new().edge(0, 0, 1.0).try_build();
        assert!(matches!(r, Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn builder_unit_edges_batch() {
        let g = GraphBuilder::new()
            .unit_edges([(0, 1), (1, 2), (2, 3)])
            .build();
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_unit_weighted());
    }

    #[test]
    fn empty_like_preserves_vertex_count_only() {
        let g = path_graph(7);
        let h = Graph::empty_like(&g);
        assert_eq!(h.vertex_count(), 7);
        assert_eq!(h.edge_count(), 0);
    }

    #[test]
    fn degree_statistics() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(0, 2);
        g.add_unit_edge(0, 3);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn memory_bytes_tracks_storage_growth() {
        let empty = Graph::new(0);
        let small = path_graph(10);
        let mut big = path_graph(1000);
        assert!(empty.memory_bytes() < small.memory_bytes());
        assert!(small.memory_bytes() < big.memory_bytes());
        // Compaction frees the pending buffers, so it never grows the bill by
        // more than the CSR rebuild slack.
        big.compact();
        assert!(big.memory_bytes() >= 2 * 999 * core::mem::size_of::<(VertexId, EdgeId)>());
    }

    #[test]
    fn default_graph_is_the_empty_graph() {
        let g = Graph::default();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_compacted());
    }
}
