//! # ftspan-server — a wire-protocol surface for the fault-tolerant oracles
//!
//! This crate puts the [`OracleService`](ftspan_oracle::OracleService)
//! front-end behind a TCP socket, using nothing beyond `std`: a
//! checksummed, length-prefixed binary protocol (`u32` little-endian frame
//! length, `u64` FNV-1a body checksum, then the frame body — see
//! [`protocol`]), a nonblocking accept loop, and one handler thread per
//! connection that submits straight into the shared concurrent
//! `OracleService` core and blocks on its tickets. The service's reader
//! workers answer rounds in parallel against the epoch-published backend,
//! so cross-connection duplicate queries coalesce in the shared admission
//! queue just like same-batch duplicates do — with no single-threaded
//! service loop in the middle.
//!
//! ## Request set
//!
//! | opcode | request | reply |
//! |---|---|---|
//! | `1` | `DIST u v faults` | distance (or shed) |
//! | `2` | `PATH u v faults` | distance + witness path (or shed) |
//! | `3` | `BATCH queries…` | per-entry answer-or-shed, request order |
//! | `4` | `WAVE faults` | repair summary after the wave lands |
//! | `5` | `METRICS` | Prometheus text exposition |
//! | `6` | `SNAPSHOT` | warm-restart snapshot, streamed in bounded chunks |
//! | `7` | `JOURNAL_SUBSCRIBE from_epoch` | journal-entry stream (replication feed) |
//! | `8` | `PROMOTE` | promoted epoch (replica → primary) |
//!
//! Load shedding is explicit: a rate-limited or admission-shed request gets
//! a [`Reply::Shed`] with a reason code, never a silent drop. Malformed
//! frames, corrupt (checksum-failing) frames, and out-of-range vertex ids
//! get a [`Reply::Error`] and the connection stays usable.
//!
//! ## Replication
//!
//! Determinism makes read replicas cheap: a [`ReplicaServer`] bootstraps
//! from a primary's `SNAPSHOT`, subscribes to its wave journal, and
//! replays each entry through the same `apply_wave` — converging to
//! byte-identical state with per-entry digest verification (see
//! [`ftspan_oracle::replication`]). A replica serves reads at its local
//! epoch and rejects `WAVE`s until a `PROMOTE` makes it the new primary —
//! the failover drill the `replication_failover` suite runs under the
//! chaos proxy.
//!
//! ## Modules
//!
//! - [`protocol`] — frame codec and the request/reply model.
//! - [`server`] — the threaded server; [`Server::shutdown`] drains and
//!   hands the warm service back (ready for
//!   [`Snapshot::capture`](ftspan_oracle::Snapshot)). Stalled
//!   connections are shed via [`ServerConfig::read_timeout`], and
//!   [`ServerConfig::snapshot_interval`] drives a background capture
//!   timer.
//! - [`replica`] — the snapshot-bootstrapped, journal-following
//!   [`ReplicaServer`].
//! - [`client`] — a minimal blocking [`Client`] for tests, benches, and
//!   tooling.
//! - [`chaos`] — a fault-injecting [`ChaosProxy`] for wire-level
//!   degradation drills: mid-frame disconnects, slow-loris stalls,
//!   truncated replies, and in-flight byte corruption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod replica;
pub mod server;

pub use chaos::{ChaosProxy, ProxyFault, ProxyPlan};
pub use client::Client;
pub use protocol::{
    BatchEntry, Frame, Reply, Request, ShedReason, WaveSummary, WireAnswer, MAX_FRAME_LEN,
};
pub use replica::ReplicaServer;
pub use server::{Server, ServerConfig};
