//! The `ftspan-server` wire protocol: length-prefixed binary frames over a
//! byte stream.
//!
//! Every message — request or reply — is one **frame**: a little-endian
//! `u32` body length followed by the body. Request bodies start with an
//! opcode byte, reply bodies with a reply tag byte; all payloads reuse the
//! [`ftspan_graph::wire`] primitives and the [`ftspan::wire`] fault-set
//! codec, so query payloads are encoded exactly like snapshot payloads.
//!
//! | opcode | request | body |
//! |--------|-----------|------|
//! | `1` | `DIST u v [F]` | `u32 u · u32 v · fault_set` |
//! | `2` | `PATH u v [F]` | `u32 u · u32 v · fault_set` |
//! | `3` | `BATCH` | `u64 count · count × (u8 kind · u32 u · u32 v · fault_set)` |
//! | `4` | `WAVE` | `fault_set` |
//! | `5` | `METRICS` | empty |
//! | `6` | `SNAPSHOT` | empty |
//!
//! Replies are self-describing: `0` answer, `1` batch, `2` wave summary,
//! `3` metrics text, `4` snapshot bytes, `5` **shed** (explicit, with a
//! reason byte — a rate-limited client is told so, never silently
//! dropped), `6` error (length-prefixed UTF-8 message).
//!
//! Answers carry the distance (presence byte + IEEE-754 bits, so the
//! exactness contract survives the wire) and, for `PATH`, the vertex
//! sequence. The backend's `cache_hit` flag is a serving-side detail and is
//! not part of the protocol.

use std::io::{self, Read, Write};

use ftspan::wire::{decode_fault_set, encode_fault_set};
use ftspan::FaultSet;
use ftspan_graph::wire::{WireError, WireReader, WireWriter};
use ftspan_graph::{vid, VertexId};
use ftspan_oracle::{Query, QueryKind};

/// Upper bound on one frame's body, rejecting corrupt length prefixes
/// before they provoke a giant allocation. Large enough for a snapshot of
/// any graph this workspace benchmarks (a 1M-edge snapshot is ~50 MiB).
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

const OP_DIST: u8 = 1;
const OP_PATH: u8 = 2;
const OP_BATCH: u8 = 3;
const OP_WAVE: u8 = 4;
const OP_METRICS: u8 = 5;
const OP_SNAPSHOT: u8 = 6;

const REPLY_ANSWER: u8 = 0;
const REPLY_BATCH: u8 = 1;
const REPLY_WAVE: u8 = 2;
const REPLY_METRICS: u8 = 3;
const REPLY_SNAPSHOT: u8 = 4;
const REPLY_SHED: u8 = 5;
const REPLY_ERROR: u8 = 6;

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `DIST u v [F]` — distance in `H ∖ F`.
    Distance {
        /// Source vertex.
        u: VertexId,
        /// Target vertex.
        v: VertexId,
        /// The fault set to avoid.
        faults: FaultSet,
    },
    /// `PATH u v [F]` — distance plus an explicit path.
    Path {
        /// Source vertex.
        u: VertexId,
        /// Target vertex.
        v: VertexId,
        /// The fault set to avoid.
        faults: FaultSet,
    },
    /// `BATCH` — a mixed batch answered in request order.
    Batch(Vec<Query>),
    /// `WAVE` — apply permanent damage through the churn loop.
    Wave(FaultSet),
    /// `METRICS` — fetch the Prometheus exposition text.
    Metrics,
    /// `SNAPSHOT` — download a warm-restart snapshot of the backend.
    Snapshot,
}

/// A distance/path answer on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireAnswer {
    /// Distance in `H ∖ F`; `None` when the faults disconnect the pair.
    pub distance: Option<f64>,
    /// The path, when requested and reachable.
    pub path: Option<Vec<VertexId>>,
}

/// One entry of a batch reply.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchEntry {
    /// The query was answered.
    Answered(WireAnswer),
    /// The query was shed by the service's admission control.
    Shed,
}

/// What a `WAVE` did, summarized for the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveSummary {
    /// The backend epoch after the wave.
    pub epoch: u64,
    /// Spanner edges added by repair.
    pub edges_added: u64,
    /// Stretch-violating pairs detected around the damage.
    pub broken_pairs: u64,
    /// Whether local repair escalated to a full respan.
    pub escalated: bool,
    /// Admission lanes (shards) whose serving state was rebuilt.
    pub rebuilt_lanes: Vec<u32>,
}

/// Why a request was shed instead of answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The per-client token bucket was empty.
    RateLimited,
    /// The service's admission control shed the request.
    Admission,
    /// The connection sat idle (or stalled mid-frame) past the server's
    /// read timeout; the server sends this and closes the connection so a
    /// slow-loris client cannot pin a handler thread.
    Timeout,
}

/// One server reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Answer to `DIST` / `PATH`.
    Answer(WireAnswer),
    /// Per-query entries of a `BATCH`, in request order.
    Batch(Vec<BatchEntry>),
    /// Summary of an applied `WAVE`.
    Wave(WaveSummary),
    /// Prometheus exposition text from `METRICS`.
    Metrics(String),
    /// Snapshot bytes from `SNAPSHOT`.
    Snapshot(Vec<u8>),
    /// The request was shed — explicitly, with the reason.
    Shed(ShedReason),
    /// The request could not be served.
    Error(String),
}

fn encode_query_parts(u: VertexId, v: VertexId, faults: &FaultSet, w: &mut WireWriter) {
    w.put_u32(u.as_u32());
    w.put_u32(v.as_u32());
    encode_fault_set(faults, w);
}

fn decode_query_parts(r: &mut WireReader<'_>) -> Result<(VertexId, VertexId, FaultSet), WireError> {
    let u = vid(r.u32()? as usize);
    let v = vid(r.u32()? as usize);
    let faults = decode_fault_set(r)?;
    Ok((u, v, faults))
}

/// Encodes a request into a frame body.
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut w = WireWriter::new();
    match request {
        Request::Distance { u, v, faults } => {
            w.put_u8(OP_DIST);
            encode_query_parts(*u, *v, faults, &mut w);
        }
        Request::Path { u, v, faults } => {
            w.put_u8(OP_PATH);
            encode_query_parts(*u, *v, faults, &mut w);
        }
        Request::Batch(queries) => {
            w.put_u8(OP_BATCH);
            w.put_len(queries.len());
            for q in queries {
                w.put_u8(match q.kind {
                    QueryKind::Distance => 0,
                    QueryKind::Path => 1,
                });
                encode_query_parts(q.u, q.v, &q.faults, &mut w);
            }
        }
        Request::Wave(faults) => {
            w.put_u8(OP_WAVE);
            encode_fault_set(faults, &mut w);
        }
        Request::Metrics => w.put_u8(OP_METRICS),
        Request::Snapshot => w.put_u8(OP_SNAPSHOT),
    }
    w.into_vec()
}

/// Decodes a frame body into a request.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let mut r = WireReader::new(body);
    let request = match r.u8()? {
        OP_DIST => {
            let (u, v, faults) = decode_query_parts(&mut r)?;
            Request::Distance { u, v, faults }
        }
        OP_PATH => {
            let (u, v, faults) = decode_query_parts(&mut r)?;
            Request::Path { u, v, faults }
        }
        OP_BATCH => {
            let count = r.len(10)?;
            let mut queries = Vec::with_capacity(count);
            for _ in 0..count {
                let kind = match r.u8()? {
                    0 => QueryKind::Distance,
                    1 => QueryKind::Path,
                    tag => return Err(WireError::malformed(format!("unknown query kind {tag}"))),
                };
                let (u, v, faults) = decode_query_parts(&mut r)?;
                queries.push(match kind {
                    QueryKind::Distance => Query::distance(u, v, faults),
                    QueryKind::Path => Query::path(u, v, faults),
                });
            }
            Request::Batch(queries)
        }
        OP_WAVE => Request::Wave(decode_fault_set(&mut r)?),
        OP_METRICS => Request::Metrics,
        OP_SNAPSHOT => Request::Snapshot,
        op => return Err(WireError::malformed(format!("unknown opcode {op}"))),
    };
    r.finish()?;
    Ok(request)
}

fn encode_answer(answer: &WireAnswer, w: &mut WireWriter) {
    match answer.distance {
        None => w.put_u8(0),
        Some(d) => {
            w.put_u8(1);
            w.put_f64(d);
        }
    }
    match &answer.path {
        None => w.put_u8(0),
        Some(path) => {
            w.put_u8(1);
            w.put_len(path.len());
            for &v in path {
                w.put_u32(v.as_u32());
            }
        }
    }
}

fn decode_answer(r: &mut WireReader<'_>) -> Result<WireAnswer, WireError> {
    let distance = match r.u8()? {
        0 => None,
        1 => Some(r.f64()?),
        tag => return Err(WireError::malformed(format!("bad distance tag {tag}"))),
    };
    let path = match r.u8()? {
        0 => None,
        1 => {
            let len = r.len(4)?;
            let mut path = Vec::with_capacity(len);
            for _ in 0..len {
                path.push(vid(r.u32()? as usize));
            }
            Some(path)
        }
        tag => return Err(WireError::malformed(format!("bad path tag {tag}"))),
    };
    Ok(WireAnswer { distance, path })
}

/// Encodes a reply into a frame body.
#[must_use]
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut w = WireWriter::new();
    match reply {
        Reply::Answer(answer) => {
            w.put_u8(REPLY_ANSWER);
            encode_answer(answer, &mut w);
        }
        Reply::Batch(entries) => {
            w.put_u8(REPLY_BATCH);
            w.put_len(entries.len());
            for entry in entries {
                match entry {
                    BatchEntry::Answered(answer) => {
                        w.put_u8(0);
                        encode_answer(answer, &mut w);
                    }
                    BatchEntry::Shed => w.put_u8(1),
                }
            }
        }
        Reply::Wave(summary) => {
            w.put_u8(REPLY_WAVE);
            w.put_u64(summary.epoch);
            w.put_u64(summary.edges_added);
            w.put_u64(summary.broken_pairs);
            w.put_u8(u8::from(summary.escalated));
            w.put_len(summary.rebuilt_lanes.len());
            for &lane in &summary.rebuilt_lanes {
                w.put_u32(lane);
            }
        }
        Reply::Metrics(text) => {
            w.put_u8(REPLY_METRICS);
            w.put_bytes(text.as_bytes());
        }
        Reply::Snapshot(bytes) => {
            w.put_u8(REPLY_SNAPSHOT);
            w.put_bytes(bytes);
        }
        Reply::Shed(reason) => {
            w.put_u8(REPLY_SHED);
            w.put_u8(match reason {
                ShedReason::RateLimited => 0,
                ShedReason::Admission => 1,
                ShedReason::Timeout => 2,
            });
        }
        Reply::Error(message) => {
            w.put_u8(REPLY_ERROR);
            w.put_bytes(message.as_bytes());
        }
    }
    w.into_vec()
}

/// Decodes a frame body into a reply.
pub fn decode_reply(body: &[u8]) -> Result<Reply, WireError> {
    let mut r = WireReader::new(body);
    let reply = match r.u8()? {
        REPLY_ANSWER => Reply::Answer(decode_answer(&mut r)?),
        REPLY_BATCH => {
            let count = r.len(1)?;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(match r.u8()? {
                    0 => BatchEntry::Answered(decode_answer(&mut r)?),
                    1 => BatchEntry::Shed,
                    tag => return Err(WireError::malformed(format!("bad batch entry tag {tag}"))),
                });
            }
            Reply::Batch(entries)
        }
        REPLY_WAVE => {
            let epoch = r.u64()?;
            let edges_added = r.u64()?;
            let broken_pairs = r.u64()?;
            let escalated = r.u8()? != 0;
            let lane_count = r.len(4)?;
            let mut rebuilt_lanes = Vec::with_capacity(lane_count);
            for _ in 0..lane_count {
                rebuilt_lanes.push(r.u32()?);
            }
            Reply::Wave(WaveSummary {
                epoch,
                edges_added,
                broken_pairs,
                escalated,
                rebuilt_lanes,
            })
        }
        REPLY_METRICS => Reply::Metrics(
            String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| WireError::malformed("metrics text is not UTF-8"))?,
        ),
        REPLY_SNAPSHOT => Reply::Snapshot(r.bytes()?.to_vec()),
        REPLY_SHED => Reply::Shed(match r.u8()? {
            0 => ShedReason::RateLimited,
            1 => ShedReason::Admission,
            2 => ShedReason::Timeout,
            tag => return Err(WireError::malformed(format!("bad shed reason {tag}"))),
        }),
        REPLY_ERROR => Reply::Error(
            String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| WireError::malformed("error text is not UTF-8"))?,
        ),
        tag => return Err(WireError::malformed(format!("unknown reply tag {tag}"))),
    };
    r.finish()?;
    Ok(reply)
}

/// Writes one frame: `u32` body length, then the body.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_LEN);
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one frame body. Returns `Ok(None)` on a clean end-of-stream at a
/// frame boundary; mid-frame EOF and oversized lengths are errors.
/// [`ErrorKind::Interrupted`](io::ErrorKind::Interrupted) reads are
/// retried at every position — including the very first header byte, so a
/// signal landing between frames never kills a healthy connection.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match stream.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan::FaultModel;
    use ftspan_graph::eid;

    fn round_trip_request(request: &Request) -> Request {
        decode_request(&encode_request(request)).expect("request decodes")
    }

    fn round_trip_reply(reply: &Reply) -> Reply {
        decode_reply(&encode_reply(reply)).expect("reply decodes")
    }

    #[test]
    fn requests_round_trip() {
        let faults = FaultSet::vertices([vid(3), vid(9)]);
        for request in [
            Request::Distance {
                u: vid(0),
                v: vid(5),
                faults: faults.clone(),
            },
            Request::Path {
                u: vid(2),
                v: vid(7),
                faults: FaultSet::edges([eid(1)]),
            },
            Request::Batch(vec![
                Query::distance(vid(0), vid(1), faults.clone()),
                Query::path(vid(1), vid(2), FaultSet::empty(FaultModel::Edge)),
            ]),
            Request::Wave(faults),
            Request::Metrics,
            Request::Snapshot,
        ] {
            assert_eq!(round_trip_request(&request), request);
        }
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Answer(WireAnswer {
                distance: Some(3.5),
                path: Some(vec![vid(0), vid(4), vid(9)]),
            }),
            Reply::Answer(WireAnswer {
                distance: None,
                path: None,
            }),
            Reply::Batch(vec![
                BatchEntry::Answered(WireAnswer {
                    distance: Some(1.0),
                    path: None,
                }),
                BatchEntry::Shed,
            ]),
            Reply::Wave(WaveSummary {
                epoch: 3,
                edges_added: 7,
                broken_pairs: 2,
                escalated: true,
                rebuilt_lanes: vec![0, 2],
            }),
            Reply::Metrics("ftspan_queries_total 5\n".to_owned()),
            Reply::Snapshot(vec![1, 2, 3]),
            Reply::Shed(ShedReason::RateLimited),
            Reply::Shed(ShedReason::Admission),
            Reply::Shed(ShedReason::Timeout),
            Reply::Error("nope".to_owned()),
        ] {
            assert_eq!(round_trip_reply(&reply), reply);
        }
    }

    #[test]
    fn distance_bits_survive_the_wire() {
        let exact = 0.1 + 0.2; // not representable as a short decimal
        let Reply::Answer(a) = round_trip_reply(&Reply::Answer(WireAnswer {
            distance: Some(exact),
            path: None,
        })) else {
            panic!("wrong reply variant");
        };
        assert_eq!(a.distance.unwrap().to_bits(), exact.to_bits());
    }

    #[test]
    fn garbage_is_rejected_not_panicked_on() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_reply(&[99]).is_err());
        // Trailing bytes after a complete request are an error.
        let mut bytes = encode_request(&Request::Metrics);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_lengths_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    /// Injects an `Interrupted` error before every real read, and delivers
    /// the real bytes one at a time — the worst-case signal-storm stream.
    struct InterruptingReader<R> {
        inner: R,
        interrupt_next: bool,
    }

    impl<R: io::Read> io::Read for InterruptingReader<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            self.interrupt_next = true;
            let len = buf.len().min(1);
            self.inner.read(&mut buf[..len])
        }
    }

    #[test]
    fn interrupted_reads_are_retried_even_on_the_first_header_byte() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"resilient").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut stream = InterruptingReader {
            inner: io::Cursor::new(buf),
            interrupt_next: true, // the very first header read is interrupted
        };
        assert_eq!(read_frame(&mut stream).unwrap().unwrap(), b"resilient");
        assert_eq!(read_frame(&mut stream).unwrap().unwrap(), b"");
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    #[test]
    fn eof_inside_the_header_is_an_error_not_a_clean_close() {
        let mut cursor = io::Cursor::new(vec![5u8, 0]);
        let err = read_frame(&mut cursor).expect_err("mid-header EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
