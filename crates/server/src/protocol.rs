//! The `ftspan-server` wire protocol: checksummed, length-prefixed binary
//! frames over a byte stream.
//!
//! Every message — request or reply — is one **frame**: a little-endian
//! `u32` body length, a `u64` FNV-1a-64 checksum of the body, then the
//! body. The checksum means a flipped bit anywhere in a body is *detected*
//! instead of deserialized: [`read_frame`] still consumes the whole frame
//! (framing stays aligned), but hands back [`Frame::Corrupt`] so a server
//! can answer with a typed error and keep the connection — the
//! `wire_chaos` suite drives this with a byte-corrupting proxy. Request
//! bodies start with an opcode byte, reply bodies with a reply tag byte;
//! all payloads reuse the [`ftspan_graph::wire`] primitives and the
//! [`ftspan::wire`] fault-set codec, so query payloads are encoded exactly
//! like snapshot payloads.
//!
//! | opcode | request | body |
//! |--------|-----------|------|
//! | `1` | `DIST u v [F]` | `u32 u · u32 v · fault_set` |
//! | `2` | `PATH u v [F]` | `u32 u · u32 v · fault_set` |
//! | `3` | `BATCH` | `u64 count · count × (u8 kind · u32 u · u32 v · fault_set)` |
//! | `4` | `WAVE` | `fault_set` |
//! | `5` | `METRICS` | empty |
//! | `6` | `SNAPSHOT` | empty |
//! | `7` | `JOURNAL_SUBSCRIBE` | `u64 from_epoch` |
//! | `8` | `PROMOTE` | empty |
//!
//! Replies are self-describing: `0` answer, `1` batch, `2` wave summary,
//! `3` metrics text, `4` **snapshot chunk** (`u64 total · u64 offset ·
//! bytes` — a snapshot download is a bounded sequence of these, so neither
//! end ever materializes one giant frame), `5` **shed** (explicit, with a
//! reason byte — a rate-limited client is told so, never silently
//! dropped), `6` error (length-prefixed UTF-8 message), `7` journal
//! entries (`u64 count · count ×` checksummed
//! [`JournalEntry`](ftspan_oracle::JournalEntry) — the replication feed),
//! `8` promoted (`u64 epoch`).
//!
//! Answers carry the distance (presence byte + IEEE-754 bits, so the
//! exactness contract survives the wire) and, for `PATH`, the vertex
//! sequence. The backend's `cache_hit` flag is a serving-side detail and is
//! not part of the protocol.

use std::io::{self, Read, Write};

use ftspan::wire::{decode_fault_set, encode_fault_set};
use ftspan::FaultSet;
use ftspan_graph::wire::{fnv1a64, WireError, WireReader, WireWriter};
use ftspan_graph::{vid, VertexId};
use ftspan_oracle::replication::{decode_journal_entry, encode_journal_entry};
use ftspan_oracle::{JournalEntry, Query, QueryKind};

/// Upper bound on one frame's body, rejecting corrupt length prefixes
/// before they provoke a giant allocation. Large enough for a snapshot of
/// any graph this workspace benchmarks (a 1M-edge snapshot is ~50 MiB).
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

const OP_DIST: u8 = 1;
const OP_PATH: u8 = 2;
const OP_BATCH: u8 = 3;
const OP_WAVE: u8 = 4;
const OP_METRICS: u8 = 5;
const OP_SNAPSHOT: u8 = 6;
const OP_JOURNAL_SUBSCRIBE: u8 = 7;
const OP_PROMOTE: u8 = 8;

const REPLY_ANSWER: u8 = 0;
const REPLY_BATCH: u8 = 1;
const REPLY_WAVE: u8 = 2;
const REPLY_METRICS: u8 = 3;
const REPLY_SNAPSHOT_CHUNK: u8 = 4;
const REPLY_SHED: u8 = 5;
const REPLY_ERROR: u8 = 6;
const REPLY_JOURNAL_ENTRIES: u8 = 7;
const REPLY_PROMOTED: u8 = 8;

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `DIST u v [F]` — distance in `H ∖ F`.
    Distance {
        /// Source vertex.
        u: VertexId,
        /// Target vertex.
        v: VertexId,
        /// The fault set to avoid.
        faults: FaultSet,
    },
    /// `PATH u v [F]` — distance plus an explicit path.
    Path {
        /// Source vertex.
        u: VertexId,
        /// Target vertex.
        v: VertexId,
        /// The fault set to avoid.
        faults: FaultSet,
    },
    /// `BATCH` — a mixed batch answered in request order.
    Batch(Vec<Query>),
    /// `WAVE` — apply permanent damage through the churn loop.
    Wave(FaultSet),
    /// `METRICS` — fetch the Prometheus exposition text.
    Metrics,
    /// `SNAPSHOT` — download a warm-restart snapshot of the backend
    /// (streamed back as [`Reply::SnapshotChunk`] frames).
    Snapshot,
    /// `JOURNAL_SUBSCRIBE` — switch this connection into a journal stream:
    /// the primary sends every entry past `from_epoch`, then keeps sending
    /// entries as waves commit.
    JournalSubscribe {
        /// The subscriber's current epoch; streaming starts just past it.
        from_epoch: u64,
    },
    /// `PROMOTE` — stop following and start accepting waves (replica role
    /// only; a primary answers with an error).
    Promote,
}

/// A distance/path answer on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireAnswer {
    /// Distance in `H ∖ F`; `None` when the faults disconnect the pair.
    pub distance: Option<f64>,
    /// The path, when requested and reachable.
    pub path: Option<Vec<VertexId>>,
}

/// One entry of a batch reply.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchEntry {
    /// The query was answered.
    Answered(WireAnswer),
    /// The query was shed by the service's admission control.
    Shed,
}

/// What a `WAVE` did, summarized for the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveSummary {
    /// The backend epoch after the wave.
    pub epoch: u64,
    /// Spanner edges added by repair.
    pub edges_added: u64,
    /// Stretch-violating pairs detected around the damage.
    pub broken_pairs: u64,
    /// Whether local repair escalated to a full respan.
    pub escalated: bool,
    /// Admission lanes (shards) whose serving state was rebuilt.
    pub rebuilt_lanes: Vec<u32>,
}

/// Why a request was shed instead of answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The per-client token bucket was empty.
    RateLimited,
    /// The service's admission control shed the request.
    Admission,
    /// The connection sat idle (or stalled mid-frame) past the server's
    /// read timeout; the server sends this and closes the connection so a
    /// slow-loris client cannot pin a handler thread.
    Timeout,
}

/// One server reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Answer to `DIST` / `PATH`.
    Answer(WireAnswer),
    /// Per-query entries of a `BATCH`, in request order.
    Batch(Vec<BatchEntry>),
    /// Summary of an applied `WAVE`.
    Wave(WaveSummary),
    /// Prometheus exposition text from `METRICS`.
    Metrics(String),
    /// One bounded chunk of a `SNAPSHOT` download. `total` is the full
    /// snapshot length in bytes and `offset` this chunk's position;
    /// chunks arrive in order and the download is complete when
    /// `offset + data.len() == total`. An empty snapshot is one chunk
    /// with `total == 0`.
    SnapshotChunk {
        /// Full snapshot length in bytes.
        total: u64,
        /// This chunk's byte offset into the snapshot.
        offset: u64,
        /// The chunk's bytes.
        data: Vec<u8>,
    },
    /// The request was shed — explicitly, with the reason.
    Shed(ShedReason),
    /// The request could not be served.
    Error(String),
    /// A batch of journal entries on a `JOURNAL_SUBSCRIBE` stream, in
    /// epoch order.
    JournalEntries(Vec<JournalEntry>),
    /// `PROMOTE` succeeded; the server now accepts waves at this epoch.
    Promoted {
        /// The promoted server's current epoch.
        epoch: u64,
    },
}

fn encode_query_parts(u: VertexId, v: VertexId, faults: &FaultSet, w: &mut WireWriter) {
    w.put_u32(u.as_u32());
    w.put_u32(v.as_u32());
    encode_fault_set(faults, w);
}

fn decode_query_parts(r: &mut WireReader<'_>) -> Result<(VertexId, VertexId, FaultSet), WireError> {
    let u = vid(r.u32()? as usize);
    let v = vid(r.u32()? as usize);
    let faults = decode_fault_set(r)?;
    Ok((u, v, faults))
}

/// Encodes a request into a frame body.
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut w = WireWriter::new();
    match request {
        Request::Distance { u, v, faults } => {
            w.put_u8(OP_DIST);
            encode_query_parts(*u, *v, faults, &mut w);
        }
        Request::Path { u, v, faults } => {
            w.put_u8(OP_PATH);
            encode_query_parts(*u, *v, faults, &mut w);
        }
        Request::Batch(queries) => {
            w.put_u8(OP_BATCH);
            w.put_len(queries.len());
            for q in queries {
                w.put_u8(match q.kind {
                    QueryKind::Distance => 0,
                    QueryKind::Path => 1,
                });
                encode_query_parts(q.u, q.v, &q.faults, &mut w);
            }
        }
        Request::Wave(faults) => {
            w.put_u8(OP_WAVE);
            encode_fault_set(faults, &mut w);
        }
        Request::Metrics => w.put_u8(OP_METRICS),
        Request::Snapshot => w.put_u8(OP_SNAPSHOT),
        Request::JournalSubscribe { from_epoch } => {
            w.put_u8(OP_JOURNAL_SUBSCRIBE);
            w.put_u64(*from_epoch);
        }
        Request::Promote => w.put_u8(OP_PROMOTE),
    }
    w.into_vec()
}

/// Decodes a frame body into a request.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let mut r = WireReader::new(body);
    let request = match r.u8()? {
        OP_DIST => {
            let (u, v, faults) = decode_query_parts(&mut r)?;
            Request::Distance { u, v, faults }
        }
        OP_PATH => {
            let (u, v, faults) = decode_query_parts(&mut r)?;
            Request::Path { u, v, faults }
        }
        OP_BATCH => {
            let count = r.len(10)?;
            let mut queries = Vec::with_capacity(count);
            for _ in 0..count {
                let kind = match r.u8()? {
                    0 => QueryKind::Distance,
                    1 => QueryKind::Path,
                    tag => return Err(WireError::malformed(format!("unknown query kind {tag}"))),
                };
                let (u, v, faults) = decode_query_parts(&mut r)?;
                queries.push(match kind {
                    QueryKind::Distance => Query::distance(u, v, faults),
                    QueryKind::Path => Query::path(u, v, faults),
                });
            }
            Request::Batch(queries)
        }
        OP_WAVE => Request::Wave(decode_fault_set(&mut r)?),
        OP_METRICS => Request::Metrics,
        OP_SNAPSHOT => Request::Snapshot,
        OP_JOURNAL_SUBSCRIBE => Request::JournalSubscribe {
            from_epoch: r.u64()?,
        },
        OP_PROMOTE => Request::Promote,
        op => return Err(WireError::malformed(format!("unknown opcode {op}"))),
    };
    r.finish()?;
    Ok(request)
}

fn encode_answer(answer: &WireAnswer, w: &mut WireWriter) {
    match answer.distance {
        None => w.put_u8(0),
        Some(d) => {
            w.put_u8(1);
            w.put_f64(d);
        }
    }
    match &answer.path {
        None => w.put_u8(0),
        Some(path) => {
            w.put_u8(1);
            w.put_len(path.len());
            for &v in path {
                w.put_u32(v.as_u32());
            }
        }
    }
}

fn decode_answer(r: &mut WireReader<'_>) -> Result<WireAnswer, WireError> {
    let distance = match r.u8()? {
        0 => None,
        1 => Some(r.f64()?),
        tag => return Err(WireError::malformed(format!("bad distance tag {tag}"))),
    };
    let path = match r.u8()? {
        0 => None,
        1 => {
            let len = r.len(4)?;
            let mut path = Vec::with_capacity(len);
            for _ in 0..len {
                path.push(vid(r.u32()? as usize));
            }
            Some(path)
        }
        tag => return Err(WireError::malformed(format!("bad path tag {tag}"))),
    };
    Ok(WireAnswer { distance, path })
}

/// Encodes a reply into a frame body.
#[must_use]
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut w = WireWriter::new();
    encode_reply_into(reply, &mut w);
    w.into_vec()
}

/// Encodes a reply into a reusable [`WireWriter`], clearing it first. The
/// server's per-connection reply loop calls this with one long-lived
/// writer, so a reply costs zero allocations once the buffer has grown to
/// the connection's working size — on the loopback batch path the
/// allocation was a measurable share of the per-frame tax.
pub fn encode_reply_into(reply: &Reply, w: &mut WireWriter) {
    w.clear();
    match reply {
        Reply::Answer(answer) => {
            w.put_u8(REPLY_ANSWER);
            encode_answer(answer, w);
        }
        Reply::Batch(entries) => {
            w.put_u8(REPLY_BATCH);
            w.put_len(entries.len());
            for entry in entries {
                match entry {
                    BatchEntry::Answered(answer) => {
                        w.put_u8(0);
                        encode_answer(answer, w);
                    }
                    BatchEntry::Shed => w.put_u8(1),
                }
            }
        }
        Reply::Wave(summary) => {
            w.put_u8(REPLY_WAVE);
            w.put_u64(summary.epoch);
            w.put_u64(summary.edges_added);
            w.put_u64(summary.broken_pairs);
            w.put_u8(u8::from(summary.escalated));
            w.put_len(summary.rebuilt_lanes.len());
            for &lane in &summary.rebuilt_lanes {
                w.put_u32(lane);
            }
        }
        Reply::Metrics(text) => {
            w.put_u8(REPLY_METRICS);
            w.put_bytes(text.as_bytes());
        }
        Reply::SnapshotChunk {
            total,
            offset,
            data,
        } => {
            w.put_u8(REPLY_SNAPSHOT_CHUNK);
            w.put_u64(*total);
            w.put_u64(*offset);
            w.put_bytes(data);
        }
        Reply::Shed(reason) => {
            w.put_u8(REPLY_SHED);
            w.put_u8(match reason {
                ShedReason::RateLimited => 0,
                ShedReason::Admission => 1,
                ShedReason::Timeout => 2,
            });
        }
        Reply::Error(message) => {
            w.put_u8(REPLY_ERROR);
            w.put_bytes(message.as_bytes());
        }
        Reply::JournalEntries(entries) => {
            w.put_u8(REPLY_JOURNAL_ENTRIES);
            w.put_len(entries.len());
            for entry in entries {
                encode_journal_entry(entry, w);
            }
        }
        Reply::Promoted { epoch } => {
            w.put_u8(REPLY_PROMOTED);
            w.put_u64(*epoch);
        }
    }
}

/// Decodes a frame body into a reply.
pub fn decode_reply(body: &[u8]) -> Result<Reply, WireError> {
    let mut r = WireReader::new(body);
    let reply = match r.u8()? {
        REPLY_ANSWER => Reply::Answer(decode_answer(&mut r)?),
        REPLY_BATCH => {
            let count = r.len(1)?;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(match r.u8()? {
                    0 => BatchEntry::Answered(decode_answer(&mut r)?),
                    1 => BatchEntry::Shed,
                    tag => return Err(WireError::malformed(format!("bad batch entry tag {tag}"))),
                });
            }
            Reply::Batch(entries)
        }
        REPLY_WAVE => {
            let epoch = r.u64()?;
            let edges_added = r.u64()?;
            let broken_pairs = r.u64()?;
            let escalated = r.u8()? != 0;
            let lane_count = r.len(4)?;
            let mut rebuilt_lanes = Vec::with_capacity(lane_count);
            for _ in 0..lane_count {
                rebuilt_lanes.push(r.u32()?);
            }
            Reply::Wave(WaveSummary {
                epoch,
                edges_added,
                broken_pairs,
                escalated,
                rebuilt_lanes,
            })
        }
        REPLY_METRICS => Reply::Metrics(
            String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| WireError::malformed("metrics text is not UTF-8"))?,
        ),
        REPLY_SNAPSHOT_CHUNK => {
            let total = r.u64()?;
            let offset = r.u64()?;
            let data = r.bytes()?.to_vec();
            Reply::SnapshotChunk {
                total,
                offset,
                data,
            }
        }
        REPLY_SHED => Reply::Shed(match r.u8()? {
            0 => ShedReason::RateLimited,
            1 => ShedReason::Admission,
            2 => ShedReason::Timeout,
            tag => return Err(WireError::malformed(format!("bad shed reason {tag}"))),
        }),
        REPLY_ERROR => Reply::Error(
            String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| WireError::malformed("error text is not UTF-8"))?,
        ),
        REPLY_JOURNAL_ENTRIES => {
            let count = r.len(25)?;
            let mut entries = Vec::with_capacity(count);
            for index in 0..count {
                entries.push(
                    decode_journal_entry(&mut r, index)
                        .map_err(|e| WireError::malformed(e.to_string()))?,
                );
            }
            Reply::JournalEntries(entries)
        }
        REPLY_PROMOTED => Reply::Promoted { epoch: r.u64()? },
        tag => return Err(WireError::malformed(format!("unknown reply tag {tag}"))),
    };
    r.finish()?;
    Ok(reply)
}

/// One frame as read off the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// The body's checksum matched; these bytes are safe to decode.
    Intact(Vec<u8>),
    /// The body's checksum did not match. The frame was still consumed in
    /// full — the stream stays aligned on the next frame boundary — but
    /// the bytes must **not** be deserialized. A server answers with a
    /// typed [`Reply::Error`]; a client surfaces an
    /// [`InvalidData`](io::ErrorKind::InvalidData) error.
    Corrupt,
}

impl Frame {
    /// The intact body, or an `InvalidData` error for a corrupt frame —
    /// the client-side default; servers match on the variant instead so
    /// they can answer and keep the connection.
    pub fn into_intact(self) -> io::Result<Vec<u8>> {
        match self {
            Self::Intact(body) => Ok(body),
            Self::Corrupt => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame body failed its checksum",
            )),
        }
    }
}

/// Writes one frame: `u32` body length, `u64` FNV-1a-64 body checksum,
/// then the body.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_LEN);
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(&fnv1a64(body).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream at a
/// frame boundary; mid-frame EOF and oversized lengths are errors, and a
/// checksum mismatch is [`Frame::Corrupt`] (fully consumed, never
/// deserialized).
/// [`ErrorKind::Interrupted`](io::ErrorKind::Interrupted) reads are
/// retried at every position — including the very first header byte, so a
/// signal landing between frames never kills a healthy connection.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 12];
    let mut filled = 0usize;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice")) as usize;
    let checksum = u64::from_le_bytes(header[4..].try_into().expect("8-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    if fnv1a64(&body) != checksum {
        return Ok(Some(Frame::Corrupt));
    }
    Ok(Some(Frame::Intact(body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan::FaultModel;
    use ftspan_graph::eid;

    fn round_trip_request(request: &Request) -> Request {
        decode_request(&encode_request(request)).expect("request decodes")
    }

    fn round_trip_reply(reply: &Reply) -> Reply {
        decode_reply(&encode_reply(reply)).expect("reply decodes")
    }

    #[test]
    fn requests_round_trip() {
        let faults = FaultSet::vertices([vid(3), vid(9)]);
        for request in [
            Request::Distance {
                u: vid(0),
                v: vid(5),
                faults: faults.clone(),
            },
            Request::Path {
                u: vid(2),
                v: vid(7),
                faults: FaultSet::edges([eid(1)]),
            },
            Request::Batch(vec![
                Query::distance(vid(0), vid(1), faults.clone()),
                Query::path(vid(1), vid(2), FaultSet::empty(FaultModel::Edge)),
            ]),
            Request::Wave(faults),
            Request::Metrics,
            Request::Snapshot,
            Request::JournalSubscribe { from_epoch: 42 },
            Request::Promote,
        ] {
            assert_eq!(round_trip_request(&request), request);
        }
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Answer(WireAnswer {
                distance: Some(3.5),
                path: Some(vec![vid(0), vid(4), vid(9)]),
            }),
            Reply::Answer(WireAnswer {
                distance: None,
                path: None,
            }),
            Reply::Batch(vec![
                BatchEntry::Answered(WireAnswer {
                    distance: Some(1.0),
                    path: None,
                }),
                BatchEntry::Shed,
            ]),
            Reply::Wave(WaveSummary {
                epoch: 3,
                edges_added: 7,
                broken_pairs: 2,
                escalated: true,
                rebuilt_lanes: vec![0, 2],
            }),
            Reply::Metrics("ftspan_queries_total 5\n".to_owned()),
            Reply::SnapshotChunk {
                total: 10,
                offset: 4,
                data: vec![1, 2, 3],
            },
            Reply::Shed(ShedReason::RateLimited),
            Reply::Shed(ShedReason::Admission),
            Reply::Shed(ShedReason::Timeout),
            Reply::Error("nope".to_owned()),
            Reply::JournalEntries(vec![JournalEntry {
                epoch: 7,
                wave: FaultSet::vertices([vid(1), vid(5)]),
                report_digest: 0xDEAD_BEEF,
            }]),
            Reply::Promoted { epoch: 12 },
        ] {
            assert_eq!(round_trip_reply(&reply), reply);
        }
    }

    #[test]
    fn reply_encoding_reuses_the_connection_buffer() {
        let mut w = WireWriter::new();
        let reply = Reply::Shed(ShedReason::Admission);
        encode_reply_into(&reply, &mut w);
        let first = w.as_slice().to_vec();
        // A second encode must clear, not append.
        encode_reply_into(&reply, &mut w);
        assert_eq!(w.as_slice(), &first[..]);
        assert_eq!(first, encode_reply(&reply));
    }

    #[test]
    fn corrupt_journal_entry_in_a_reply_is_rejected() {
        let mut bytes = encode_reply(&Reply::JournalEntries(vec![JournalEntry {
            epoch: 3,
            wave: FaultSet::vertices([vid(2)]),
            report_digest: 99,
        }]));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10; // damage the entry checksum itself
        assert!(decode_reply(&bytes).is_err());
    }

    #[test]
    fn distance_bits_survive_the_wire() {
        let exact = 0.1 + 0.2; // not representable as a short decimal
        let Reply::Answer(a) = round_trip_reply(&Reply::Answer(WireAnswer {
            distance: Some(exact),
            path: None,
        })) else {
            panic!("wrong reply variant");
        };
        assert_eq!(a.distance.unwrap().to_bits(), exact.to_bits());
    }

    #[test]
    fn garbage_is_rejected_not_panicked_on() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_reply(&[99]).is_err());
        // Trailing bytes after a complete request are an error.
        let mut bytes = encode_request(&Request::Metrics);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap(),
            Frame::Intact(b"hello".to_vec())
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap(),
            Frame::Intact(Vec::new())
        );
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn corrupt_bodies_are_detected_and_the_stream_stays_aligned() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"poisoned").unwrap();
        write_frame(&mut buf, b"fine").unwrap();
        buf[15] ^= 0x55; // flip a byte inside the first frame's body
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), Frame::Corrupt);
        // The corrupt frame was consumed in full: the next one is intact.
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap(),
            Frame::Intact(b"fine".to_vec())
        );
        assert!(read_frame(&mut cursor).unwrap().is_none());
        assert_eq!(
            Frame::Corrupt.into_intact().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_frame_lengths_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum field
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    /// Injects an `Interrupted` error before every real read, and delivers
    /// the real bytes one at a time — the worst-case signal-storm stream.
    struct InterruptingReader<R> {
        inner: R,
        interrupt_next: bool,
    }

    impl<R: io::Read> io::Read for InterruptingReader<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            self.interrupt_next = true;
            let len = buf.len().min(1);
            self.inner.read(&mut buf[..len])
        }
    }

    #[test]
    fn interrupted_reads_are_retried_even_on_the_first_header_byte() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"resilient").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut stream = InterruptingReader {
            inner: io::Cursor::new(buf),
            interrupt_next: true, // the very first header read is interrupted
        };
        assert_eq!(
            read_frame(&mut stream).unwrap().unwrap(),
            Frame::Intact(b"resilient".to_vec())
        );
        assert_eq!(
            read_frame(&mut stream).unwrap().unwrap(),
            Frame::Intact(Vec::new())
        );
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    #[test]
    fn eof_inside_the_header_is_an_error_not_a_clean_close() {
        let mut cursor = io::Cursor::new(vec![5u8, 0]);
        let err = read_frame(&mut cursor).expect_err("mid-header EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
