//! A minimal blocking client for the `ftspan` wire protocol.
//!
//! One request in flight per connection: every method writes a frame and
//! blocks for the single reply frame. For pipelining, open more
//! connections — the server coalesces across them.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use ftspan::FaultSet;
use ftspan_graph::VertexId;
use ftspan_oracle::Query;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, BatchEntry, Reply, Request,
};

/// A blocking connection to a [`Server`](crate::Server).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns any error from establishing the TCP connection.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request frame and blocks for its reply frame.
    ///
    /// # Errors
    ///
    /// Returns an error when the connection drops or the server sends a
    /// frame that does not decode as a reply.
    pub fn call(&mut self, request: &Request) -> io::Result<Reply> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        decode_reply(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}")))
    }

    /// `DIST` — distance between `u` and `v` avoiding `faults`.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure; see [`Client::call`].
    pub fn distance(&mut self, u: VertexId, v: VertexId, faults: FaultSet) -> io::Result<Reply> {
        self.call(&Request::Distance { u, v, faults })
    }

    /// `PATH` — distance plus witness path.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure; see [`Client::call`].
    pub fn path(&mut self, u: VertexId, v: VertexId, faults: FaultSet) -> io::Result<Reply> {
        self.call(&Request::Path { u, v, faults })
    }

    /// `BATCH` — many queries answered in request order.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, or a non-`BATCH` reply (a shed batch comes
    /// back as [`Reply::Shed`], surfaced here as `Err`).
    pub fn batch(&mut self, queries: Vec<Query>) -> io::Result<Vec<BatchEntry>> {
        match self.call(&Request::Batch(queries))? {
            Reply::Batch(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// `WAVE` — applies a permanent fault wave; blocks until repair
    /// completes.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure; see [`Client::call`].
    pub fn wave(&mut self, wave: FaultSet) -> io::Result<Reply> {
        self.call(&Request::Wave(wave))
    }

    /// `METRICS` — the Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, or a non-`METRICS` reply.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// `SNAPSHOT` — a warm-restart snapshot of the serving oracle, ready
    /// for [`Snapshot::restore`](ftspan_oracle::Snapshot::restore).
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, or a non-`SNAPSHOT` reply.
    pub fn snapshot(&mut self) -> io::Result<Vec<u8>> {
        match self.call(&Request::Snapshot)? {
            Reply::Snapshot(bytes) => Ok(bytes),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}
