//! A minimal blocking client for the `ftspan` wire protocol.
//!
//! One request in flight per connection: every method writes a frame and
//! blocks for the single reply frame. For pipelining, open more
//! connections — the server coalesces across them.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use ftspan::FaultSet;
use ftspan_graph::VertexId;
use ftspan_oracle::Query;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, BatchEntry, Reply, Request,
};

/// A blocking connection to a [`Server`](crate::Server).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns any error from establishing the TCP connection.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request frame and blocks for its reply frame.
    ///
    /// # Errors
    ///
    /// Returns an error when the connection drops, a reply frame fails its
    /// checksum (`InvalidData` — corrupt bytes are never deserialized), or
    /// the server sends a frame that does not decode as a reply.
    pub fn call(&mut self, request: &Request) -> io::Result<Reply> {
        write_frame(&mut self.stream, &encode_request(request))?;
        self.read_reply()
    }

    /// Blocks for one reply frame without sending anything — the receive
    /// half of [`Client::call`], also used to drain multi-frame replies
    /// (snapshot chunks, journal streams).
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn read_reply(&mut self) -> io::Result<Reply> {
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        decode_reply(&frame.into_intact()?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}")))
    }

    /// `DIST` — distance between `u` and `v` avoiding `faults`.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure; see [`Client::call`].
    pub fn distance(&mut self, u: VertexId, v: VertexId, faults: FaultSet) -> io::Result<Reply> {
        self.call(&Request::Distance { u, v, faults })
    }

    /// `PATH` — distance plus witness path.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure; see [`Client::call`].
    pub fn path(&mut self, u: VertexId, v: VertexId, faults: FaultSet) -> io::Result<Reply> {
        self.call(&Request::Path { u, v, faults })
    }

    /// `BATCH` — many queries answered in request order.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, or a non-`BATCH` reply (a shed batch comes
    /// back as [`Reply::Shed`], surfaced here as `Err`).
    pub fn batch(&mut self, queries: Vec<Query>) -> io::Result<Vec<BatchEntry>> {
        match self.call(&Request::Batch(queries))? {
            Reply::Batch(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// `WAVE` — applies a permanent fault wave; blocks until repair
    /// completes.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure; see [`Client::call`].
    pub fn wave(&mut self, wave: FaultSet) -> io::Result<Reply> {
        self.call(&Request::Wave(wave))
    }

    /// `METRICS` — the Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, or a non-`METRICS` reply.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// `SNAPSHOT` — a warm-restart snapshot of the serving oracle, ready
    /// for [`Snapshot::restore`](ftspan_oracle::Snapshot::restore). The
    /// server streams bounded [`Reply::SnapshotChunk`] frames; this
    /// reassembles them, verifying offsets and the advertised total, so
    /// the caller still sees one byte string.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, a non-chunk reply, or a download whose
    /// chunks do not line up with the advertised total.
    pub fn snapshot(&mut self) -> io::Result<Vec<u8>> {
        let mut first = true;
        let mut expected: u64 = 0;
        let mut bytes = Vec::new();
        loop {
            match if first {
                first = false;
                self.call(&Request::Snapshot)?
            } else {
                self.read_reply()?
            } {
                Reply::SnapshotChunk {
                    total,
                    offset,
                    data,
                } => {
                    if bytes.is_empty() {
                        expected = total;
                        bytes.reserve_exact(usize::try_from(total).unwrap_or(0));
                    }
                    if total != expected || offset != bytes.len() as u64 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "snapshot chunk out of order: offset {offset} (have {}), \
                                 total {total} (expected {expected})",
                                bytes.len()
                            ),
                        ));
                    }
                    bytes.extend_from_slice(&data);
                    if bytes.len() as u64 >= expected {
                        return Ok(bytes);
                    }
                }
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// `JOURNAL_SUBSCRIBE` — switches this connection into a journal
    /// stream starting just past `from_epoch`. After an `Ok`, the only
    /// valid operation is [`Client::read_reply`] in a loop: the server
    /// sends [`Reply::JournalEntries`] frames (possibly empty heartbeats)
    /// until it shuts down or the connection drops. The first frame is
    /// read here so a rejection ([`Reply::Error`] — journaling disabled,
    /// or `from_epoch` predating the journal) surfaces immediately.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, or the server's typed rejection.
    pub fn journal_subscribe(
        &mut self,
        from_epoch: u64,
    ) -> io::Result<Vec<ftspan_oracle::JournalEntry>> {
        match self.call(&Request::JournalSubscribe { from_epoch })? {
            Reply::JournalEntries(entries) => Ok(entries),
            Reply::Error(message) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("subscription rejected: {message}"),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// `PROMOTE` — turns a caught-up replica into a primary; returns the
    /// epoch it now accepts waves at.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, or the server's typed rejection (already a
    /// primary).
    pub fn promote(&mut self) -> io::Result<u64> {
        match self.call(&Request::Promote)? {
            Reply::Promoted { epoch } => Ok(epoch),
            Reply::Error(message) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("promotion rejected: {message}"),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Consumes the client, returning the raw stream — the replica's
    /// follower thread takes over a subscribed connection this way.
    #[must_use]
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}
