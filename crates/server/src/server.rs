//! The accept loop, per-connection handlers, and the service thread.
//!
//! ## Architecture
//!
//! One **service thread** owns the [`OracleService`] — submissions stay
//! single-writer, exactly as the front-end's submit/pump/drain contract
//! requires — and consumes jobs from an mpsc channel. Each accepted
//! connection gets a **handler thread** that reads protocol frames, applies
//! the per-client token bucket, forwards work as jobs, and writes replies
//! back; the service thread batches whatever jobs have queued across
//! connections into one submit-drain round, so concurrent clients coalesce
//! against each other exactly like one big batch would.
//!
//! ## Flow control
//!
//! * **Per-client rate limiting** ([`ServerConfig::rate_capacity`] /
//!   [`ServerConfig::rate_refill_per_sec`]): a token bucket per connection;
//!   `DIST`/`PATH` cost one token, `BATCH` costs its length, `WAVE` costs
//!   one. An empty bucket produces an explicit
//!   [`Reply::Shed`]`(`[`ShedReason::RateLimited`]`)` — clients are told,
//!   never silently dropped.
//! * **Bounded in-flight tickets** ([`ServerConfig::max_in_flight_per_conn`]):
//!   oversized batches are split into chunks submitted one at a time, so a
//!   single connection can never occupy more than its share of service
//!   tickets; within the service, the existing per-lane admission bounds
//!   ([`ServiceConfig::with_lane_in_flight`](ftspan_oracle::ServiceConfig))
//!   apply per round. Queries the service sheds come back as per-entry
//!   [`BatchEntry::Shed`] (or [`ShedReason::Admission`] for single
//!   queries).
//! * **Graceful drain**: [`Server::shutdown`] stops accepting, unblocks
//!   every connection, and the service thread keeps answering queued jobs
//!   until the last handler exits — then hands the warm [`OracleService`]
//!   back to the caller (ready for [`Snapshot::capture`]).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ftspan::FaultSet;
use ftspan_oracle::{OracleService, Query, Snapshot, Snapshottable, SpannerOracle, TicketState};

use crate::protocol::{
    decode_request, encode_reply, read_frame, write_frame, BatchEntry, Reply, Request, ShedReason,
    WaveSummary, WireAnswer,
};

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum service tickets one connection may hold in flight; larger
    /// `BATCH` requests are split into chunks of this size, submitted one
    /// chunk at a time.
    pub max_in_flight_per_conn: usize,
    /// Token-bucket burst capacity per connection. `0` disables rate
    /// limiting entirely.
    pub rate_capacity: u32,
    /// Tokens restored per second. `0.0` means the bucket never refills —
    /// each connection gets exactly `rate_capacity` requests, which makes
    /// shedding deterministic (the configuration the e2e tests pin).
    pub rate_refill_per_sec: f64,
    /// How often the accept loop polls for shutdown between connections.
    pub accept_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_in_flight_per_conn: 256,
            rate_capacity: 0,
            rate_refill_per_sec: 0.0,
            accept_poll: Duration::from_millis(20),
        }
    }
}

/// Jobs forwarded from connection handlers to the service thread. Every job
/// carries its own reply channel.
enum Job {
    Queries(Vec<Query>, mpsc::Sender<Vec<BatchEntry>>),
    Wave(FaultSet, mpsc::Sender<WaveSummary>),
    Metrics(mpsc::Sender<String>),
    Snapshot(mpsc::Sender<Vec<u8>>),
}

/// How many queued jobs the service thread folds into one submit-drain
/// round. Bounds per-round latency without giving up cross-connection
/// coalescing.
const JOBS_PER_ROUND: usize = 64;

/// A running `ftspan` server. Dropping it shuts it down; prefer
/// [`Server::shutdown`] to get the warm service back.
#[derive(Debug)]
pub struct Server<O: SpannerOracle + Send + 'static> {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<thread::JoinHandle<()>>,
    service_thread: Option<thread::JoinHandle<OracleService<O>>>,
}

impl<O> Server<O>
where
    O: SpannerOracle + Snapshottable + Send + 'static,
{
    /// Binds `addr` (use port `0` for an ephemeral port) and starts serving
    /// the given service. The service moves into the service thread and
    /// comes back out of [`Server::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn start(
        service: OracleService<O>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let vertex_count = service.oracle().graph().vertex_count();

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let service_thread = thread::Builder::new()
            .name("ftspan-service".into())
            .spawn(move || service_loop(service, &job_rx))?;

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let config = config.clone();
            thread::Builder::new()
                .name("ftspan-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &job_tx, &shutdown, &conns, &config, vertex_count);
                })?
        };

        Ok(Self {
            local_addr,
            shutdown,
            conns,
            accept_thread: Some(accept_thread),
            service_thread: Some(service_thread),
        })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains in-flight work, joins every thread, and
    /// returns the warm [`OracleService`] — metrics, caches, and repaired
    /// spanner intact, ready for [`Snapshot::capture`].
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> OracleService<O> {
        self.begin_shutdown();
        self.service_thread
            .take()
            .expect("service thread present until shutdown")
            .join()
            .expect("service thread must not panic")
    }

    fn begin_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock every connection handler stuck in a read; they observe
        // EOF, finish their in-flight request, and drop their job senders.
        for conn in self
            .conns
            .lock()
            .expect("connection list poisoned")
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept_thread.take() {
            accept.join().expect("accept thread must not panic");
        }
    }
}

impl<O: SpannerOracle + Send + 'static> Drop for Server<O> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for conn in self
            .conns
            .lock()
            .expect("connection list poisoned")
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        if let Some(service) = self.service_thread.take() {
            let _ = service.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    job_tx: &mpsc::Sender<Job>,
    shutdown: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    config: &ServerConfig,
    vertex_count: usize,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().expect("connection list poisoned").push(clone);
                }
                let job_tx = job_tx.clone();
                let config = config.clone();
                let _ = thread::Builder::new()
                    .name("ftspan-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &job_tx, &config, vertex_count);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(config.accept_poll);
            }
            Err(_) => break,
        }
    }
    // The accept loop's job sender drops here; the service thread exits
    // once the last connection handler has dropped its clone too.
}

/// The service thread: folds queued jobs into submit-drain rounds against
/// the single-writer [`OracleService`], replies per job, and exits (giving
/// the service back) when every sender is gone.
fn service_loop<O: SpannerOracle + Snapshottable>(
    mut service: OracleService<O>,
    jobs: &mpsc::Receiver<Job>,
) -> OracleService<O> {
    while let Ok(first) = jobs.recv() {
        let mut round = vec![first];
        while round.len() < JOBS_PER_ROUND {
            match jobs.try_recv() {
                Ok(job) => round.push(job),
                Err(_) => break,
            }
        }
        run_round(&mut service, round);
    }
    service
}

/// One submit-drain round over a set of jobs from any mix of connections.
/// Jobs are submitted in arrival order, so a `WAVE` acts as the same FIFO
/// barrier it is inside the service queue.
fn run_round<O: SpannerOracle + Snapshottable>(service: &mut OracleService<O>, round: Vec<Job>) {
    enum Pending {
        Queries(Vec<ftspan_oracle::TicketId>, mpsc::Sender<Vec<BatchEntry>>),
        Wave(ftspan_oracle::TicketId, mpsc::Sender<WaveSummary>),
    }

    let mut pending = Vec::with_capacity(round.len());
    for job in round {
        match job {
            Job::Queries(queries, reply) => {
                let tickets = queries.into_iter().map(|q| service.submit(q)).collect();
                pending.push(Pending::Queries(tickets, reply));
            }
            Job::Wave(wave, reply) => {
                let ticket = service.submit_wave(wave);
                pending.push(Pending::Wave(ticket, reply));
            }
            // Reads need no drain; answer immediately against current state.
            Job::Metrics(reply) => {
                let _ = reply.send(service.render_prometheus());
            }
            Job::Snapshot(reply) => {
                let _ = reply.send(Snapshot::capture(service.oracle()));
            }
        }
    }
    if pending.is_empty() {
        return;
    }
    service.drain();
    for entry in pending {
        match entry {
            Pending::Queries(tickets, reply) => {
                let entries = tickets
                    .into_iter()
                    .map(|t| match service.state(t) {
                        TicketState::Answered(answer) => BatchEntry::Answered(WireAnswer {
                            distance: answer.distance,
                            path: answer.path.clone(),
                        }),
                        TicketState::Shed => BatchEntry::Shed,
                        state => unreachable!("ticket unresolved after drain: {state:?}"),
                    })
                    .collect();
                let _ = reply.send(entries);
            }
            Pending::Wave(ticket, reply) => {
                let report = service
                    .wave_report(ticket)
                    .expect("wave resolved after drain");
                let summary = WaveSummary {
                    epoch: service.oracle().epoch(),
                    edges_added: report.outcome.edges_added as u64,
                    broken_pairs: report.outcome.broken_pairs.len() as u64,
                    escalated: report.outcome.escalated,
                    rebuilt_lanes: report.rebuilt_lanes.iter().map(|&l| l as u32).collect(),
                };
                let _ = reply.send(summary);
            }
        }
    }
    service.recycle();
}

/// Per-connection token bucket. With `refill_per_sec == 0.0` the bucket is
/// a hard per-connection budget, which is what the deterministic tests use.
struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(config: &ServerConfig) -> Option<Self> {
        (config.rate_capacity > 0).then(|| Self {
            capacity: f64::from(config.rate_capacity),
            tokens: f64::from(config.rate_capacity),
            refill_per_sec: config.rate_refill_per_sec,
            last: Instant::now(),
        })
    }

    fn admit(&mut self, cost: f64) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens + 1e-9 < cost {
            return false;
        }
        self.tokens -= cost;
        true
    }
}

fn handle_connection(
    mut stream: TcpStream,
    job_tx: &mpsc::Sender<Job>,
    config: &ServerConfig,
    vertex_count: usize,
) {
    let mut bucket = TokenBucket::new(config);
    while let Ok(Some(body)) = read_frame(&mut stream) {
        let reply = match decode_request(&body) {
            Ok(request) => serve_request(request, &mut bucket, job_tx, config, vertex_count),
            Err(e) => Reply::Error(format!("bad request: {e}")),
        };
        if write_frame(&mut stream, &encode_reply(&reply)).is_err() {
            break;
        }
    }
}

fn serve_request(
    request: Request,
    bucket: &mut Option<TokenBucket>,
    job_tx: &mpsc::Sender<Job>,
    config: &ServerConfig,
    vertex_count: usize,
) -> Reply {
    let cost = match &request {
        Request::Distance { .. } | Request::Path { .. } | Request::Wave(_) => 1.0,
        Request::Batch(queries) => queries.len() as f64,
        // Telemetry and snapshot reads are not client query traffic.
        Request::Metrics | Request::Snapshot => 0.0,
    };
    if cost > 0.0 {
        if let Some(bucket) = bucket {
            if !bucket.admit(cost) {
                return Reply::Shed(ShedReason::RateLimited);
            }
        }
    }
    if let Some(message) = validate(&request, vertex_count) {
        return Reply::Error(message);
    }
    match request {
        Request::Distance { u, v, faults } => {
            match submit_queries(job_tx, vec![Query::distance(u, v, faults)]) {
                Some(mut entries) => match entries.pop() {
                    Some(BatchEntry::Answered(answer)) => Reply::Answer(answer),
                    _ => Reply::Shed(ShedReason::Admission),
                },
                None => service_gone(),
            }
        }
        Request::Path { u, v, faults } => {
            match submit_queries(job_tx, vec![Query::path(u, v, faults)]) {
                Some(mut entries) => match entries.pop() {
                    Some(BatchEntry::Answered(answer)) => Reply::Answer(answer),
                    _ => Reply::Shed(ShedReason::Admission),
                },
                None => service_gone(),
            }
        }
        Request::Batch(queries) => {
            // Bound this connection's in-flight tickets: submit one chunk at
            // a time, waiting for each before the next.
            let mut entries = Vec::with_capacity(queries.len());
            let chunk_size = config.max_in_flight_per_conn.max(1);
            let mut queries = queries;
            while !queries.is_empty() {
                let rest = queries.split_off(queries.len().min(chunk_size));
                let chunk = std::mem::replace(&mut queries, rest);
                match submit_queries(job_tx, chunk) {
                    Some(chunk_entries) => entries.extend(chunk_entries),
                    None => return service_gone(),
                }
            }
            Reply::Batch(entries)
        }
        Request::Wave(wave) => {
            let (reply_tx, reply_rx) = mpsc::channel();
            if job_tx.send(Job::Wave(wave, reply_tx)).is_err() {
                return service_gone();
            }
            match reply_rx.recv() {
                Ok(summary) => Reply::Wave(summary),
                Err(_) => service_gone(),
            }
        }
        Request::Metrics => {
            let (reply_tx, reply_rx) = mpsc::channel();
            if job_tx.send(Job::Metrics(reply_tx)).is_err() {
                return service_gone();
            }
            match reply_rx.recv() {
                Ok(text) => Reply::Metrics(text),
                Err(_) => service_gone(),
            }
        }
        Request::Snapshot => {
            let (reply_tx, reply_rx) = mpsc::channel();
            if job_tx.send(Job::Snapshot(reply_tx)).is_err() {
                return service_gone();
            }
            match reply_rx.recv() {
                Ok(bytes) => Reply::Snapshot(bytes),
                Err(_) => service_gone(),
            }
        }
    }
}

fn submit_queries(job_tx: &mpsc::Sender<Job>, queries: Vec<Query>) -> Option<Vec<BatchEntry>> {
    let (reply_tx, reply_rx) = mpsc::channel();
    job_tx.send(Job::Queries(queries, reply_tx)).ok()?;
    reply_rx.recv().ok()
}

fn service_gone() -> Reply {
    Reply::Error("service is shutting down".to_owned())
}

/// Rejects ids outside the graph's vertex set before they reach the
/// backend — the oracles index dense arrays by vertex id, and a remote
/// client must not be able to panic the service thread.
fn validate(request: &Request, vertex_count: usize) -> Option<String> {
    let check_vertex = |v: ftspan_graph::VertexId| {
        (v.index() >= vertex_count).then(|| {
            format!(
                "vertex id {} out of range for {vertex_count} vertices",
                v.index()
            )
        })
    };
    // Edge-fault ids are checked by the oracles themselves (stale ids are
    // treated as already-removed edges), so only vertex ids need guarding.
    let check_faults =
        |faults: &FaultSet| faults.vertex_faults().iter().find_map(|&v| check_vertex(v));
    match request {
        Request::Distance { u, v, faults } | Request::Path { u, v, faults } => check_vertex(*u)
            .or_else(|| check_vertex(*v))
            .or_else(|| check_faults(faults)),
        Request::Batch(queries) => queries.iter().find_map(|q| {
            check_vertex(q.u)
                .or_else(|| check_vertex(q.v))
                .or_else(|| check_faults(&q.faults))
        }),
        Request::Wave(wave) => check_faults(wave),
        Request::Metrics | Request::Snapshot => None,
    }
}
