//! The accept loop and per-connection handlers over the concurrent
//! service core.
//!
//! ## Architecture
//!
//! The server shares one [`OracleService`] — the concurrent,
//! epoch-published core — across every connection. Each accepted
//! connection gets a **handler thread** that reads protocol frames,
//! applies the per-client token bucket, submits work straight into the
//! service ([`OracleService::submit_batch`] keeps a batch contiguous in
//! the admission queue), and blocks on [`OracleService::wait`] for each
//! ticket. There is no intermediate job channel and no dedicated service
//! thread: the service's own reader workers answer rounds in parallel
//! against the published epoch, and concurrent clients coalesce against
//! each other in the shared admission queue exactly like one big batch
//! would. If the service was built without workers,
//! [`Server::start`] spawns a small pool so handlers never serialize on
//! inline pumping.
//!
//! Telemetry reads never enter the query queue: `METRICS` renders from
//! the shared metric counters and `SNAPSHOT` captures against the
//! currently published epoch, off the query path. (A capture briefly
//! pins the epoch; a concurrent wave barrier waits for it to finish, so
//! snapshot downloads delay repairs, never corrupt them — and they are
//! charged tokens, see below.)
//!
//! ## Flow control
//!
//! * **Per-client rate limiting** ([`ServerConfig::rate_capacity`] /
//!   [`ServerConfig::rate_refill_per_sec`]): a token bucket per connection;
//!   `DIST`/`PATH` cost one token, `BATCH` costs its length, `WAVE` costs
//!   one, and `METRICS`/`SNAPSHOT` cost [`ServerConfig::metrics_cost`] /
//!   [`ServerConfig::snapshot_cost`]. **Every request costs at least one
//!   token** — an empty `BATCH` or a telemetry read is never free, so a
//!   throttled client cannot loop free multi-MB snapshot downloads. An
//!   empty bucket produces an explicit
//!   [`Reply::Shed`]`(`[`ShedReason::RateLimited`]`)` — clients are told,
//!   never silently dropped.
//! * **Bounded in-flight tickets** ([`ServerConfig::max_in_flight_per_conn`]):
//!   oversized batches are split into chunks submitted one at a time, so a
//!   single connection can never occupy more than its share of service
//!   tickets; within the service, the existing per-lane admission bounds
//!   ([`ServiceConfig::with_lane_in_flight`](ftspan_oracle::ServiceConfig))
//!   apply per round. Queries the service sheds come back as per-entry
//!   [`BatchEntry::Shed`] (or [`ShedReason::Admission`] for single
//!   queries).
//! * **Graceful drain**: [`Server::shutdown`] stops accepting, unblocks
//!   every connection, joins every handler (each finishes its in-flight
//!   request first) — then hands the warm [`OracleService`] back to the
//!   caller (ready for [`Snapshot::capture`]).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ftspan::FaultSet;
use ftspan_graph::wire::WireWriter;
use ftspan_oracle::{OracleService, Query, Snapshot, Snapshottable, SpannerOracle, TicketState};

use crate::protocol::{
    decode_request, encode_reply_into, read_frame, write_frame, BatchEntry, Frame, Reply, Request,
    ShedReason, WaveSummary, WireAnswer,
};

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum service tickets one connection may hold in flight; larger
    /// `BATCH` requests are split into chunks of this size, submitted one
    /// chunk at a time.
    pub max_in_flight_per_conn: usize,
    /// Token-bucket burst capacity per connection. `0` disables rate
    /// limiting entirely.
    pub rate_capacity: u32,
    /// Tokens restored per second. `0.0` means the bucket never refills —
    /// each connection gets exactly `rate_capacity` requests, which makes
    /// shedding deterministic (the configuration the e2e tests pin).
    pub rate_refill_per_sec: f64,
    /// How often the accept loop polls for shutdown between connections.
    pub accept_poll: Duration,
    /// Token cost of a `METRICS` request. Floored at 1: telemetry is
    /// cheap but never free.
    pub metrics_cost: u32,
    /// Token cost of a `SNAPSHOT` request. Floored at 1; captures ship
    /// the full serialized oracle, so deployments that rate-limit should
    /// price them well above a query.
    pub snapshot_cost: u32,
    /// Per-connection read timeout. A connection that sends nothing — or
    /// stalls mid-frame, the slow-loris pattern — for this long gets one
    /// explicit [`Reply::Shed`]`(`[`ShedReason::Timeout`]`)` and is
    /// closed, freeing its handler thread. `None` disables the timeout
    /// (a stalled client then pins its handler until shutdown).
    pub read_timeout: Option<Duration>,
    /// Interval of the background [`Snapshot::capture`] timer. When set,
    /// a timer thread periodically captures the published epoch (off the
    /// query path) into an in-memory cell readable via
    /// [`Server::latest_snapshot`] — a crash leaves at most one interval
    /// of churn unsnapshotted. `None` (the default) disables the timer;
    /// clients can still pull snapshots through the `SNAPSHOT` request.
    pub snapshot_interval: Option<Duration>,
    /// Largest [`Reply::SnapshotChunk`] data payload in a `SNAPSHOT`
    /// download (default 4 MiB). The capture is still one in-memory byte
    /// string, but neither the wire nor the client ever materializes a
    /// frame bigger than this — a 256 MiB snapshot streams as bounded
    /// frames instead of one giant one.
    pub snapshot_chunk_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_in_flight_per_conn: 256,
            rate_capacity: 0,
            rate_refill_per_sec: 0.0,
            accept_poll: Duration::from_millis(20),
            metrics_cost: 1,
            snapshot_cost: 1,
            read_timeout: Some(Duration::from_secs(30)),
            snapshot_interval: None,
            snapshot_chunk_len: 4 * 1024 * 1024,
        }
    }
}

/// Token cost of one request under `config`, floored at one token so no
/// request shape — not even `BATCH []` — is free.
fn request_cost(request: &Request, config: &ServerConfig) -> f64 {
    let raw = match request {
        Request::Distance { .. }
        | Request::Path { .. }
        | Request::Wave(_)
        | Request::JournalSubscribe { .. }
        | Request::Promote => 1.0,
        Request::Batch(queries) => queries.len() as f64,
        Request::Metrics => f64::from(config.metrics_cost),
        Request::Snapshot => f64::from(config.snapshot_cost),
    };
    raw.max(1.0)
}

/// How many service workers [`Server::start`] spawns when the supplied
/// service has none of its own.
fn default_worker_pool() -> usize {
    thread::available_parallelism()
        .map_or(2, usize::from)
        .min(4)
}

/// The most recent background snapshot, shared between the timer thread
/// and [`Server::latest_snapshot`].
#[derive(Debug, Default)]
struct SnapshotStore {
    latest: Mutex<Option<Vec<u8>>>,
    captures: std::sync::atomic::AtomicU64,
}

impl SnapshotStore {
    fn lock_latest(&self) -> std::sync::MutexGuard<'_, Option<Vec<u8>>> {
        self.latest.lock().expect("snapshot store poisoned")
    }
}

/// The background capture loop: sleeps on the timer condvar (so shutdown
/// can wake it immediately), and on every elapsed interval captures the
/// currently published epoch into the store. The capture itself runs
/// without any lock held — it briefly pins the epoch, exactly like a
/// `SNAPSHOT` download, so query rounds keep flowing.
fn snapshot_timer_loop<O: SpannerOracle + Snapshottable + 'static>(
    interval: Duration,
    shutdown: &AtomicBool,
    service: &OracleService<O>,
    signal: &(Mutex<()>, std::sync::Condvar),
    store: &SnapshotStore,
) {
    let (lock, cv) = signal;
    let mut guard = lock.lock().expect("snapshot timer signal poisoned");
    while !shutdown.load(Ordering::SeqCst) {
        let (g, timeout) = cv
            .wait_timeout(guard, interval)
            .expect("snapshot timer signal poisoned");
        guard = g;
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        if timeout.timed_out() {
            drop(guard);
            let bytes = Snapshot::capture(&*service.oracle());
            *store.lock_latest() = Some(bytes);
            store
                .captures
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            guard = lock.lock().expect("snapshot timer signal poisoned");
        }
    }
}

/// The replication link of a running replica: the follower thread applying
/// the primary's journal stream, plus what `PROMOTE` (or shutdown) needs to
/// stop it — shutting the stream down unblocks the thread's blocking read,
/// and joining it guarantees every entry it received has been applied.
#[derive(Debug)]
pub(crate) struct FollowerControl {
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) stream: TcpStream,
    pub(crate) handle: thread::JoinHandle<()>,
}

impl FollowerControl {
    fn stop_and_join(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let _ = self.handle.join();
    }
}

/// Replication role of a running server, shared with every handler.
#[derive(Debug)]
struct RoleState {
    /// `true` on a primary. A replica rejects `WAVE` with a typed error
    /// until a `PROMOTE` flips this.
    accepts_waves: AtomicBool,
    /// The replica's follower link; `PROMOTE` (and shutdown) takes it.
    follower: Mutex<Option<FollowerControl>>,
}

/// A running `ftspan` server. Dropping it shuts it down; prefer
/// [`Server::shutdown`] to get the warm service back.
#[derive(Debug)]
pub struct Server<O: SpannerOracle + 'static> {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    accept_thread: Option<thread::JoinHandle<()>>,
    snapshot_thread: Option<thread::JoinHandle<()>>,
    /// Wakes the snapshot timer early so shutdown never waits an interval.
    timer_signal: Arc<(Mutex<()>, std::sync::Condvar)>,
    snapshots: Arc<SnapshotStore>,
    role: Arc<RoleState>,
    service: Option<Arc<OracleService<O>>>,
}

impl<O> Server<O>
where
    O: SpannerOracle + Snapshottable + 'static,
{
    /// Binds `addr` (use port `0` for an ephemeral port) and starts serving
    /// the given service as a **primary** (waves accepted, wave journal
    /// enabled so followers can subscribe). The service is shared with
    /// every connection handler and comes back out of [`Server::shutdown`].
    /// If it has no worker threads yet, a small pool is spawned so handlers
    /// block on [`OracleService::wait`] instead of pumping rounds inline.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn start(
        service: OracleService<O>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::start_with_role(service, addr, config, true)
    }

    /// [`Server::start`] with an explicit starting role;
    /// `accepts_waves == false` is the replica mode
    /// [`ReplicaServer`](crate::ReplicaServer) uses.
    pub(crate) fn start_with_role(
        service: OracleService<O>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        accepts_waves: bool,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        if service.worker_count() == 0 {
            service.spawn_workers(default_worker_pool());
        }
        // Every server journals its waves: a primary so followers can
        // subscribe, a replica so *it* can serve followers (and fresh
        // subscriptions) after promotion. Enabled before the listener
        // serves anything, so no wave can precede the journal's base.
        let _ = service.enable_journal();
        let vertex_count = service.oracle().graph().vertex_count();
        let service = Arc::new(service);
        let role = Arc::new(RoleState {
            accepts_waves: AtomicBool::new(accepts_waves),
            follower: Mutex::new(None),
        });

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let handlers = Arc::clone(&handlers);
            let service = Arc::clone(&service);
            let role = Arc::clone(&role);
            let config = config.clone();
            thread::Builder::new()
                .name("ftspan-accept".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &service,
                        &shutdown,
                        &conns,
                        &handlers,
                        &config,
                        vertex_count,
                        &role,
                    );
                })?
        };

        let timer_signal: Arc<(Mutex<()>, std::sync::Condvar)> = Arc::default();
        let snapshots = Arc::new(SnapshotStore::default());
        let snapshot_thread = match config.snapshot_interval {
            Some(interval) => {
                let shutdown = Arc::clone(&shutdown);
                let service = Arc::clone(&service);
                let signal = Arc::clone(&timer_signal);
                let store = Arc::clone(&snapshots);
                Some(
                    thread::Builder::new()
                        .name("ftspan-snapshot".into())
                        .spawn(move || {
                            snapshot_timer_loop(interval, &shutdown, &service, &signal, &store);
                        })?,
                )
            }
            None => None,
        };

        Ok(Self {
            local_addr,
            shutdown,
            conns,
            handlers,
            accept_thread: Some(accept_thread),
            snapshot_thread,
            timer_signal,
            snapshots,
            role,
            service: Some(service),
        })
    }

    /// A shared handle to the serving service, for the follower thread a
    /// [`ReplicaServer`](crate::ReplicaServer) attaches.
    pub(crate) fn service_arc(&self) -> Arc<OracleService<O>> {
        Arc::clone(
            self.service
                .as_ref()
                .expect("service present until shutdown"),
        )
    }

    /// Installs the replica's follower link so `PROMOTE` and shutdown can
    /// stop it.
    pub(crate) fn install_follower(&self, control: FollowerControl) {
        *self.role.follower.lock().expect("role state poisoned") = Some(control);
    }

    /// `true` when this server accepts `WAVE` requests (a primary, or a
    /// promoted replica).
    #[must_use]
    pub fn accepts_waves(&self) -> bool {
        self.role.accepts_waves.load(Ordering::SeqCst)
    }

    /// The most recent background snapshot, if the timer
    /// ([`ServerConfig::snapshot_interval`]) has fired at least once.
    /// The bytes restore exactly like a `SNAPSHOT` download.
    #[must_use]
    pub fn latest_snapshot(&self) -> Option<Vec<u8>> {
        self.snapshots.lock_latest().clone()
    }

    /// How many background snapshots the timer has captured.
    #[must_use]
    pub fn snapshot_captures(&self) -> u64 {
        self.snapshots
            .captures
            .load(std::sync::atomic::Ordering::SeqCst)
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains in-flight work, joins every thread, and
    /// returns the warm [`OracleService`] — metrics, caches, and repaired
    /// spanner intact, ready for [`Snapshot::capture`].
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> OracleService<O> {
        self.begin_shutdown();
        let service = self.service.take().expect("service present until shutdown");
        match Arc::try_unwrap(service) {
            Ok(service) => service,
            Err(_) => panic!("a connection handler outlived shutdown"),
        }
    }

    /// Closes every connection, then joins the snapshot timer, the accept
    /// thread, and every handler (handlers observe the closed socket,
    /// finish their in-flight request, and exit).
    fn begin_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(follower) = self
            .role
            .follower
            .lock()
            .expect("role state poisoned")
            .take()
        {
            follower.stop_and_join();
        }
        self.timer_signal.1.notify_all();
        if let Some(timer) = self.snapshot_thread.take() {
            timer.join().expect("snapshot timer must not panic");
        }
        for conn in self
            .conns
            .lock()
            .expect("connection list poisoned")
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept_thread.take() {
            accept.join().expect("accept thread must not panic");
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl<O: SpannerOracle + 'static> Drop for Server<O> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(follower) = self
            .role
            .follower
            .lock()
            .expect("role state poisoned")
            .take()
        {
            follower.stop_and_join();
        }
        self.timer_signal.1.notify_all();
        if let Some(timer) = self.snapshot_thread.take() {
            let _ = timer.join();
        }
        for conn in self
            .conns
            .lock()
            .expect("connection list poisoned")
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for handler in handlers {
            let _ = handler.join();
        }
        // Dropping the service Arc last: with every handler joined this is
        // the final reference, so the service joins its workers here.
        self.service.take();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop<O: SpannerOracle + Snapshottable + 'static>(
    listener: &TcpListener,
    service: &Arc<OracleService<O>>,
    shutdown: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    handlers: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    config: &ServerConfig,
    vertex_count: usize,
    role: &Arc<RoleState>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().expect("connection list poisoned").push(clone);
                }
                let service = Arc::clone(service);
                let config = config.clone();
                let role = Arc::clone(role);
                let shutdown = Arc::clone(shutdown);
                let spawned = thread::Builder::new()
                    .name("ftspan-conn".into())
                    .spawn(move || {
                        handle_connection(
                            stream,
                            &service,
                            &config,
                            vertex_count,
                            &role,
                            &shutdown,
                        );
                    });
                if let Ok(handle) = spawned {
                    handlers.lock().expect("handler list poisoned").push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(config.accept_poll);
            }
            Err(_) => break,
        }
    }
}

/// Per-connection token bucket. With `refill_per_sec == 0.0` the bucket is
/// a hard per-connection budget, which is what the deterministic tests use.
struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(config: &ServerConfig) -> Option<Self> {
        (config.rate_capacity > 0).then(|| Self {
            capacity: f64::from(config.rate_capacity),
            tokens: f64::from(config.rate_capacity),
            refill_per_sec: config.rate_refill_per_sec,
            last: Instant::now(),
        })
    }

    fn admit(&mut self, cost: f64) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens + 1e-9 < cost {
            return false;
        }
        self.tokens -= cost;
        true
    }
}

fn handle_connection<O: SpannerOracle + Snapshottable + 'static>(
    mut stream: TcpStream,
    service: &OracleService<O>,
    config: &ServerConfig,
    vertex_count: usize,
    role: &RoleState,
    shutdown: &AtomicBool,
) {
    let mut bucket = TokenBucket::new(config);
    if stream.set_read_timeout(config.read_timeout).is_err() {
        return;
    }
    // One reply buffer per connection: every encode clears and reuses it,
    // so steady-state replies (the loopback batch path in particular) cost
    // zero allocations in the codec.
    let mut reply_buf = WireWriter::new();
    loop {
        match read_frame(&mut stream) {
            Ok(Some(Frame::Intact(body))) => match decode_request(&body) {
                // Multi-frame replies are written by the handler itself;
                // everything else goes through `serve_request`.
                Ok(Request::Snapshot) => {
                    let reply = admission(&Request::Snapshot, &mut bucket, config);
                    let result = match reply {
                        Some(reply) => {
                            encode_reply_into(&reply, &mut reply_buf);
                            write_frame(&mut stream, reply_buf.as_slice())
                        }
                        None => {
                            let bytes = Snapshot::capture(&*service.oracle());
                            write_snapshot_chunks(
                                &mut stream,
                                &mut reply_buf,
                                &bytes,
                                config.snapshot_chunk_len,
                            )
                        }
                    };
                    if result.is_err() {
                        break;
                    }
                }
                Ok(Request::JournalSubscribe { from_epoch }) => {
                    stream_journal(
                        &mut stream,
                        &mut reply_buf,
                        service,
                        from_epoch,
                        &mut bucket,
                        config,
                        shutdown,
                    );
                    // A subscription consumes the connection: when the
                    // stream ends (shutdown, divergent subscriber, dead
                    // peer), the connection is done.
                    break;
                }
                Ok(request) => {
                    let reply = admission(&request, &mut bucket, config).unwrap_or_else(|| {
                        serve_request(request, service, config, vertex_count, role)
                    });
                    encode_reply_into(&reply, &mut reply_buf);
                    if write_frame(&mut stream, reply_buf.as_slice()).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    encode_reply_into(&Reply::Error(format!("bad request: {e}")), &mut reply_buf);
                    if write_frame(&mut stream, reply_buf.as_slice()).is_err() {
                        break;
                    }
                }
            },
            // The frame arrived whole but its checksum failed: answer with
            // a typed error and keep the connection — framing is still
            // aligned, and the next frame may be healthy.
            Ok(Some(Frame::Corrupt)) => {
                encode_reply_into(
                    &Reply::Error("frame checksum mismatch: request dropped".to_owned()),
                    &mut reply_buf,
                );
                if write_frame(&mut stream, reply_buf.as_slice()).is_err() {
                    break;
                }
            }
            Ok(None) => break,
            // The read timeout fired (reported as `WouldBlock` or
            // `TimedOut` depending on platform): whether the client went
            // idle or stalled mid-frame, it gets one explicit shed and
            // loses the connection — a slow-loris cannot pin this thread.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                encode_reply_into(&Reply::Shed(ShedReason::Timeout), &mut reply_buf);
                let _ = write_frame(&mut stream, reply_buf.as_slice());
                break;
            }
            Err(_) => break,
        }
    }
    // The shutdown registry holds a clone of this stream, so dropping our
    // handle would leave the TCP connection half-alive after the handler
    // exits — a shed client would block forever on its next read instead
    // of seeing the close. Shut the underlying socket down explicitly:
    // handler exit means the connection is over.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Rate-limit + validity gate shared by all request shapes. `Some` is the
/// rejection reply; `None` admits the request.
fn admission(
    request: &Request,
    bucket: &mut Option<TokenBucket>,
    config: &ServerConfig,
) -> Option<Reply> {
    if let Some(bucket) = bucket {
        if !bucket.admit(request_cost(request, config)) {
            return Some(Reply::Shed(ShedReason::RateLimited));
        }
    }
    None
}

/// Streams a `SNAPSHOT` capture as bounded [`Reply::SnapshotChunk`]
/// frames. An empty capture is still one (empty) chunk, so the client
/// always gets at least one frame to complete on.
fn write_snapshot_chunks(
    stream: &mut TcpStream,
    reply_buf: &mut WireWriter,
    bytes: &[u8],
    chunk_len: usize,
) -> io::Result<()> {
    let total = bytes.len() as u64;
    let chunk_len = chunk_len.max(1);
    let mut offset = 0usize;
    loop {
        let end = bytes.len().min(offset + chunk_len);
        encode_reply_into(
            &Reply::SnapshotChunk {
                total,
                offset: offset as u64,
                data: bytes[offset..end].to_vec(),
            },
            reply_buf,
        );
        write_frame(stream, reply_buf.as_slice())?;
        offset = end;
        if offset >= bytes.len() {
            return Ok(());
        }
    }
}

/// Turns the connection into a journal subscription: send the backlog past
/// `from_epoch`, then keep sending entries as waves commit, with empty
/// heartbeat frames on idle ticks so a dead subscriber is noticed. Runs
/// until shutdown, a write failure (subscriber gone), or a rejection.
fn stream_journal<O: SpannerOracle + 'static>(
    stream: &mut TcpStream,
    reply_buf: &mut WireWriter,
    service: &OracleService<O>,
    from_epoch: u64,
    bucket: &mut Option<TokenBucket>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let request = Request::JournalSubscribe { from_epoch };
    if let Some(reply) = admission(&request, bucket, config) {
        encode_reply_into(&reply, reply_buf);
        let _ = write_frame(stream, reply_buf.as_slice());
        return;
    }
    let Some(journal) = service.journal() else {
        encode_reply_into(
            &Reply::Error("journaling is not enabled on this server".to_owned()),
            reply_buf,
        );
        let _ = write_frame(stream, reply_buf.as_slice());
        return;
    };
    if from_epoch < journal.base_epoch() {
        encode_reply_into(
            &Reply::Error(format!(
                "journal starts after epoch {}; epoch {from_epoch} predates it — \
                 re-bootstrap from a fresh snapshot",
                journal.base_epoch()
            )),
            reply_buf,
        );
        let _ = write_frame(stream, reply_buf.as_slice());
        return;
    }
    let mut cursor = from_epoch;
    while !shutdown.load(Ordering::SeqCst) {
        let entries = journal.wait_past(cursor, Duration::from_millis(200));
        if let Some(last) = entries.last() {
            cursor = last.epoch;
        }
        // Empty == idle tick: still write, as a heartbeat — a vanished
        // subscriber turns it into a write error and ends the stream.
        encode_reply_into(&Reply::JournalEntries(entries), reply_buf);
        if write_frame(stream, reply_buf.as_slice()).is_err() {
            return;
        }
    }
}

fn serve_request<O: SpannerOracle + Snapshottable + 'static>(
    request: Request,
    service: &OracleService<O>,
    config: &ServerConfig,
    vertex_count: usize,
    role: &RoleState,
) -> Reply {
    if let Some(message) = validate(&request, vertex_count) {
        return Reply::Error(message);
    }
    match request {
        Request::Distance { u, v, faults } => single_query(service, Query::distance(u, v, faults)),
        Request::Path { u, v, faults } => single_query(service, Query::path(u, v, faults)),
        Request::Batch(queries) => {
            // Bound this connection's in-flight tickets: submit one chunk at
            // a time, waiting for each before the next.
            let mut entries = Vec::with_capacity(queries.len());
            let chunk_size = config.max_in_flight_per_conn.max(1);
            let mut queries = queries;
            while !queries.is_empty() {
                let rest = queries.split_off(queries.len().min(chunk_size));
                let chunk = std::mem::replace(&mut queries, rest);
                let tickets = service.submit_batch(chunk);
                for ticket in tickets {
                    entries.push(match service.wait(ticket) {
                        TicketState::Answered(answer) => BatchEntry::Answered(WireAnswer {
                            distance: answer.distance,
                            path: answer.path,
                        }),
                        _ => BatchEntry::Shed,
                    });
                }
            }
            Reply::Batch(entries)
        }
        Request::Wave(wave) => {
            if !role.accepts_waves.load(Ordering::SeqCst) {
                return Reply::Error(
                    "replica is read-only: WAVE rejected (send PROMOTE to make it a primary)"
                        .to_owned(),
                );
            }
            let ticket = service.submit_wave(wave);
            match service.wait(ticket) {
                TicketState::Waved(report) => Reply::Wave(WaveSummary {
                    epoch: service.oracle().epoch(),
                    edges_added: report.outcome.edges_added as u64,
                    broken_pairs: report.outcome.broken_pairs.len() as u64,
                    escalated: report.outcome.escalated,
                    rebuilt_lanes: report.rebuilt_lanes.iter().map(|&l| l as u32).collect(),
                }),
                state => Reply::Error(format!("wave unresolved: {state:?}")),
            }
        }
        Request::Promote => {
            if role.accepts_waves.load(Ordering::SeqCst) {
                return Reply::Error("already a primary: PROMOTE rejected".to_owned());
            }
            // Stop the follower first: shutting its stream down unblocks
            // its read, and joining it guarantees every journal entry it
            // received has been applied before waves are accepted — the
            // promoted epoch is exactly what the replica caught up to.
            let follower = role.follower.lock().expect("role state poisoned").take();
            if let Some(follower) = follower {
                follower.stop_and_join();
            }
            role.accepts_waves.store(true, Ordering::SeqCst);
            Reply::Promoted {
                epoch: service.oracle().epoch(),
            }
        }
        // Reads answer against current shared state, off the query queue.
        Request::Metrics => Reply::Metrics(service.render_prometheus()),
        // Multi-frame replies never reach this function.
        Request::Snapshot | Request::JournalSubscribe { .. } => {
            Reply::Error("internal: streaming request routed to serve_request".to_owned())
        }
    }
}

fn single_query<O: SpannerOracle + 'static>(service: &OracleService<O>, query: Query) -> Reply {
    let ticket = service.submit(query);
    match service.wait(ticket) {
        TicketState::Answered(answer) => Reply::Answer(WireAnswer {
            distance: answer.distance,
            path: answer.path,
        }),
        _ => Reply::Shed(ShedReason::Admission),
    }
}

/// Rejects ids outside the graph's vertex set before they reach the
/// backend — the oracles index dense arrays by vertex id, and a remote
/// client must not be able to panic a handler thread.
fn validate(request: &Request, vertex_count: usize) -> Option<String> {
    let check_vertex = |v: ftspan_graph::VertexId| {
        (v.index() >= vertex_count).then(|| {
            format!(
                "vertex id {} out of range for {vertex_count} vertices",
                v.index()
            )
        })
    };
    // Edge-fault ids are checked by the oracles themselves (stale ids are
    // treated as already-removed edges), so only vertex ids need guarding.
    let check_faults =
        |faults: &FaultSet| faults.vertex_faults().iter().find_map(|&v| check_vertex(v));
    match request {
        Request::Distance { u, v, faults } | Request::Path { u, v, faults } => check_vertex(*u)
            .or_else(|| check_vertex(*v))
            .or_else(|| check_faults(faults)),
        Request::Batch(queries) => queries.iter().find_map(|q| {
            check_vertex(q.u)
                .or_else(|| check_vertex(q.v))
                .or_else(|| check_faults(&q.faults))
        }),
        Request::Wave(wave) => check_faults(wave),
        Request::Metrics
        | Request::Snapshot
        | Request::JournalSubscribe { .. }
        | Request::Promote => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan::FaultModel;
    use ftspan_graph::vid;

    fn config(metrics_cost: u32, snapshot_cost: u32) -> ServerConfig {
        ServerConfig {
            metrics_cost,
            snapshot_cost,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn every_request_costs_at_least_one_token() {
        let c = config(0, 0);
        assert_eq!(request_cost(&Request::Batch(vec![]), &c), 1.0);
        assert_eq!(request_cost(&Request::Metrics, &c), 1.0);
        assert_eq!(request_cost(&Request::Snapshot, &c), 1.0);
        let empty = FaultSet::empty(FaultModel::Vertex);
        assert_eq!(
            request_cost(
                &Request::Distance {
                    u: vid(0),
                    v: vid(1),
                    faults: empty.clone(),
                },
                &c
            ),
            1.0
        );
        assert_eq!(request_cost(&Request::Wave(empty), &c), 1.0);
    }

    #[test]
    fn telemetry_costs_are_configurable() {
        let c = config(3, 40);
        assert_eq!(request_cost(&Request::Metrics, &c), 3.0);
        assert_eq!(request_cost(&Request::Snapshot, &c), 40.0);
        let queries = vec![Query::distance(vid(0), vid(1), FaultSet::empty(FaultModel::Vertex)); 5];
        assert_eq!(request_cost(&Request::Batch(queries), &c), 5.0);
    }

    #[test]
    fn a_depleted_bucket_sheds_telemetry_reads() {
        let server_config = ServerConfig {
            rate_capacity: 2,
            rate_refill_per_sec: 0.0,
            snapshot_cost: 1,
            ..ServerConfig::default()
        };
        let mut bucket = TokenBucket::new(&server_config).expect("bucket configured");
        let cost = request_cost(&Request::Snapshot, &server_config);
        assert!(bucket.admit(cost));
        assert!(bucket.admit(cost));
        assert!(!bucket.admit(cost), "free snapshot loops are closed");
    }
}
