//! Wire-level fault injection: a TCP proxy that misbehaves on purpose.
//!
//! [`ChaosProxy`] sits between a client and an `ftspan` server and
//! forwards bytes faithfully until a scripted [`ProxyFault`] triggers —
//! independently per direction, so one proxy can model each of the three
//! classic wire failures:
//!
//! * **mid-frame disconnect** — `CloseAfter` on the client→server leg
//!   drops the connection partway through a request frame; the server
//!   must treat the truncated frame as an error and release the handler.
//! * **slow-loris stall** — `StallAfter` on the client→server leg stops
//!   forwarding (without closing), exactly like a client that opens a
//!   frame and never finishes it; the server's read timeout must fire.
//! * **truncated reply** — `CloseAfter` on the server→client leg cuts a
//!   reply frame short; the *client* must surface an explicit error
//!   instead of waiting forever.
//! * **bit rot in flight** — `CorruptAfter` keeps the connection up but
//!   XOR-flips every byte past its budget; the frame checksum must catch
//!   it and the receiver must answer with a typed error rather than
//!   deserialize poisoned bytes.
//!
//! The proxy is deliberately dumb — no frame awareness, byte budgets
//! only — because real network faults don't respect frame boundaries
//! either. It is test infrastructure, exported so integration suites and
//! examples can script degradation drills against a live server.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// What one direction of the proxy does to the byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyFault {
    /// Forward every byte faithfully.
    None,
    /// Forward exactly `bytes` bytes, then close both sides abruptly —
    /// a crash / cable-pull, usually mid-frame.
    CloseAfter {
        /// Bytes forwarded before the cut.
        bytes: usize,
    },
    /// Forward exactly `bytes` bytes, then stop forwarding without
    /// closing — the slow-loris: the connection looks alive but no more
    /// data ever arrives (until the proxy itself shuts down).
    StallAfter {
        /// Bytes forwarded before the stall.
        bytes: usize,
    },
    /// Forward exactly `bytes` bytes faithfully, then keep forwarding with
    /// every subsequent byte XOR-flipped — a failing NIC / misbehaving
    /// middlebox. The connection stays up and byte counts are preserved,
    /// so only the frame checksum can catch it; the receiver must answer
    /// with a typed error, never deserialize the poisoned bytes.
    CorruptAfter {
        /// Bytes forwarded faithfully before corruption starts.
        bytes: usize,
    },
}

impl ProxyFault {
    fn budget(self) -> usize {
        match self {
            ProxyFault::None => usize::MAX,
            ProxyFault::CloseAfter { bytes }
            | ProxyFault::StallAfter { bytes }
            | ProxyFault::CorruptAfter { bytes } => bytes,
        }
    }
}

/// Per-direction fault script for one [`ChaosProxy`]. Applies to every
/// connection the proxy accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProxyPlan {
    /// Fault on the client→server direction.
    pub to_server: ProxyFault,
    /// Fault on the server→client direction.
    pub to_client: ProxyFault,
}

impl ProxyPlan {
    /// A faithful proxy (useful as a control).
    #[must_use]
    pub fn passthrough() -> Self {
        Self {
            to_server: ProxyFault::None,
            to_client: ProxyFault::None,
        }
    }
}

/// A running fault-injecting proxy. Dropping it (or calling
/// [`ChaosProxy::shutdown`]) closes every proxied connection and joins
/// every pump thread.
#[derive(Debug)]
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<thread::JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and proxies every accepted
    /// connection to `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener or resolving
    /// `upstream`.
    pub fn start(upstream: impl ToSocketAddrs, plan: ProxyPlan) -> io::Result<Self> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "upstream unresolvable"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let pumps: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let streams = Arc::clone(&streams);
            let pumps = Arc::clone(&pumps);
            thread::Builder::new()
                .name("ftspan-chaos-accept".into())
                .spawn(move || {
                    proxy_accept_loop(&listener, upstream, plan, &shutdown, &streams, &pumps);
                })?
        };
        Ok(Self {
            local_addr,
            shutdown,
            streams,
            accept_thread: Some(accept_thread),
            pumps,
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Closes every proxied connection and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for stream in self
            .streams
            .lock()
            .expect("proxy streams poisoned")
            .drain(..)
        {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let pumps = std::mem::take(&mut *self.pumps.lock().expect("proxy pumps poisoned"));
        for pump in pumps {
            let _ = pump.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn proxy_accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: ProxyPlan,
    shutdown: &Arc<AtomicBool>,
    streams: &Arc<Mutex<Vec<TcpStream>>>,
    pumps: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let (Ok(client_clone), Ok(server_clone)) = (client.try_clone(), server.try_clone())
                else {
                    continue;
                };
                {
                    let mut registry = streams.lock().expect("proxy streams poisoned");
                    for s in [&client, &server] {
                        if let Ok(clone) = s.try_clone() {
                            registry.push(clone);
                        }
                    }
                }
                let mut handles = pumps.lock().expect("proxy pumps poisoned");
                for (name, from, to, fault) in [
                    ("ftspan-chaos-up", client, server, plan.to_server),
                    (
                        "ftspan-chaos-down",
                        server_clone,
                        client_clone,
                        plan.to_client,
                    ),
                ] {
                    let shutdown = Arc::clone(shutdown);
                    if let Ok(handle) = thread::Builder::new()
                        .name(name.into())
                        .spawn(move || pump(from, to, fault, &shutdown))
                    {
                        handles.push(handle);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Forwards bytes one way until the fault budget runs out, the peer
/// closes, or the proxy shuts down. `CloseAfter` exits (closing both
/// sides); `StallAfter` parks, keeping the sockets open, until shutdown;
/// `CorruptAfter` keeps pumping but XOR-flips every byte past the budget.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: ProxyFault, shutdown: &AtomicBool) {
    let mut budget = fault.budget();
    let mut buf = [0u8; 1024];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        if budget == 0 {
            match fault {
                ProxyFault::StallAfter { .. } => {
                    // The slow-loris: stay open, forward nothing.
                    thread::sleep(Duration::from_millis(10));
                    continue;
                }
                ProxyFault::CorruptAfter { .. } => {
                    // Past the budget: forward everything, poisoned.
                    let n = match from.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => n,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    };
                    for byte in &mut buf[..n] {
                        *byte ^= 0x55;
                    }
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                    continue;
                }
                _ => break,
            }
        }
        let want = buf.len().min(budget);
        let n = match from.read(&mut buf[..want]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        budget = budget.saturating_sub(n);
    }
    let _ = from.shutdown(std::net::Shutdown::Both);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_budgets() {
        assert_eq!(ProxyFault::None.budget(), usize::MAX);
        assert_eq!(ProxyFault::CloseAfter { bytes: 7 }.budget(), 7);
        assert_eq!(ProxyFault::StallAfter { bytes: 0 }.budget(), 0);
        assert_eq!(ProxyFault::CorruptAfter { bytes: 3 }.budget(), 3);
        assert_eq!(ProxyPlan::passthrough().to_server, ProxyFault::None);
    }
}
