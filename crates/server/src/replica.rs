//! The snapshot-bootstrapped, journal-following read replica.
//!
//! A [`ReplicaServer`] is a full [`Server`](crate::Server) in replica
//! role: it downloads the primary's snapshot, restores the oracle
//! bit-identically, subscribes to the primary's wave journal, and applies
//! each streamed entry through its own service wave barrier — verifying
//! every entry's [`WaveReport::digest`](ftspan_oracle::WaveReport::digest)
//! against what the primary recorded. Reads (`DIST` / `PATH` / `BATCH` /
//! `METRICS` / `SNAPSHOT`) are served from the replica's local epoch the
//! whole time; `WAVE` is rejected with a typed error until a `PROMOTE`
//! request flips the role.
//!
//! **Lag semantics.** The follower applies entries as the stream delivers
//! them, so a replica lags the primary by at most the in-flight window:
//! entries committed but not yet flushed through the subscription plus the
//! one wave barrier currently applying. Reads never block on the stream —
//! they answer at whatever epoch the replica has reached, exactly like a
//! read against a slightly older primary epoch.
//!
//! **Failover.** `PROMOTE` stops the follower (joining it, so everything
//! received is applied), then accepts waves. Because the replica journals
//! its own applied waves — with digests the stream already proved equal to
//! the primary's — a promoted replica can immediately serve
//! `JOURNAL_SUBSCRIBE` to the next generation of replicas.
//!
//! The replica must run the **same churn configuration** as the primary:
//! repair decisions are a function of it, and a mismatch is detected as a
//! digest divergence at the first applied entry (served stale-but-correct
//! reads continue; the divergence is exposed via
//! [`ReplicaServer::divergence`]).

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use ftspan_oracle::replication::ReplicationError;
use ftspan_oracle::{
    JournalEntry, OracleService, ServiceConfig, Snapshot, Snapshottable, SpannerOracle, TicketState,
};

use crate::client::Client;
use crate::protocol::{decode_reply, read_frame, Frame, Reply};
use crate::server::{FollowerControl, Server, ServerConfig};

/// A running read replica. Dereference-free wrapper over [`Server`]; see
/// the [module docs](self) for the replication lifecycle.
#[derive(Debug)]
pub struct ReplicaServer<O: SpannerOracle + 'static> {
    server: Server<O>,
    divergence: Arc<Mutex<Option<ReplicationError>>>,
}

impl<O> ReplicaServer<O>
where
    O: SpannerOracle + Snapshottable + 'static,
{
    /// Bootstraps a replica from the primary at `primary` and serves reads
    /// on `addr`: snapshot download (chunked), bit-identical restore,
    /// journal subscription from the restored epoch, follower thread.
    ///
    /// `service_config` must carry the **same churn configuration** the
    /// primary applies waves under.
    ///
    /// # Errors
    ///
    /// Any error from the snapshot download (a typed I/O error when the
    /// primary dies mid-download — never a hang), a failed restore
    /// (`InvalidData`), a rejected subscription, or binding `addr`.
    pub fn start(
        primary: impl ToSocketAddrs,
        addr: impl ToSocketAddrs,
        service_config: ServiceConfig,
        server_config: ServerConfig,
    ) -> io::Result<Self> {
        let mut bootstrap = Client::connect(&primary)?;
        let snapshot = bootstrap.snapshot()?;
        drop(bootstrap);
        let oracle: O = Snapshot::restore(&snapshot).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bootstrap snapshot failed to restore: {e}"),
            )
        })?;
        let service = OracleService::new(oracle, service_config);
        let from_epoch = service.oracle().epoch();

        // Subscribe on a dedicated connection; the first frame (read by
        // `journal_subscribe`) surfaces rejections before the server
        // starts, and any backlog it carries is applied by the follower.
        let mut subscription = Client::connect(&primary)?;
        let backlog = subscription.journal_subscribe(from_epoch)?;

        let server = Server::start_with_role(service, addr, server_config, false)?;
        let service = server.service_arc();
        let divergence: Arc<Mutex<Option<ReplicationError>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let stream = subscription.into_stream();
        let follower_stream = stream.try_clone()?;
        let handle = {
            let stop = Arc::clone(&stop);
            let divergence = Arc::clone(&divergence);
            thread::Builder::new()
                .name("ftspan-follower".into())
                .spawn(move || {
                    follower_loop(follower_stream, &service, backlog, &stop, &divergence);
                })?
        };
        server.install_follower(FollowerControl {
            stop,
            stream,
            handle,
        });
        Ok(Self { server, divergence })
    }

    /// The address the replica is serving reads on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// `true` once a `PROMOTE` has made this replica a primary.
    #[must_use]
    pub fn is_promoted(&self) -> bool {
        self.server.accepts_waves()
    }

    /// The epoch the replica currently serves reads at; the gap to the
    /// primary's epoch is the replication lag in waves.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.server.service_arc().oracle().epoch()
    }

    /// The divergence that stopped the follower, if any: a replayed entry
    /// whose report digest did not match the primary's. The replica keeps
    /// serving reads at its last verified epoch, but must be considered
    /// unable to catch up further.
    #[must_use]
    pub fn divergence(&self) -> Option<ReplicationError> {
        self.divergence
            .lock()
            .expect("divergence cell poisoned")
            .clone()
    }

    /// Stops following (if still following), drains connections, and
    /// hands back the warm service at the epoch the replica reached.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    #[must_use]
    pub fn shutdown(self) -> OracleService<O> {
        self.server.shutdown()
    }
}

/// The follower: applies the subscription backlog, then every streamed
/// [`Reply::JournalEntries`] frame, through the replica's own wave
/// barrier — digest-checking each entry. Exits on stop, stream end
/// (primary gone — the replica keeps serving reads and can still be
/// promoted), or divergence.
fn follower_loop<O: SpannerOracle + 'static>(
    mut stream: TcpStream,
    service: &OracleService<O>,
    backlog: Vec<JournalEntry>,
    stop: &AtomicBool,
    divergence: &Mutex<Option<ReplicationError>>,
) {
    // The subscription stream must outlive any read timeout the OS might
    // inherit; waves can be minutes apart, and heartbeats keep it warm.
    let _ = stream.set_read_timeout(None);
    if !apply_entries(service, backlog, stop, divergence) {
        return;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(Some(Frame::Intact(body))) => match decode_reply(&body) {
                Ok(Reply::JournalEntries(entries)) => {
                    if !apply_entries(service, entries, stop, divergence) {
                        return;
                    }
                }
                // Anything else on a subscription stream is protocol
                // breakage; stop following, keep serving.
                Ok(_) | Err(_) => return,
            },
            // A corrupt frame never reaches apply: skip it. Entries are
            // individually checksummed too, so even a colliding frame
            // checksum cannot smuggle a damaged entry through.
            Ok(Some(Frame::Corrupt)) => {}
            Ok(None) => return, // primary closed the stream
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Applies a batch of streamed entries in order. Returns `false` when the
/// follower must stop (divergence recorded, stop flag, or a wave that
/// failed to resolve).
fn apply_entries<O: SpannerOracle + 'static>(
    service: &OracleService<O>,
    entries: Vec<JournalEntry>,
    stop: &AtomicBool,
    divergence: &Mutex<Option<ReplicationError>>,
) -> bool {
    for entry in entries {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        // Heartbeats resend nothing; duplicates after a reconnect would
        // arrive below the current epoch — skip, never re-apply.
        if entry.epoch <= service.oracle().epoch() {
            continue;
        }
        let ticket = service.submit_wave(entry.wave.clone());
        match service.wait(ticket) {
            TicketState::Waved(report) => {
                let found = report.digest();
                if found != entry.report_digest {
                    *divergence.lock().expect("divergence cell poisoned") =
                        Some(ReplicationError::Divergence {
                            epoch: entry.epoch,
                            expected: entry.report_digest,
                            found,
                        });
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}
