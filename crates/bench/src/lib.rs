//! Shared workload generation and measurement helpers for the Criterion
//! benches and the `experiments` table harness.

use std::time::Instant;

use ftspan_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG for a named experiment.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The standard unweighted workload used across experiments: a connected
/// Erdős–Rényi graph with expected average degree `avg_degree`.
#[must_use]
pub fn gnp_workload(n: usize, avg_degree: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let p = (avg_degree / (n.max(2) as f64 - 1.0)).min(1.0);
    generators::connected_gnp(n, p, &mut r)
}

/// The standard weighted workload: a random geometric graph with Euclidean
/// edge weights and the given connection radius.
#[must_use]
pub fn geometric_workload(n: usize, radius: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = generators::random_geometric(n, radius, &mut r);
    generators::overlay_random_spanning_tree(&mut g, &mut r);
    g
}

/// Times a closure, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Formats a markdown table from a header and rows, used by the experiment
/// harness so EXPERIMENTS.md can embed its output verbatim.
#[must_use]
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::traversal::is_connected;

    #[test]
    fn gnp_workload_is_connected_and_sized() {
        let g = gnp_workload(50, 6.0, 1);
        assert_eq!(g.vertex_count(), 50);
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 49);
    }

    #[test]
    fn geometric_workload_is_connected_and_weighted() {
        let g = geometric_workload(60, 0.2, 2);
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 59);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn timed_returns_value_and_duration() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
