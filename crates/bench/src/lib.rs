//! Shared workload generation and measurement helpers for the Criterion
//! benches and the `experiments` table harness.

use std::time::Instant;

use ftspan_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG for a named experiment.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The standard unweighted workload used across experiments: a connected
/// Erdős–Rényi graph with expected average degree `avg_degree`.
#[must_use]
pub fn gnp_workload(n: usize, avg_degree: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let p = (avg_degree / (n.max(2) as f64 - 1.0)).min(1.0);
    generators::connected_gnp(n, p, &mut r)
}

/// The standard weighted workload: a random geometric graph with Euclidean
/// edge weights and the given connection radius.
#[must_use]
pub fn geometric_workload(n: usize, radius: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = generators::random_geometric(n, radius, &mut r);
    generators::overlay_random_spanning_tree(&mut g, &mut r);
    g
}

/// The duplicate-heavy request stream of the `service_batch` scenarios:
/// `batch` requests drawn (with repetition) from a pool of `distinct`
/// distinct queries over 8 hot fault sets, mixing path and distance kinds.
/// Shared by the `service` criterion bench and the `bench-trajectory`
/// harness so both measure **exactly** the same workload — the recorded
/// `BENCH_oracle.json` series stays comparable to the smoke bench.
#[must_use]
pub fn service_request_stream(
    n_vertices: usize,
    batch: usize,
    distinct: usize,
    seed: u64,
) -> Vec<ftspan_oracle::Query> {
    use ftspan::FaultSet;
    use ftspan_graph::vid;
    use ftspan_oracle::Query;
    use rand::Rng;

    let mut r = rng(seed);
    let waves: Vec<FaultSet> = (0..8)
        .map(|_| {
            let a = vid(r.gen_range(0..n_vertices));
            let b = vid(r.gen_range(0..n_vertices));
            FaultSet::vertices([a, b])
        })
        .collect();
    let pool: Vec<Query> = (0..distinct)
        .map(|i| {
            let u = vid(r.gen_range(0..n_vertices));
            let mut v = vid(r.gen_range(0..n_vertices));
            while v == u {
                v = vid(r.gen_range(0..n_vertices));
            }
            let faults = waves[i % waves.len()].clone();
            if i % 4 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect();
    (0..batch)
        .map(|_| pool[r.gen_range(0..pool.len())].clone())
        .collect()
}

/// Serves one request stream through an [`ftspan_oracle::OracleService`]:
/// submit everything (one batched lock acquisition, the way the TCP
/// front-end does), drain, recycle the ticket slots. The unit of work
/// both `service_batch` measurements time.
pub fn serve_request_stream<O: ftspan_oracle::SpannerOracle + 'static>(
    service: &ftspan_oracle::OracleService<O>,
    stream: &[ftspan_oracle::Query],
) {
    let _ = service.submit_batch_ref(stream.iter());
    let _ = service.drain();
    service.recycle();
}

/// Times a closure, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Formats a markdown table from a header and rows, used by the experiment
/// harness so EXPERIMENTS.md can embed its output verbatim.
#[must_use]
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::traversal::is_connected;

    #[test]
    fn gnp_workload_is_connected_and_sized() {
        let g = gnp_workload(50, 6.0, 1);
        assert_eq!(g.vertex_count(), 50);
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 49);
    }

    #[test]
    fn geometric_workload_is_connected_and_weighted() {
        let g = geometric_workload(60, 0.2, 2);
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 59);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn timed_returns_value_and_duration() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn service_stream_is_deterministic_and_duplicate_heavy() {
        let a = service_request_stream(50, 200, 30, 19);
        let b = service_request_stream(50, 200, 30, 19);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.u, x.v, x.kind), (y.u, y.v, y.kind));
            assert_eq!(x.faults, y.faults);
        }
        // Drawn with repetition from 30 distinct queries: duplicates exist.
        let distinct: std::collections::HashSet<_> = a.iter().map(|q| (q.u, q.v, q.kind)).collect();
        assert!(distinct.len() < a.len());
    }
}
