//! Experiment harness: regenerates every theorem-level experiment of
//! DESIGN.md / EXPERIMENTS.md as a markdown table on stdout.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ftspan-bench --bin experiments [all|lbc|size-vs-n|size-vs-f|runtime|
//!     exact-vs-poly|weighted|dk11|local|congest|eft|blocking|oracle|shard|bench-trajectory|
//!     scale [quick]]
//! ```
//!
//! With no argument (or `all`) every experiment runs. The tables in
//! EXPERIMENTS.md are produced by this binary.
//!
//! `bench-trajectory` is special: instead of a table it measures the four
//! serving scenarios (cached single queries, cached batch, 8-shard batch,
//! churn repair) and writes the machine-readable `BENCH_oracle.json` at the
//! repo root, preserving recorded `before` fields so the file accumulates a
//! before/after trajectory across optimization PRs. CI uploads the file as
//! an artifact.
//!
//! `scale` is the E14 scale-tier experiment: 10^5-node graphs (10^6 with
//! `FTSPAN_LONG_TESTS=1`) across four families, measuring parallel
//! construction speedup, two-level-sharding memory per edge, and query
//! throughput, and merging the `scale_build` / `mem_bytes_per_edge` /
//! `scale_query` series into `BENCH_oracle.json`. `scale quick` is the
//! reduced-n CI smoke: it prints the table but leaves the recorded
//! trajectory file untouched.

use ftspan::blocking::{blocking_set_from_certificates, blocking_violations, lemma6_size_bound};
use ftspan::lbc::decide_vertex_lbc;
use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{
    bounds, dk, exact_greedy_spanner, poly_greedy_spanner, poly_greedy_spanner_with, FaultModel,
    PolyGreedyOptions, SpannerParams,
};
use ftspan_bench::{geometric_workload, gnp_workload, markdown_table, rng, timed};
use ftspan_distributed::{congest_baswana_sen, congest_ft_spanner, local_ft_spanner};
use ftspan_graph::vid;
use rand::Rng;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let all = which == "all";
    if all || which == "lbc" {
        experiment_lbc();
    }
    if all || which == "size-vs-n" {
        experiment_size_vs_n();
    }
    if all || which == "size-vs-f" {
        experiment_size_vs_f();
    }
    if all || which == "runtime" {
        experiment_runtime();
    }
    if all || which == "exact-vs-poly" {
        experiment_exact_vs_poly();
    }
    if all || which == "weighted" {
        experiment_weighted();
    }
    if all || which == "dk11" {
        experiment_dk11();
    }
    if all || which == "local" {
        experiment_local();
    }
    if all || which == "congest" {
        experiment_congest();
    }
    if all || which == "eft" {
        experiment_eft();
    }
    if all || which == "blocking" {
        experiment_blocking();
    }
    if all || which == "oracle" {
        experiment_oracle();
    }
    if all || which == "shard" {
        experiment_shard();
    }
    if which == "bench-trajectory" {
        bench_trajectory();
    }
    if which == "scale" {
        let quick = std::env::args().nth(2).is_some_and(|mode| mode == "quick");
        experiment_scale(quick);
    }
}

/// E1 (Theorem 4): LBC(t, α) decision quality and cost.
fn experiment_lbc() {
    println!("\n## E1 — Length-Bounded Cut gap decision (Theorem 4)\n");
    let mut rows = Vec::new();
    for &n in &[100usize, 200, 400] {
        let g = gnp_workload(n, 8.0, 1);
        for &alpha in &[1u32, 2, 4] {
            let mut r = rng(alpha as u64);
            let mut bfs_total = 0usize;
            let mut yes = 0usize;
            let trials = 200;
            let (_, secs) = timed(|| {
                for _ in 0..trials {
                    let u = vid(r.gen_range(0..n));
                    let v = vid(r.gen_range(0..n));
                    if u == v {
                        continue;
                    }
                    let (d, stats) = decide_vertex_lbc(&g, u, v, 3, alpha);
                    bfs_total += stats.bfs_runs;
                    if d.is_yes() {
                        yes += 1;
                    }
                }
            });
            rows.push(vec![
                n.to_string(),
                g.edge_count().to_string(),
                alpha.to_string(),
                format!("{:.2}", bfs_total as f64 / trials as f64),
                format!("{:.1}", 100.0 * yes as f64 / trials as f64),
                format!("{:.1}", 1e6 * secs / trials as f64),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "alpha",
                "avg BFS runs (<= alpha+1)",
                "YES %",
                "us / decision"
            ],
            &rows
        )
    );
}

/// E2 (Theorems 5/8): modified greedy size vs n against the Theorem 8 curve.
fn experiment_size_vs_n() {
    println!("\n## E2 — Modified greedy size vs n (Theorems 5, 8)\n");
    let mut rows = Vec::new();
    for &n in &[100usize, 200, 400, 800] {
        let g = gnp_workload(n, 12.0, 2);
        for &f in &[1u32, 2] {
            let params = SpannerParams::vertex(2, f);
            let (result, secs) = timed(|| poly_greedy_spanner(&g, params));
            let bound = bounds::poly_greedy_size_bound(n, 2, f);
            let report = verify_spanner(
                &g,
                &result.spanner,
                params,
                VerificationMode::Sampled {
                    samples: 30,
                    seed: 1,
                },
            );
            rows.push(vec![
                n.to_string(),
                g.edge_count().to_string(),
                f.to_string(),
                result.spanner.edge_count().to_string(),
                format!("{bound:.0}"),
                format!("{:.2}", result.spanner.edge_count() as f64 / bound),
                report.is_valid().to_string(),
                format!("{secs:.2}"),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "f",
                "|E(H)|",
                "Thm 8 curve",
                "ratio",
                "FT check",
                "seconds"
            ],
            &rows
        )
    );
}

/// E3 (Theorem 8 vs DK11): size scaling in f.
fn experiment_size_vs_f() {
    println!("\n## E3 — Size scaling in f: modified greedy vs DK11 (Theorems 8, 13)\n");
    let n = 200;
    let g = gnp_workload(n, 20.0, 3);
    let mut rows = Vec::new();
    for &f in &[1u32, 2, 4, 8] {
        let params = SpannerParams::vertex(2, f);
        let greedy = poly_greedy_spanner(&g, params);
        let mut r = rng(f as u64 + 10);
        let dk11 = dk::dk_spanner(&g, 2, f, &mut r);
        rows.push(vec![
            f.to_string(),
            greedy.spanner.edge_count().to_string(),
            format!("{:.0}", bounds::poly_greedy_size_bound(n, 2, f)),
            dk11.spanner.edge_count().to_string(),
            format!("{:.0}", bounds::dk_size_bound(n, 2, f)),
            format!(
                "{:.2}",
                dk11.spanner.edge_count() as f64 / greedy.spanner.edge_count().max(1) as f64
            ),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "f",
                "greedy |E(H)|",
                "f^(1-1/k) curve",
                "DK11 |E(H)|",
                "f^(2-1/k) curve",
                "DK11 / greedy"
            ],
            &rows
        )
    );
    println!("(input: n = {n}, m = {})", g.edge_count());
}

/// E4 (Theorem 9): running time scaling in m.
fn experiment_runtime() {
    println!("\n## E4 — Modified greedy running time vs m (Theorem 9)\n");
    let n = 250;
    let mut rows = Vec::new();
    for &deg in &[6.0f64, 12.0, 24.0, 48.0] {
        let g = gnp_workload(n, deg, 4);
        let params = SpannerParams::vertex(2, 2);
        let (result, secs) = timed(|| poly_greedy_spanner(&g, params));
        rows.push(vec![
            g.edge_count().to_string(),
            result.spanner.edge_count().to_string(),
            result.stats.lbc_calls.to_string(),
            result.stats.bfs_runs.to_string(),
            format!("{secs:.3}"),
            format!("{:.2}", 1e6 * secs / g.edge_count() as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "m",
                "|E(H)|",
                "LBC calls",
                "BFS runs",
                "seconds",
                "us per edge"
            ],
            &rows
        )
    );
    println!("(n = {n}, k = 2, f = 2; Theorem 9 predicts time linear in m for fixed n, k, f)");
}

/// E5 (Theorem 2 vs BP19): exact greedy vs polynomial greedy.
fn experiment_exact_vs_poly() {
    println!("\n## E5 — Exact greedy [BP19] vs polynomial greedy (Theorem 2)\n");
    let mut rows = Vec::new();
    for &n in &[20usize, 30, 40, 60] {
        let g = gnp_workload(n, 8.0, 5);
        let params = SpannerParams::vertex(2, 1);
        let (exact, exact_secs) = timed(|| exact_greedy_spanner(&g, params).expect("budget"));
        let (poly, poly_secs) = timed(|| poly_greedy_spanner(&g, params));
        rows.push(vec![
            n.to_string(),
            g.edge_count().to_string(),
            exact.spanner.edge_count().to_string(),
            poly.spanner.edge_count().to_string(),
            format!(
                "{:.2}",
                poly.spanner.edge_count() as f64 / exact.spanner.edge_count().max(1) as f64
            ),
            format!("{:.3}", exact_secs),
            format!("{:.3}", poly_secs),
            exact.stats.fault_sets_enumerated.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "exact |E(H)|",
                "poly |E(H)|",
                "poly/exact",
                "exact s",
                "poly s",
                "fault sets enumerated"
            ],
            &rows
        )
    );
}

/// E6 (Theorem 10): weighted graphs.
fn experiment_weighted() {
    println!("\n## E6 — Weighted modified greedy (Theorem 10)\n");
    let mut rows = Vec::new();
    for &n in &[100usize, 200] {
        let g = geometric_workload(n, 0.18, 6);
        for &f in &[1u32, 2] {
            let params = SpannerParams::vertex(2, f);
            let result = poly_greedy_spanner(&g, params);
            let report = verify_spanner(
                &g,
                &result.spanner,
                params,
                VerificationMode::Sampled {
                    samples: 40,
                    seed: 2,
                },
            );
            rows.push(vec![
                n.to_string(),
                g.edge_count().to_string(),
                f.to_string(),
                result.spanner.edge_count().to_string(),
                format!("{:.1}", 100.0 * result.stats.retention()),
                format!("{:.2}", report.max_stretch),
                params.stretch().to_string(),
                report.is_valid().to_string(),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "f",
                "|E(H)|",
                "% edges kept",
                "max observed stretch",
                "allowed",
                "FT check"
            ],
            &rows
        )
    );
}

/// E7 (Theorem 13): Dinitz–Krauthgamer size and validity.
fn experiment_dk11() {
    println!("\n## E7 — Dinitz–Krauthgamer [DK11] (Theorem 13)\n");
    let n = 200;
    let g = gnp_workload(n, 16.0, 7);
    let mut rows = Vec::new();
    for &f in &[1u32, 2, 4] {
        let mut r = rng(f as u64 + 70);
        let (result, secs) = timed(|| dk::dk_spanner(&g, 2, f, &mut r));
        let params = SpannerParams::vertex(2, f);
        let report = verify_spanner(
            &g,
            &result.spanner,
            params,
            VerificationMode::Sampled {
                samples: 30,
                seed: 3,
            },
        );
        rows.push(vec![
            f.to_string(),
            result.spanner.edge_count().to_string(),
            format!(
                "{:.0}",
                bounds::dk_size_bound(n, 2, f).min(g.edge_count() as f64)
            ),
            report.is_valid().to_string(),
            format!("{secs:.2}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "f",
                "|E(H)|",
                "Thm 13 curve (capped at m)",
                "FT check",
                "seconds"
            ],
            &rows
        )
    );
    println!("(input: n = {n}, m = {})", g.edge_count());
}

/// E8 (Theorem 12): LOCAL model.
fn experiment_local() {
    println!("\n## E8 — LOCAL construction (Theorem 12)\n");
    let mut rows = Vec::new();
    for &n in &[100usize, 200, 400] {
        let g = gnp_workload(n, 8.0, 8);
        let params = SpannerParams::vertex(2, 1);
        let mut r = rng(n as u64);
        let (result, secs) = timed(|| local_ft_spanner(&g, params, &mut r));
        let report = verify_spanner(
            &g,
            &result.spanner,
            params,
            VerificationMode::Sampled {
                samples: 25,
                seed: 4,
            },
        );
        rows.push(vec![
            n.to_string(),
            g.edge_count().to_string(),
            result.spanner.edge_count().to_string(),
            format!(
                "{:.0}",
                bounds::local_size_bound(n, 2, 1).min(g.edge_count() as f64)
            ),
            result.rounds.rounds.to_string(),
            format!("{:.0}", bounds::local_round_bound(n)),
            result.partitions.to_string(),
            report.is_valid().to_string(),
            format!("{secs:.2}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "|E(H)|",
                "size curve (capped)",
                "rounds",
                "log2 n",
                "partitions",
                "FT check",
                "seconds"
            ],
            &rows
        )
    );
}

/// E9 (Theorems 14, 15): CONGEST model.
fn experiment_congest() {
    println!("\n## E9 — CONGEST constructions (Theorems 14, 15)\n");
    println!("### Distributed Baswana–Sen (Theorem 14)\n");
    let mut rows = Vec::new();
    let g = gnp_workload(200, 10.0, 9);
    for &k in &[2u32, 3, 4] {
        let mut r = rng(k as u64 + 90);
        let result = congest_baswana_sen(&g, k, &mut r);
        rows.push(vec![
            k.to_string(),
            result.spanner.edge_count().to_string(),
            result.rounds.rounds.to_string(),
            format!("{:.0}", bounds::baswana_sen_round_bound(k)),
            result.rounds.max_words_per_edge_round.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["k", "|E(H)|", "rounds", "k^2", "max words/edge/round"],
            &rows
        )
    );

    println!("### Fault-tolerant CONGEST construction (Theorem 15)\n");
    let mut rows = Vec::new();
    for &(n, f) in &[(100usize, 1u32), (100, 2), (200, 1)] {
        let g = gnp_workload(n, 10.0, 10);
        let params = SpannerParams::vertex(2, f);
        let mut r = rng(n as u64 + f as u64);
        let (out, secs) = timed(|| congest_ft_spanner(&g, params, &mut r));
        let report = verify_spanner(
            &g,
            &out.result.spanner,
            params,
            VerificationMode::Sampled {
                samples: 20,
                seed: 5,
            },
        );
        rows.push(vec![
            n.to_string(),
            f.to_string(),
            out.result.spanner.edge_count().to_string(),
            out.iterations.to_string(),
            out.phase1_rounds.to_string(),
            out.phase2_rounds.to_string(),
            out.result.rounds.rounds.to_string(),
            format!("{:.0}", bounds::congest_round_bound(n, 2, f)),
            out.max_edge_multiplicity.to_string(),
            report.is_valid().to_string(),
            format!("{secs:.1}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "f",
                "|E(H)|",
                "DK iterations",
                "phase-1 rounds",
                "phase-2 rounds",
                "total rounds",
                "Thm 15 curve",
                "congestion factor",
                "FT check",
                "seconds"
            ],
            &rows
        )
    );
}

/// E10: edge-fault-tolerant variants.
fn experiment_eft() {
    println!("\n## E10 — Edge-fault-tolerant variants\n");
    let n = 150;
    let g = gnp_workload(n, 12.0, 11);
    let mut rows = Vec::new();
    for &f in &[1u32, 2, 4] {
        let vft = poly_greedy_spanner(&g, SpannerParams::vertex(2, f));
        let eft_params = SpannerParams::edge(2, f);
        let eft = poly_greedy_spanner(&g, eft_params);
        let report = verify_spanner(
            &g,
            &eft.spanner,
            eft_params,
            VerificationMode::Sampled {
                samples: 30,
                seed: 6,
            },
        );
        rows.push(vec![
            f.to_string(),
            vft.spanner.edge_count().to_string(),
            eft.spanner.edge_count().to_string(),
            format!(
                "{:.2}",
                eft.spanner.edge_count() as f64 / vft.spanner.edge_count().max(1) as f64
            ),
            report.is_valid().to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["f", "VFT |E(H)|", "EFT |E(H)|", "EFT/VFT", "EFT check"],
            &rows
        )
    );
    println!("(input: n = {n}, m = {})", g.edge_count());
}

/// E11 (Lemma 6): blocking sets extracted from certificates.
fn experiment_blocking() {
    println!("\n## E11 — Blocking sets from LBC certificates (Lemma 6)\n");
    let mut rows = Vec::new();
    for &n in &[30usize, 50] {
        for &f in &[1u32, 2] {
            let g = gnp_workload(n, 8.0, 12);
            let k = 2u32;
            let params = SpannerParams::vertex(k, f);
            let options = PolyGreedyOptions {
                collect_certificates: true,
                ..PolyGreedyOptions::default()
            };
            let result = poly_greedy_spanner_with(&g, params, &options);
            let blocking = blocking_set_from_certificates(&result);
            let violations = blocking_violations(&result.spanner, &blocking, 2 * k as usize);
            rows.push(vec![
                n.to_string(),
                f.to_string(),
                result.spanner.edge_count().to_string(),
                blocking.len().to_string(),
                lemma6_size_bound(result.spanner.edge_count(), k, f).to_string(),
                violations.len().to_string(),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "f",
                "|E(H)|",
                "|B|",
                "Lemma 6 bound (2k-1)f|E(H)|",
                "unblocked 2k-cycles"
            ],
            &rows
        )
    );
    let _ = FaultModel::Vertex; // silence unused-import lints if variants change
}

/// E12: the serving layer — batched query throughput and churn repair.
fn experiment_oracle() {
    use ftspan::{sample_fault_set, FaultSet};
    use ftspan_oracle::{ChurnConfig, FaultOracle, OracleOptions, Query};

    println!("\n## E12 — FaultOracle: throughput and latency under rolling faults\n");
    let n = 1_000;
    let batch_size = 2_000;
    let graph = gnp_workload(n, 16.0, 13);
    let params = SpannerParams::vertex(2, 2);
    let (mut oracle, build_secs) =
        timed(|| FaultOracle::build(graph.clone(), params, OracleOptions::default()));
    println!(
        "built {params} on n = {n}, m = {}: {} spanner edges in {build_secs:.1}s\n",
        graph.edge_count(),
        oracle.spanner().edge_count()
    );

    let mut query_rng = rng(14);
    let mut wave_rng = rng(15);
    let churn = ChurnConfig::default();
    let mut rows = Vec::new();
    for wave_no in 0..5u32 {
        // A rolling wave of faults beyond the design tolerance, then a batch.
        let outcome = if wave_no == 0 {
            None
        } else {
            let wave = sample_fault_set(oracle.graph(), FaultModel::Vertex, 3, &[], &mut wave_rng);
            Some(oracle.apply_wave(&wave, &churn))
        };
        let fault_pool: Vec<FaultSet> = (0..8)
            .map(|_| sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut query_rng))
            .collect();
        let hot_sources: Vec<usize> = (0..32).map(|_| query_rng.gen_range(0..n)).collect();
        let queries: Vec<Query> = (0..batch_size)
            .map(|i| {
                let u = vid(hot_sources[query_rng.gen_range(0..hot_sources.len())]);
                let v = vid(query_rng.gen_range(0..n));
                Query::distance(u, v, fault_pool[i % fault_pool.len()].clone())
            })
            .collect();
        let before = oracle.metrics().snapshot();
        let (answers, secs) = timed(|| oracle.answer_batch(&queries));
        let after = oracle.metrics().snapshot();
        let hits = after.cache_hits - before.cache_hits;
        let served = answers.iter().filter(|a| a.is_reachable()).count();
        rows.push(vec![
            wave_no.to_string(),
            outcome
                .as_ref()
                .map_or("-".into(), |o| o.broken_pairs.len().to_string()),
            outcome
                .as_ref()
                .map_or("-".into(), |o| o.edges_added.to_string()),
            outcome
                .as_ref()
                .map_or("-".into(), |o| o.escalated.to_string()),
            served.to_string(),
            format!("{:.0}", batch_size as f64 / secs),
            format!("{:.1}", 100.0 * hits as f64 / batch_size as f64),
            format!("{:.1}", 1e6 * secs / batch_size as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "wave",
                "broken pairs",
                "edges added",
                "escalated",
                "reachable",
                "queries/s",
                "hit %",
                "us/query"
            ],
            &rows
        )
    );
}

/// Pre-optimization churn-wave baselines: measured by running the
/// `churn_wave` / `churn_wave_sharded` scenarios below (identical seeds and
/// shapes) against commit e2e03e0's from-scratch LBC repair path, on the
/// same machine that recorded the scenarios' `after` values.
const CHURN_WAVE_BASELINE: f64 = 3.22;
const CHURN_WAVE_SHARDED_BASELINE: f64 = 6.05;

/// Pre-front-end baseline of the `service_batch` scenario: the same
/// duplicate-heavy 2 000-request stream served by a direct
/// `answer_batch` call (no tickets, no coalescing, no admission) on the
/// machine that recorded the scenario's `after` value. A speedup below
/// 1.0 is therefore not a regression — it is the recorded *price* of the
/// front-end (queue, tickets, coalescing bookkeeping) on a purely
/// in-memory hot loop, the number future front-end optimization PRs move.
/// The harness re-measures and prints the direct throughput on every run
/// as a drift check.
const SERVICE_BATCH_BASELINE: f64 = 7_580_961.0;

/// One measured scenario of the bench trajectory.
struct TrajectoryPoint {
    name: &'static str,
    unit: &'static str,
    /// Throughput recorded before the optimization PR (carried forward from
    /// an existing `BENCH_oracle.json`, falling back to the recorded pre-PR
    /// baseline for this scenario).
    before: f64,
    after: f64,
}

/// The workspace-root `BENCH_oracle.json`, resolved independently of the
/// process cwd so `before` fields are found (and the CI artifact step sees
/// the output) even when invoked from a crate directory.
fn trajectory_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_oracle.json")
}

/// Renders one scenario line of `BENCH_oracle.json` (no trailing comma).
/// Small rates (waves/s) keep two decimals; large ones round to integers.
fn render_scenario(name: &str, unit: &str, before: f64, after: f64) -> String {
    let fmt = |v: f64| {
        if v < 1_000.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.0}")
        }
    };
    let speedup = if before > 0.0 { after / before } else { 0.0 };
    format!(
        "{{\"name\": \"{name}\", \"unit\": \"{unit}\", \"before\": {}, \"after\": {}, \"speedup\": {speedup:.2}}}",
        fmt(before),
        fmt(after),
    )
}

/// Splits the scenario lines of an existing `BENCH_oracle.json` into
/// `(name, line)` pairs (lines trimmed, trailing commas stripped).
fn parse_scenarios(content: &str) -> Vec<(String, String)> {
    content
        .lines()
        .filter_map(|line| {
            let trimmed = line.trim().trim_end_matches(',');
            let anchor = "\"name\": \"";
            let start = trimmed.find(anchor)? + anchor.len();
            let name = &trimmed[start..start + trimmed[start..].find('"')?];
            Some((name.to_owned(), trimmed.to_owned()))
        })
        .collect()
}

/// Writes `BENCH_oracle.json` by **merging**: scenarios already in the file
/// are replaced in place when a new line carries the same name and kept
/// verbatim otherwise, so the trajectory harness and the scale experiment
/// never clobber each other's recorded series.
fn write_merged_trajectory(new: &[(String, String)]) {
    let path = trajectory_path();
    let previous = std::fs::read_to_string(&path).unwrap_or_default();
    let mut scenarios = parse_scenarios(&previous);
    for (name, line) in new {
        match scenarios.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1.clone_from(line),
            None => scenarios.push((name.clone(), line.clone())),
        }
    }
    let mut json = String::from("{\n  \"bench\": \"oracle\",\n  \"scenarios\": [\n");
    for (i, (_, line)) in scenarios.iter().enumerate() {
        json.push_str("    ");
        json.push_str(line);
        if i + 1 < scenarios.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&path, json).expect("write BENCH_oracle.json");
    println!("\nwrote {}", path.display());
}

/// Extracts the `"before"` value recorded for `name` in an existing
/// `BENCH_oracle.json`, so re-runs keep the original pre-optimization
/// baseline instead of overwriting the trajectory with itself.
fn recorded_before(content: &str, name: &str) -> Option<f64> {
    let anchor = format!("\"name\": \"{name}\"");
    let rest = &content[content.find(&anchor)? + anchor.len()..];
    let field = "\"before\": ";
    let rest = &rest[rest.find(field)? + field.len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Measures the serving scenarios of the bench trajectory and writes
/// `BENCH_oracle.json`. Every workload is deterministic (fixed seeds, same
/// shapes as the `oracle`/`sharded` criterion benches), so two runs on the
/// same machine are comparable.
fn bench_trajectory() {
    use ftspan::{sample_fault_set, FaultSet};
    use ftspan_oracle::{
        ChurnConfig, FaultOracle, OracleOptions, Query, ShardPlanOptions, ShardedOptions,
        ShardedOracle,
    };

    // The pre-PR baseline recorded when each scenario was first introduced,
    // measured by running this exact harness against the code the scenario's
    // optimization PR started from (the query scenarios against the
    // adjacency-list core of commit f0adb20; the churn-wave scenarios
    // against the from-scratch LBC repair path of commit e2e03e0). Used only
    // when the trajectory file does not record a `before` for the scenario.
    const RECORDED_BASELINE: [(&str, f64); 7] = [
        ("single_cached_distance", 4_766_804.0),
        ("batch_cached", 2_665_970.0),
        ("batch_8_shards", 1_764_859.0),
        ("churn_repair", 6.25),
        ("churn_wave", CHURN_WAVE_BASELINE),
        ("churn_wave_sharded", CHURN_WAVE_SHARDED_BASELINE),
        ("service_batch", SERVICE_BATCH_BASELINE),
    ];

    println!("\n## Bench trajectory — serving throughput before/after\n");
    let previous = std::fs::read_to_string(trajectory_path()).unwrap_or_default();
    let baseline = |name: &str| {
        recorded_before(&previous, name).unwrap_or_else(|| {
            if previous.contains(&format!("\"name\": \"{name}\"")) {
                // The scenario is in the file but its `before` was not
                // parsed — formatting drift or a renamed field. Falling
                // back to the compile-time baseline loses any accumulated
                // trajectory, so say so instead of doing it silently. (A
                // scenario absent from the file is just new; its recorded
                // baseline applies without noise.)
                eprintln!(
                    "warning: BENCH_oracle.json mentions {name} but no `before` was \
                     parsed for it; using the recorded pre-PR baseline instead"
                );
            }
            RECORDED_BASELINE
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0.0, |&(_, v)| v)
        })
    };

    let n = 400;
    let batch_size = 2_000;
    let graph = gnp_workload(n, 6.0, 7);
    let params = SpannerParams::vertex(2, 2);

    // The bursty mixed distance/path batch of the `oracle` criterion bench.
    let queries: Vec<Query> = {
        let mut r = rng(11);
        let waves: Vec<FaultSet> = (0..8)
            .map(|_| {
                let a = vid(r.gen_range(0..n));
                let b = vid(r.gen_range(0..n));
                FaultSet::vertices([a, b])
            })
            .collect();
        let hot: Vec<usize> = (0..24).map(|_| r.gen_range(0..n)).collect();
        (0..batch_size)
            .map(|i| {
                let u = vid(hot[r.gen_range(0..hot.len())]);
                let mut v = vid(r.gen_range(0..n));
                while v == u {
                    v = vid(r.gen_range(0..n));
                }
                let faults = waves[i % waves.len()].clone();
                if i % 4 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect()
    };

    let mut points: Vec<TrajectoryPoint> = Vec::new();

    // 1. Cached single-query distance throughput (the hot hit path).
    {
        let oracle = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let faults = FaultSet::vertices([vid(1), vid(2)]);
        let _ = oracle.distance(vid(3), vid(n - 1), &faults); // warm the tree
        let reps = 200_000u32;
        let (_, secs) = timed(|| {
            for _ in 0..reps {
                let _ = std::hint::black_box(oracle.distance(vid(3), vid(n - 1), &faults));
            }
        });
        points.push(TrajectoryPoint {
            name: "single_cached_distance",
            unit: "queries/s",
            before: baseline("single_cached_distance"),
            after: f64::from(reps) / secs,
        });
    }

    // 2. Cached batch throughput on the single oracle.
    {
        let oracle = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let _ = oracle.answer_batch(&queries); // warm
        let reps = 20;
        let (_, secs) = timed(|| {
            for _ in 0..reps {
                let _ = std::hint::black_box(oracle.answer_batch(&queries));
            }
        });
        points.push(TrajectoryPoint {
            name: "batch_cached",
            unit: "queries/s",
            before: baseline("batch_cached"),
            after: (reps * batch_size) as f64 / secs,
        });
    }

    // 3. The same batch through an 8-shard plan.
    {
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards: 8,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        let oracle = ShardedOracle::build(graph.clone(), params, options);
        let _ = oracle.answer_batch(&queries); // warm
        let reps = 20;
        let (_, secs) = timed(|| {
            for _ in 0..reps {
                let _ = std::hint::black_box(oracle.answer_batch(&queries));
            }
        });
        points.push(TrajectoryPoint {
            name: "batch_8_shards",
            unit: "queries/s",
            before: baseline("batch_8_shards"),
            after: (reps * batch_size) as f64 / secs,
        });
    }

    // 4. Churn repair: waves applied per second (localized respan included).
    {
        let graph = gnp_workload(300, 8.0, 21);
        let mut oracle =
            FaultOracle::build(graph, SpannerParams::vertex(2, 1), OracleOptions::default());
        let churn = ChurnConfig::default();
        let mut wave_rng = rng(22);
        let waves: Vec<FaultSet> = (0..10)
            .map(|_| sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut wave_rng))
            .collect();
        let (_, secs) = timed(|| {
            for wave in &waves {
                let _ = std::hint::black_box(oracle.apply_wave(wave, &churn));
            }
        });
        points.push(TrajectoryPoint {
            name: "churn_repair",
            unit: "waves/s",
            before: baseline("churn_repair"),
            after: waves.len() as f64 / secs,
        });
    }

    // 5. Churn wave on the E12-shaped single oracle (gnp, f = 2, waves of
    //    3 vertices): the repair path the incremental LBC engine serves.
    {
        let graph = gnp_workload(400, 8.0, 13);
        let mut oracle =
            FaultOracle::build(graph, SpannerParams::vertex(2, 2), OracleOptions::default());
        let churn = ChurnConfig::default();
        let mut wave_rng = rng(23);
        let waves: Vec<FaultSet> = (0..10)
            .map(|_| sample_fault_set(oracle.graph(), FaultModel::Vertex, 3, &[], &mut wave_rng))
            .collect();
        let (_, secs) = timed(|| {
            for wave in &waves {
                let _ = std::hint::black_box(oracle.apply_wave(wave, &churn));
            }
        });
        points.push(TrajectoryPoint {
            name: "churn_wave",
            unit: "waves/s",
            before: baseline("churn_wave"),
            after: waves.len() as f64 / secs,
        });
    }

    // 6. Churn wave fan-out on the E13-shaped sharded oracle (grid, 8
    //    shards, waves of 2 vertices): global repair plus per-shard region
    //    rebuilds.
    {
        let graph = ftspan_graph::generators::grid(20, 20);
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards: 8,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        let mut oracle = ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options);
        let churn = ChurnConfig::default();
        let mut wave_rng = rng(24);
        let waves: Vec<FaultSet> = (0..10)
            .map(|_| {
                sample_fault_set(
                    oracle.global().graph(),
                    FaultModel::Vertex,
                    2,
                    &[],
                    &mut wave_rng,
                )
            })
            .collect();
        let (_, secs) = timed(|| {
            for wave in &waves {
                let _ = std::hint::black_box(oracle.apply_wave(wave, &churn));
            }
        });
        points.push(TrajectoryPoint {
            name: "churn_wave_sharded",
            unit: "waves/s",
            before: baseline("churn_wave_sharded"),
            after: waves.len() as f64 / secs,
        });
    }

    // 7. Service front-end throughput: a duplicate-heavy request stream
    //    (2 000 requests drawn from 300 distinct queries — bursty traffic
    //    repeats itself) through `OracleService` with coalescing, vs the
    //    recorded direct `answer_batch` baseline on the same stream.
    {
        use ftspan_bench::{serve_request_stream, service_request_stream};
        use ftspan_oracle::{OracleService, ServiceConfig};
        // The exact stream the `service` criterion bench runs (shared via
        // ftspan_bench::service_request_stream, so the recorded series and
        // the smoke bench can never drift apart).
        let stream: Vec<Query> = service_request_stream(n, batch_size, 300, 19);
        let reps = 20;

        // Drift check: the direct path on the same stream, printed but not
        // recorded (its recorded value is the scenario's `before`).
        let direct = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let _ = direct.answer_batch(&stream); // warm
        let (_, direct_secs) = timed(|| {
            for _ in 0..reps {
                let _ = std::hint::black_box(direct.answer_batch(&stream));
            }
        });
        println!(
            "(service_batch drift check: direct answer_batch on this stream: {:.0} queries/s)",
            (reps * batch_size) as f64 / direct_secs
        );

        let oracle = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let service = OracleService::new(oracle, ServiceConfig::default());
        serve_request_stream(&service, &stream); // warm
        let (_, secs) = timed(|| {
            for _ in 0..reps {
                serve_request_stream(std::hint::black_box(&service), &stream);
            }
        });
        points.push(TrajectoryPoint {
            name: "service_batch",
            unit: "queries/s",
            before: baseline("service_batch"),
            after: (reps * batch_size) as f64 / secs,
        });
    }

    // 7b. The same stream through the concurrent core's worker pool:
    //     a single-threaded backend (`OracleOptions { workers: 1 }`) so the
    //     only parallelism measured is the service's reader workers running
    //     admission rounds concurrently against the published epoch. Its
    //     `before` is a single-threaded direct `answer_batch` on the same
    //     backend measured *this run*, so the speedup column is the honest
    //     multi-worker scaling factor.
    {
        use ftspan_bench::{serve_request_stream, service_request_stream};
        use ftspan_oracle::{OracleService, ServiceConfig};
        let stream: Vec<Query> = service_request_stream(n, batch_size, 300, 19);
        let reps = 20;
        let single_thread = OracleOptions {
            workers: 1,
            ..OracleOptions::default()
        };

        let direct = FaultOracle::build(graph.clone(), params, single_thread.clone());
        let _ = direct.answer_batch(&stream); // warm
        let (_, direct_secs) = timed(|| {
            for _ in 0..reps {
                let _ = std::hint::black_box(direct.answer_batch(&stream));
            }
        });

        let workers = std::thread::available_parallelism()
            .map_or(2, usize::from)
            .min(8);
        let oracle = FaultOracle::build(graph.clone(), params, single_thread);
        let service = OracleService::new(
            oracle,
            ServiceConfig::default()
                .with_workers(workers)
                .with_max_in_flight(64),
        );
        serve_request_stream(&service, &stream); // warm
        let (_, secs) = timed(|| {
            for _ in 0..reps {
                serve_request_stream(std::hint::black_box(&service), &stream);
            }
        });
        println!("(multi_worker_batch: {workers} service workers over a 1-thread backend)");
        points.push(TrajectoryPoint {
            name: "multi_worker_batch",
            unit: "queries/s",
            before: (reps * batch_size) as f64 / direct_secs,
            after: (reps * batch_size) as f64 / secs,
        });
    }

    // 8. The same stream through `ftspan-server` over loopback TCP, one
    //    BATCH frame per rep. Its `before` is the in-process service
    //    throughput measured *this run* (scenario 7), so the speedup column
    //    is the honest wire tax — framing, codec, two socket hops, and the
    //    service-thread handoff — and is expected to sit below 1.0.
    {
        use ftspan_server::{Client, Server, ServerConfig};
        let stream: Vec<Query> = ftspan_bench::service_request_stream(n, batch_size, 300, 19);
        let reps = 20;
        let in_process = points
            .iter()
            .find(|p| p.name == "service_batch")
            .expect("scenario 7 recorded")
            .after;

        let oracle = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let service =
            ftspan_oracle::OracleService::new(oracle, ftspan_oracle::ServiceConfig::default());
        let server = Server::start(service, "127.0.0.1:0", ServerConfig::default())
            .expect("loopback server starts");
        let mut client = Client::connect(server.local_addr()).expect("client connects");
        let _ = client.batch(stream.clone()).expect("warm batch"); // warm
        let (_, secs) = timed(|| {
            for _ in 0..reps {
                let _ = std::hint::black_box(client.batch(stream.clone()).expect("batch served"));
            }
        });
        drop(client);
        let _ = server.shutdown();
        points.push(TrajectoryPoint {
            name: "server_batch",
            unit: "queries/s",
            before: in_process,
            after: (reps * batch_size) as f64 / secs,
        });
    }

    // 9. Warm restart: restoring a 1 000-node sharded oracle from a
    //    `Snapshot` vs building it cold. The restore skips greedy spanner
    //    construction entirely (it replays the recorded spanner and
    //    rebuilds only the deterministic per-shard serving state), so the
    //    speedup column is the warm-restart win — the issue's floor is 10x.
    //    The workload is deliberately dense (avg degree 20, f = 4): warm
    //    restart matters exactly when construction is expensive, and at
    //    this density the greedy pass dominates the cold build.
    {
        use ftspan_oracle::Snapshot;
        let graph = gnp_workload(1_000, 20.0, 29);
        let snap_params = SpannerParams::vertex(2, 4);
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards: 8,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        let (oracle, cold_secs) =
            timed(|| ShardedOracle::build(graph.clone(), snap_params, options.clone()));
        let bytes = Snapshot::capture(&oracle);
        let (restored, restore_secs) =
            timed(|| Snapshot::restore::<ShardedOracle>(&bytes).expect("snapshot restores"));
        assert_eq!(restored.epoch(), oracle.epoch(), "restore sanity");
        assert_eq!(
            restored.global().spanner().edge_count(),
            oracle.global().spanner().edge_count(),
            "restore sanity"
        );
        println!(
            "(snapshot: {} bytes for n=1000; cold build {:.3} s, restore {:.4} s, {:.1}x)",
            bytes.len(),
            cold_secs,
            restore_secs,
            cold_secs / restore_secs
        );
        if cold_secs / restore_secs < 10.0 {
            eprintln!(
                "warning: snapshot restore is less than 10x faster than a cold build \
                 ({:.1}x) — the warm-restart win has regressed",
                cold_secs / restore_secs
            );
        }
        points.push(TrajectoryPoint {
            name: "snapshot_restore_sharded",
            unit: "restores/s",
            before: 1.0 / cold_secs,
            after: 1.0 / restore_secs,
        });
    }

    // 10. Chaos recovery: fault waves applied per second *through the
    //     service barrier* (submit-to-publication, drain included).
    //     `before` is uniform random waves measured this run; `after` is
    //     an adversary aiming the same budget at the highest-degree
    //     vertices — so the speedup column is the measured targeted-attack
    //     tax on recovery (expected at or below 1.0).
    {
        use ftspan_oracle::chaos::high_degree_wave;
        use ftspan_oracle::{OracleService, ServiceConfig};
        // A scale-free topology: hubs exist, so aiming at them actually
        // hurts (on an ER graph every vertex looks alike and the targeted
        // column measures nothing).
        let chaos_graph = ftspan_graph::generators::barabasi_albert(400, 4, &mut rng(31));
        let chaos_params = SpannerParams::vertex(2, 2);
        let mut wave_rng = rng(32);
        let random_waves: Vec<FaultSet> = (0..8)
            .map(|_| sample_fault_set(&chaos_graph, FaultModel::Vertex, 3, &[], &mut wave_rng))
            .collect();
        // Eight disjoint targeted waves: successive 3-vertex slices of the
        // degree ranking, hardest hubs first.
        let targeted_waves: Vec<FaultSet> = high_degree_wave(&chaos_graph, 24)
            .vertex_faults()
            .chunks(3)
            .map(|chunk| FaultSet::vertices(chunk.iter().copied()))
            .collect();
        let measure = |waves: &[FaultSet]| {
            let oracle =
                FaultOracle::build(chaos_graph.clone(), chaos_params, OracleOptions::default());
            let service = OracleService::new(oracle, ServiceConfig::default());
            let (_, secs) = timed(|| {
                for wave in waves {
                    let ticket = service.submit_wave(wave.clone());
                    let _ = std::hint::black_box(service.wait(ticket));
                }
            });
            waves.len() as f64 / secs
        };
        points.push(TrajectoryPoint {
            name: "chaos_recovery",
            unit: "waves/s",
            before: measure(&random_waves),
            after: measure(&targeted_waves),
        });
    }

    // 11. Chaos shed rate: tickets shed per 1 000 submitted when a burst
    //     overruns a bounded admission queue (`max_pending` = 256, burst =
    //     2 000). `before` is a uniform stream; `after` is the Zipf
    //     flash crowd — duplicate-heavy, so coalescing absorbs most of it
    //     without spending queue slots. The speedup column is the measured
    //     flash-crowd absorption factor (well below 1.0 when coalescing
    //     does its job).
    {
        use ftspan_oracle::chaos::zipf_queries;
        use ftspan_oracle::{OracleService, ServiceConfig};
        let chaos_graph = gnp_workload(400, 8.0, 31);
        let chaos_params = SpannerParams::vertex(2, 2);
        let empty = FaultSet::empty(FaultModel::Vertex);
        let uniform: Vec<Query> = {
            let mut r = rng(33);
            (0..batch_size)
                .map(|_| {
                    let u = vid(r.gen_range(0..400));
                    let mut v = vid(r.gen_range(0..400));
                    while v == u {
                        v = vid(r.gen_range(0..400));
                    }
                    Query::distance(u, v, empty.clone())
                })
                .collect()
        };
        let flash_crowd = zipf_queries(&chaos_graph, batch_size, 1.4, &empty, 34);
        let shed_per_1k = |stream: &[Query]| {
            let oracle =
                FaultOracle::build(chaos_graph.clone(), chaos_params, OracleOptions::default());
            let service =
                OracleService::new(oracle, ServiceConfig::default().with_max_pending(256));
            for ticket in service.submit_batch_ref(stream.iter()) {
                let _ = std::hint::black_box(service.wait(ticket));
            }
            let metrics = service.metrics();
            1_000.0 * metrics.shed as f64 / metrics.submitted.max(1) as f64
        };
        points.push(TrajectoryPoint {
            name: "chaos_shed_rate",
            unit: "shed/1k",
            before: shed_per_1k(&uniform),
            after: shed_per_1k(&flash_crowd),
        });
    }

    // 12. Replication catch-up: wave-history entries covered per second on
    //     the way to serving at the primary's epoch. The cold standby
    //     rebuilds the oracle from the graph and replays the full 30-wave
    //     journal; the replica restores the primary's latest snapshot
    //     (taken 5 waves back, the realistic periodic-capture gap) and
    //     replays only the digest-verified tail. The speedup column is the
    //     failover-readiness win.
    {
        use ftspan_oracle::{
            ChurnConfig, JournalEntry, Replica, Snapshot, SpannerOracle, WaveJournal,
        };
        let graph = gnp_workload(400, 8.0, 41);
        let churn = ChurnConfig::default();
        let mut primary = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let mut journal = WaveJournal::new(primary.epoch());
        let mut wave_rng = rng(42);
        let n_waves = 30usize;
        let snapshot_at = 25u64;
        let mut bootstrap = Vec::new();
        for _ in 0..n_waves {
            let wave = sample_fault_set(primary.graph(), FaultModel::Vertex, 2, &[], &mut wave_rng);
            // The trait method, explicitly: it returns the digestable
            // `WaveReport` (the inherent `apply_wave` returns the bare
            // outcome and would shadow it).
            let report = SpannerOracle::apply_wave(&mut primary, &wave, &churn);
            journal
                .append(JournalEntry {
                    epoch: primary.epoch(),
                    wave,
                    report_digest: report.digest(),
                })
                .expect("journal accepts the primary's own history");
            if primary.epoch() == snapshot_at {
                bootstrap = Snapshot::capture(&primary);
            }
        }
        let (_, cold_secs) = timed(|| {
            let mut standby = FaultOracle::build(graph.clone(), params, OracleOptions::default());
            for entry in journal.entries() {
                let _ = std::hint::black_box(SpannerOracle::apply_wave(
                    &mut standby,
                    &entry.wave,
                    &churn,
                ));
            }
        });
        let (replica, warm_secs) = timed(|| {
            let mut replica: Replica<FaultOracle> =
                Replica::bootstrap(&bootstrap, churn.clone()).expect("replica bootstraps");
            replica
                .catch_up(journal.entries_since(snapshot_at).expect("tail in window"))
                .expect("replay stays convergent");
            replica
        });
        assert_eq!(replica.epoch(), primary.epoch(), "catch-up sanity");
        points.push(TrajectoryPoint {
            name: "replica_catchup",
            unit: "entries/s",
            before: n_waves as f64 / cold_secs,
            after: n_waves as f64 / warm_secs,
        });
    }

    // 13. Replica read scaling: aggregate BATCH throughput of three
    //     loopback clients — all three on the primary (`before`) vs spread
    //     across the primary and two snapshot-bootstrapped, caught-up
    //     replicas (`after`). Same clients, same streams both ways, so the
    //     speedup column is what adding two read replicas actually buys.
    //     Each client sends its *own* stream (distinct seeds): identical
    //     streams would hand the single-primary run a cross-connection
    //     coalescing win no replicated deployment ever sees.
    {
        use ftspan_oracle::{OracleService, ServiceConfig};
        use ftspan_server::{Client, ReplicaServer, Server, ServerConfig};
        let streams: Vec<Vec<Query>> = (0..3)
            .map(|i| ftspan_bench::service_request_stream(n, batch_size, 300, 19 + i))
            .collect();
        let reps = 10usize;
        let oracle = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let service = OracleService::new(oracle, ServiceConfig::default());
        let primary = Server::start(service, "127.0.0.1:0", ServerConfig::default())
            .expect("loopback primary starts");
        let replicas: Vec<ReplicaServer<FaultOracle>> = (0..2)
            .map(|_| {
                ReplicaServer::start(
                    primary.local_addr(),
                    "127.0.0.1:0",
                    ServiceConfig::default(),
                    ServerConfig::default(),
                )
                .expect("replica bootstraps")
            })
            .collect();
        let run = |addrs: [std::net::SocketAddr; 3]| {
            let (_, secs) = timed(|| {
                std::thread::scope(|scope| {
                    for (addr, stream) in addrs.into_iter().zip(&streams) {
                        scope.spawn(move || {
                            let mut client = Client::connect(addr).expect("client connects");
                            for _ in 0..reps {
                                let _ = std::hint::black_box(
                                    client.batch(stream.clone()).expect("batch served"),
                                );
                            }
                        });
                    }
                });
            });
            (3 * reps * batch_size) as f64 / secs
        };
        let p = primary.local_addr();
        let before = run([p, p, p]);
        let after = run([p, replicas[0].local_addr(), replicas[1].local_addr()]);
        for replica in replicas {
            let _ = replica.shutdown();
        }
        let _ = primary.shutdown();
        points.push(TrajectoryPoint {
            name: "replica_read_scaling",
            unit: "queries/s",
            before,
            after,
        });
    }

    let fmt = |v: f64| {
        if v < 1_000.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.0}")
        }
    };
    let lines: Vec<(String, String)> = points
        .iter()
        .map(|p| {
            let speedup = if p.before > 0.0 {
                p.after / p.before
            } else {
                0.0
            };
            println!(
                "{:<24} {:>12} -> {:>12} {} ({:.2}x)",
                p.name,
                fmt(p.before),
                fmt(p.after),
                p.unit,
                speedup
            );
            (
                p.name.to_owned(),
                render_scenario(p.name, p.unit, p.before, p.after),
            )
        })
        .collect();
    write_merged_trajectory(&lines);
    println!(
        "note: README.md (Service front-end) and ROADMAP.md quote the service_batch \
         and multi_worker_batch speedups — re-pin both whenever this table moves, \
         or the prose drifts from the recorded trajectory."
    );
}

/// One E13 sweep: builds a `ShardedOracle` per requested shard count, serves
/// the shared batch, and prints the comparison table against the single
/// oracle's throughput.
fn print_shard_sweep(
    graph: &ftspan_graph::Graph,
    params: SpannerParams,
    shard_counts: &[usize],
    queries: &[ftspan_oracle::Query],
    single_qps: f64,
) {
    use ftspan_oracle::{ShardPlanOptions, ShardedOptions, ShardedOracle};

    let batch_size = queries.len();
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        let (oracle, build_secs) = timed(|| ShardedOracle::build(graph.clone(), params, options));
        let (_, secs) = timed(|| oracle.answer_batch(queries));
        let snap = oracle.metrics().snapshot();
        let largest_region = (0..oracle.shard_count())
            .map(|s| oracle.shard_members(s).len())
            .max()
            .unwrap_or(0);
        rows.push(vec![
            shards.to_string(),
            oracle.shard_count().to_string(),
            largest_region.to_string(),
            oracle.boundary().cut_edges().len().to_string(),
            format!("{:.1}", 100.0 * snap.locality_rate()),
            snap.global_fallbacks.to_string(),
            format!("{:.0}", batch_size as f64 / secs),
            format!("{:.2}", (batch_size as f64 / secs) / single_qps),
            format!("{build_secs:.1}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "shards requested",
                "shards",
                "largest region",
                "cut edges",
                "locality %",
                "fallbacks",
                "queries/s",
                "vs single",
                "build s"
            ],
            &rows
        )
    );
}

/// E13: sharded serving — locality, boundary size, and throughput vs the
/// single oracle, including the no-sharding-tax check on a 1-shard plan.
fn experiment_shard() {
    use ftspan::{sample_fault_set, FaultSet};
    use ftspan_oracle::{FaultOracle, OracleOptions, Query};

    println!("\n## E13 — ShardedOracle: locality, boundary, and throughput vs single\n");
    let n = 1_000;
    let batch_size = 2_000;
    let graph = gnp_workload(n, 16.0, 16);
    let params = SpannerParams::vertex(2, 2);
    let single = FaultOracle::build(graph.clone(), params, OracleOptions::default());

    // One shared batch: hot sources over a pool of fault sets.
    let mut query_rng = rng(17);
    let fault_pool: Vec<FaultSet> = (0..8)
        .map(|_| sample_fault_set(single.graph(), FaultModel::Vertex, 2, &[], &mut query_rng))
        .collect();
    let hot_sources: Vec<usize> = (0..32).map(|_| query_rng.gen_range(0..n)).collect();
    let queries: Vec<Query> = (0..batch_size)
        .map(|i| {
            let u = vid(hot_sources[query_rng.gen_range(0..hot_sources.len())]);
            let v = vid(query_rng.gen_range(0..n));
            Query::distance(u, v, fault_pool[i % fault_pool.len()].clone())
        })
        .collect();

    let (_, single_secs) = timed(|| single.answer_batch(&queries));
    let single_qps = batch_size as f64 / single_secs;

    print_shard_sweep(&graph, params, &[1, 2, 4, 8], &queries, single_qps);
    println!(
        "(input: gnp n = {n}, m = {}; single oracle: {single_qps:.0} queries/s; \
         the 1-shard row is the no-sharding-tax check — its ratio must stay above 0.5.\n\
         A diameter-3 gnp graph is sharding's worst case: the 2k − 1 halo covers \
         everything, so regions cannot shrink.)",
        graph.edge_count()
    );

    // The intended regime: moderate diameter, where regions stay small and
    // per-shard state actually shrinks. (The geometric workload is not used
    // here because its random-spanning-tree overlay collapses the hop
    // diameter; a grid keeps genuine distance structure.)
    println!("\n### Grid workload (moderate diameter)\n");
    let graph = ftspan_graph::generators::grid(33, 30);
    let n = graph.vertex_count();
    let single = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let mut r = rng(19);
    let fault_pool: Vec<FaultSet> = (0..8)
        .map(|_| sample_fault_set(single.graph(), FaultModel::Vertex, 2, &[], &mut r))
        .collect();
    let local_queries: Vec<Query> = {
        // Locality-biased traffic: most pairs are near each other, the shape
        // sharded deployments see.
        let mut scratch = ftspan_graph::bfs::BfsScratch::new();
        (0..batch_size)
            .map(|i| {
                let u = vid(r.gen_range(0..n));
                let near = scratch.hop_distances_within(&graph, u, 4);
                let candidates: Vec<usize> = near
                    .iter()
                    .enumerate()
                    .filter(|(j, d)| d.is_some() && *j != u.index())
                    .map(|(j, _)| j)
                    .collect();
                let v = vid(candidates[r.gen_range(0..candidates.len())]);
                Query::distance(u, v, fault_pool[i % fault_pool.len()].clone())
            })
            .collect()
    };
    let (_, single_secs) = timed(|| single.answer_batch(&local_queries));
    let single_qps = batch_size as f64 / single_secs;
    print_shard_sweep(&graph, params, &[1, 4, 8], &local_queries, single_qps);
    println!(
        "(grid n = {n}, m = {}, locality-biased traffic; single oracle: {single_qps:.0} queries/s)",
        graph.edge_count()
    );
}

/// E14 — the scale tier: parallel construction throughput across four
/// graph families, then two-level sharding vs flat sharding (memory per
/// edge and batch query throughput) on the moderate-diameter headline
/// workload. Full mode (10^5 nodes; 10^6 with `FTSPAN_LONG_TESTS=1`)
/// merges the `scale_build`, `mem_bytes_per_edge`, and `scale_query`
/// series into `BENCH_oracle.json`; quick mode (reduced n, the CI smoke)
/// only prints.
fn experiment_scale(quick: bool) {
    use ftspan::FaultSet;
    use ftspan_oracle::{
        HierarchicalOptions, HierarchicalOracle, Query, ShardPlan, ShardPlanOptions, ShardedOracle,
    };

    let long = std::env::var("FTSPAN_LONG_TESTS").is_ok_and(|v| v == "1");
    let base_n: usize = std::env::var("FTSPAN_SCALE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 5_000 } else { 100_000 });
    let sizes: Vec<usize> = if long && !quick {
        vec![base_n, 1_000_000]
    } else {
        vec![base_n]
    };
    let threads = 8;
    // k = 2, f = 2: the t = 3 LBC decisions stay hop-local (what makes
    // 10^5-node greedy construction tractable at all), while the f = 2
    // fault budget keeps each decision expensive enough that speculative
    // parallel batches beat the sequential sweep.
    let params = SpannerParams::vertex(2, 2);

    println!("\n## E14 — Scale tier: parallel construction and two-level sharding\n");
    println!(
        "(mode: {}, sizes: {sizes:?}, {threads} construction threads)\n",
        if quick { "quick" } else { "full" }
    );

    let side = |n: usize| (n as f64).sqrt().round() as usize;
    let geo_radius = |n: usize| (16.0 / (std::f64::consts::PI * n as f64)).sqrt();
    let mut rows = Vec::new();
    // The headline workload the recorded series come from: the largest
    // grid (moderate diameter — the regime sharding is for; see E13).
    let mut headline: Option<(ftspan_graph::Graph, SpannerResultPair)> = None;
    for &n in &sizes {
        for family in ["grid", "erdos_renyi", "barabasi_albert", "geometric"] {
            let (graph, gen_secs) = timed(|| match family {
                "grid" => ftspan_graph::generators::grid(side(n), n / side(n)),
                "erdos_renyi" => gnp_workload(n, 6.0, 41),
                "barabasi_albert" => ftspan_graph::generators::barabasi_albert(n, 3, &mut rng(42)),
                _ => geometric_workload(n, geo_radius(n), 43),
            });
            let m = graph.edge_count();
            let (sequential, seq_secs) = timed(|| poly_greedy_spanner(&graph, params));
            let batch_size: usize = std::env::var("FTSPAN_SCALE_BATCH")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0); // 0 = adaptive batch sizing
            let opts = ftspan::ParallelGreedyOptions {
                threads,
                batch_size,
                base: Default::default(),
            };
            let ((result, speculation), par_secs) =
                timed(|| ftspan::par_poly_greedy_spanner_traced(&graph, params, &opts));
            assert_eq!(
                result.spanner.edge_count(),
                sequential.spanner.edge_count(),
                "parallel construction must be bit-identical to sequential ({family})"
            );
            let decided = speculation.speculative_hits + speculation.recomputed;
            let busy = speculation.decide_busy.as_secs_f64();
            let serial = speculation.commit_wall.as_secs_f64();
            rows.push(vec![
                family.to_owned(),
                graph.vertex_count().to_string(),
                m.to_string(),
                sequential.spanner.edge_count().to_string(),
                format!("{gen_secs:.1}"),
                format!("{seq_secs:.1}"),
                format!("{par_secs:.1}"),
                format!("{:.2}", seq_secs / par_secs),
                format!(
                    "{:.0}",
                    100.0 * speculation.speculative_hits as f64 / decided.max(1) as f64
                ),
                format!("{busy:.1}"),
                format!("{serial:.1}"),
                format!("{:.1}", seq_secs / (busy / threads as f64 + serial)),
            ]);
            if family == "grid" {
                headline = Some((
                    graph,
                    SpannerResultPair {
                        result,
                        seq_edges_per_sec: m as f64 / seq_secs,
                        par_edges_per_sec: m as f64 / par_secs,
                    },
                ));
            }
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "family",
                "n",
                "m",
                "|E(H)|",
                "gen s",
                "seq build s",
                "par build s (8t)",
                "speedup",
                "hit %",
                "decide busy s",
                "serial commit s",
                "8-core bound"
            ],
            &rows
        )
    );
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "(speedup is measured on this host, which offers {cores} core(s) to the \
         {threads} workers; `decide busy s` sums per-worker wall-clock in the \
         speculative decide phase — when workers outnumber cores, preemption \
         inflates it above the true decide CPU time — so `8-core bound` = \
         seq / (busy/8 + serial commit) is a conservative floor on the speedup \
         the measured decide/commit split supports on a full 8-core host)\n"
    );

    // Two-level vs flat sharding on the headline grid: same spanner, same
    // leaf plan, so the deltas isolate the hierarchy itself.
    let (graph, spanner) = headline.expect("grid family always runs");
    let n = graph.vertex_count();
    let m = graph.edge_count();
    let leaves = if quick { 16 } else { 64 };
    let plan_options = ShardPlanOptions {
        shards: leaves,
        ..ShardPlanOptions::default()
    };
    let leaf_plan = ShardPlan::build(&graph, &plan_options);
    let hier_options = HierarchicalOptions {
        plan: plan_options,
        ..HierarchicalOptions::default()
    };
    let (flat, flat_secs) = timed(|| {
        ShardedOracle::from_result(
            graph.clone(),
            spanner.result.clone(),
            leaf_plan.clone(),
            hier_options.flat(),
        )
    });
    let (hier, hier_secs) = timed(|| {
        HierarchicalOracle::from_result(
            graph.clone(),
            spanner.result.clone(),
            leaf_plan,
            hier_options,
        )
    });

    // Locality-biased traffic (the sharded-deployment shape, as in E13):
    // every pair within 8 hops, over a pool of hot fault sets.
    let batch_size = 2_000;
    let queries: Vec<Query> = {
        let mut r = rng(45);
        let fault_pool: Vec<FaultSet> = (0..8)
            .map(|_| {
                let a = vid(r.gen_range(0..n));
                let b = vid(r.gen_range(0..n));
                FaultSet::vertices([a, b])
            })
            .collect();
        let mut scratch = ftspan_graph::bfs::BfsScratch::new();
        (0..batch_size)
            .map(|i| {
                let u = vid(r.gen_range(0..n));
                let near = scratch.hop_distances_within(&graph, u, 8);
                let candidates: Vec<usize> = near
                    .iter()
                    .enumerate()
                    .filter(|(j, d)| d.is_some() && *j != u.index())
                    .map(|(j, _)| j)
                    .collect();
                let v = vid(candidates[r.gen_range(0..candidates.len())]);
                Query::distance(u, v, fault_pool[i % fault_pool.len()].clone())
            })
            .collect()
    };
    let _ = flat.answer_batch(&queries); // warm
    let (flat_answers, flat_query_secs) = timed(|| flat.answer_batch(&queries));
    let _ = hier.answer_batch(&queries); // warm
    let (hier_answers, hier_query_secs) = timed(|| hier.answer_batch(&queries));
    for (f, h) in flat_answers.iter().zip(&hier_answers) {
        assert_eq!(
            f.distance(),
            h.distance(),
            "hierarchical answers must be bit-identical to flat sharding"
        );
    }
    let flat_qps = batch_size as f64 / flat_query_secs;
    let hier_qps = batch_size as f64 / hier_query_secs;
    let flat_bpe = flat.memory_bytes() as f64 / m as f64;
    let hier_bpe = hier.memory_bytes() as f64 / m as f64;
    let hier_snapshot = hier.metrics().snapshot();
    println!(
        "{}",
        markdown_table(
            &[
                "backend",
                "shards",
                "boundary pairs",
                "wrap s",
                "bytes/edge",
                "queries/s"
            ],
            &[
                vec![
                    "flat sharded".into(),
                    flat.shard_count().to_string(),
                    flat.boundary().adjacent_pairs().len().to_string(),
                    format!("{flat_secs:.1}"),
                    format!("{flat_bpe:.0}"),
                    format!("{flat_qps:.0}"),
                ],
                vec![
                    format!("hier {}x{}", hier.super_count(), hier.leaf_count()),
                    hier.leaf_count().to_string(),
                    hier.boundary().adjacent_pairs().len().to_string(),
                    format!("{hier_secs:.1}"),
                    format!("{hier_bpe:.0}"),
                    format!("{hier_qps:.0}"),
                ],
            ]
        )
    );
    println!(
        "(headline grid n = {n}, m = {m}; construction {:.0} -> {:.0} edges/s at {threads} \
         threads; hierarchical locality {:.1}%, distances bit-identical to flat on all \
         {batch_size} queries)",
        spanner.seq_edges_per_sec,
        spanner.par_edges_per_sec,
        100.0 * hier_snapshot.locality_rate(),
    );

    if quick {
        println!("\n(quick mode: BENCH_oracle.json left untouched)");
        return;
    }
    let lines: Vec<(String, String)> = [
        (
            "scale_build",
            "edges/s",
            spanner.seq_edges_per_sec,
            spanner.par_edges_per_sec,
        ),
        ("mem_bytes_per_edge", "bytes/edge", flat_bpe, hier_bpe),
        ("scale_query", "queries/s", flat_qps, hier_qps),
    ]
    .into_iter()
    .map(|(name, unit, before, after)| {
        (name.to_owned(), render_scenario(name, unit, before, after))
    })
    .collect();
    write_merged_trajectory(&lines);
}

/// The headline construction measurement carried from the family sweep to
/// the sharding comparison.
struct SpannerResultPair {
    result: ftspan::SpannerResult,
    seq_edges_per_sec: f64,
    par_edges_per_sec: f64,
}
