//! E7 — the Dinitz–Krauthgamer [DK11] construction (Theorem 13) against the
//! modified greedy at the same parameters.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::{dk, poly_greedy_spanner, SpannerParams};
use ftspan_bench::{gnp_workload, rng};

fn bench_dk11(c: &mut Criterion) {
    let g = gnp_workload(150, 12.0, 7);
    let mut group = c.benchmark_group("dk11_vs_greedy");
    for &f in &[1u32, 2] {
        group.bench_with_input(BenchmarkId::new("dk11", f), &f, |b, &f| {
            b.iter(|| {
                let mut r = rng(f as u64);
                dk::dk_spanner(&g, 2, f, &mut r)
            });
        });
        group.bench_with_input(BenchmarkId::new("poly_greedy", f), &f, |b, &f| {
            b.iter(|| poly_greedy_spanner(&g, SpannerParams::vertex(2, f)));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dk11
}
criterion_main!(benches);
