//! Churn wave throughput: `apply_wave` on the single and sharded oracles —
//! the repair path the incremental LBC engine and the pooled wave scratch
//! serve. Runs in the CI `CRITERION_SMOKE` quick-mode step so repair-path
//! compile regressions and panics surface on every push.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_bench::{gnp_workload, rng};
use ftspan_graph::generators;
use ftspan_oracle::{
    ChurnConfig, FaultOracle, OracleOptions, ShardPlanOptions, ShardedOptions, ShardedOracle,
};

/// Pre-samples `count` waves against the oracle's current graph. Waves are
/// applied cumulatively during measurement — exactly how a serving loop
/// sees them — so the workload keeps its shape (damage stays a small
/// fraction of the graph).
fn sample_waves(
    graph: &ftspan_graph::Graph,
    count: usize,
    size: usize,
    seed: u64,
) -> Vec<FaultSet> {
    let mut r = rng(seed);
    (0..count)
        .map(|_| sample_fault_set(graph, FaultModel::Vertex, size, &[], &mut r))
        .collect()
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_wave");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    group.throughput(Throughput::Elements(1));
    let churn = ChurnConfig::default();

    // E12-shaped single oracle: gnp, f = 2, rolling vertex waves.
    {
        let graph = gnp_workload(400, 8.0, 13);
        let mut oracle =
            FaultOracle::build(graph, SpannerParams::vertex(2, 2), OracleOptions::default());
        let waves = sample_waves(oracle.graph(), 64, 3, 23);
        let mut next = 0usize;
        group.bench_function("single_gnp", |b| {
            b.iter(|| {
                let outcome = oracle.apply_wave(&waves[next % waves.len()], &churn);
                next += 1;
                outcome.edges_added
            });
        });
    }

    // E13-shaped sharded oracle: grid, 8 shards, fan-out repair.
    {
        let graph = generators::grid(20, 20);
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards: 8,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        let mut oracle = ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options);
        let waves = sample_waves(oracle.global().graph(), 64, 2, 24);
        let mut next = 0usize;
        group.bench_function("sharded_grid", |b| {
            b.iter(|| {
                let outcome = oracle.apply_wave(&waves[next % waves.len()], &churn);
                next += 1;
                outcome.rebuilt_shards.len()
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_churn
}
criterion_main!(benches);
