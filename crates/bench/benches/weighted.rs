//! E6 — the weighted modified greedy (Algorithm 4 / Theorem 10) on geometric
//! workloads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::{poly_greedy_spanner, SpannerParams};
use ftspan_bench::geometric_workload;

fn bench_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_greedy");
    for &n in &[100usize, 200] {
        let g = geometric_workload(n, 0.2, 6);
        for &f in &[1u32, 2] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("f{f}")),
                &f,
                |b, &f| {
                    b.iter(|| poly_greedy_spanner(&g, SpannerParams::vertex(2, f)));
                },
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_weighted
}
criterion_main!(benches);
