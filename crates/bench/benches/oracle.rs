//! Oracle serving throughput: batched distance/path queries under vertex
//! faults, with the shortest-path-tree cache on vs off.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftspan::{FaultModel, FaultSet, SpannerParams};
use ftspan_bench::{gnp_workload, rng};
use ftspan_graph::vid;
use ftspan_oracle::{FaultOracle, OracleOptions, Query};
use rand::Rng;

/// A mixed distance/path batch over a handful of rolling fault sets and hot
/// sources — the bursty traffic shape the tree cache is designed for.
fn query_batch(n_vertices: usize, batch: usize, fault_sets: usize, seed: u64) -> Vec<Query> {
    let mut r = rng(seed);
    let waves: Vec<FaultSet> = (0..fault_sets)
        .map(|_| {
            let a = vid(r.gen_range(0..n_vertices));
            let b = vid(r.gen_range(0..n_vertices));
            FaultSet::vertices([a, b])
        })
        .collect();
    let hot_sources: Vec<usize> = (0..24).map(|_| r.gen_range(0..n_vertices)).collect();
    (0..batch)
        .map(|i| {
            let u = vid(hot_sources[r.gen_range(0..hot_sources.len())]);
            let mut v = vid(r.gen_range(0..n_vertices));
            while v == u {
                v = vid(r.gen_range(0..n_vertices));
            }
            let faults = waves[i % waves.len()].clone();
            if i % 4 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect()
}

fn bench_oracle_batch(c: &mut Criterion) {
    let n = 400;
    let batch = 2_000;
    let graph = gnp_workload(n, 6.0, 7);
    let params = SpannerParams::vertex(2, 2);
    let queries = query_batch(n, batch, 8, 11);

    let mut group = c.benchmark_group("oracle_batch");
    group.throughput(Throughput::Elements(batch as u64));
    for (label, capacity) in [("cache_on", 128usize), ("cache_off", 0)] {
        let oracle = FaultOracle::build(
            graph.clone(),
            params,
            OracleOptions {
                cache_capacity: capacity,
                ..OracleOptions::default()
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &queries, |b, q| {
            b.iter(|| oracle.answer_batch(q));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("oracle_single");
    let oracle = FaultOracle::build(graph, params, OracleOptions::default());
    let faults = FaultSet::vertices([vid(1), vid(2)]);
    let empty = FaultSet::empty(FaultModel::Vertex);
    group.bench_function("distance_faulted", |b| {
        b.iter(|| oracle.distance(vid(3), vid(n - 1), &faults))
    });
    group.bench_function("path_no_faults", |b| {
        b.iter(|| oracle.path(vid(3), vid(n - 1), &empty))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_oracle_batch
}
criterion_main!(benches);
