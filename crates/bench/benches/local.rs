//! E8 — the LOCAL-model construction (Theorem 12): decomposition flood plus
//! per-cluster greedy.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::SpannerParams;
use ftspan_bench::{gnp_workload, rng};
use ftspan_distributed::local_ft_spanner;

fn bench_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_ft_spanner");
    for &n in &[100usize, 200] {
        let g = gnp_workload(n, 8.0, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut r = rng(n as u64);
                local_ft_spanner(g, SpannerParams::vertex(2, 1), &mut r)
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_local
}
criterion_main!(benches);
