//! Wire-API throughput: the `service_batch` request stream served through
//! `ftspan-server` over a loopback TCP connection, next to the in-process
//! `OracleService` on the same stream.
//!
//! The gap between the two series is the **loopback tax** — framing,
//! encode/decode, two socket hops, and the handler's submit into the
//! shared concurrent service core — which is exactly what the
//! `server_batch` trajectory scenario records. Runs under `CRITERION_SMOKE=1` in CI like every other bench,
//! which doubles as a smoke test that the server starts, serves a real
//! socket, and shuts down cleanly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftspan::SpannerParams;
use ftspan_bench::{gnp_workload, serve_request_stream, service_request_stream};
use ftspan_oracle::{FaultOracle, OracleOptions, OracleService, ServiceConfig};
use ftspan_server::{Client, Server, ServerConfig};

fn bench_api_throughput(c: &mut Criterion) {
    let n = 400;
    let batch = 2_000;
    let graph = gnp_workload(n, 6.0, 7);
    let params = SpannerParams::vertex(2, 2);
    // The exact stream the `service_batch` / `server_batch` trajectory
    // scenarios record.
    let stream = service_request_stream(n, batch, 300, 19);

    let mut group = c.benchmark_group("api_throughput");
    group.throughput(Throughput::Elements(batch as u64));

    // In-process front-end: the number the wire pays its tax against.
    let oracle = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let service = OracleService::new(oracle, ServiceConfig::default());
    group.bench_with_input(
        BenchmarkId::from_parameter("in_process"),
        &stream,
        |b, s| {
            b.iter(|| serve_request_stream(&service, s));
        },
    );

    // The same stream as one BATCH frame per iteration over loopback TCP.
    let oracle = FaultOracle::build(graph, params, OracleOptions::default());
    let service = OracleService::new(oracle, ServiceConfig::default());
    let server =
        Server::start(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    group.bench_with_input(
        BenchmarkId::from_parameter("server_batch"),
        &stream,
        |b, s| {
            b.iter(|| client.batch(s.clone()).expect("batch served"));
        },
    );
    group.finish();

    drop(client);
    let _ = server.shutdown();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_api_throughput
}
criterion_main!(benches);
