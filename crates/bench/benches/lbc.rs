//! E1 — cost of one `LBC(t, α)` decision (Theorem 4: `O((m + n)·α)`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::lbc::decide_vertex_lbc;
use ftspan_bench::gnp_workload;
use ftspan_graph::vid;

fn bench_lbc(c: &mut Criterion) {
    let mut group = c.benchmark_group("lbc_decision");
    for &n in &[200usize, 400, 800] {
        let g = gnp_workload(n, 10.0, 1);
        for &alpha in &[1u32, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("alpha{alpha}")),
                &alpha,
                |b, &alpha| {
                    b.iter(|| decide_vertex_lbc(&g, vid(0), vid(n - 1), 3, alpha));
                },
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lbc
}
criterion_main!(benches);
