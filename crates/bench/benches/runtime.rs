//! E4 — running time as a function of edge density (Theorem 9 predicts the
//! total time is linear in m for fixed n, k, f).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::{poly_greedy_spanner, SpannerParams};
use ftspan_bench::gnp_workload;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly_greedy_vs_density");
    for &deg in &[6.0f64, 12.0, 24.0] {
        let g = gnp_workload(200, deg, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{}", g.edge_count())),
            &g,
            |b, g| {
                b.iter(|| poly_greedy_spanner(g, SpannerParams::vertex(2, 2)));
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_runtime
}
criterion_main!(benches);
