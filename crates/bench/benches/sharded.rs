//! Sharded vs single-oracle serving throughput.
//!
//! Three configurations answer the same batch on the same graph:
//!
//! * the single global [`FaultOracle`] (the baseline);
//! * a [`ShardedOracle`] with a **1-shard plan** — one region covering the
//!   graph, empty frontier, no fallbacks. The acceptance criterion is that
//!   this stays within 2× of the baseline: routing must not tax unsharded
//!   deployments;
//! * a [`ShardedOracle`] with a 4-shard plan, the configuration that
//!   actually pays for its routing with smaller per-region working sets.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftspan::{FaultModel, FaultSet, SpannerParams};
use ftspan_bench::{gnp_workload, rng};
use ftspan_graph::vid;
use ftspan_oracle::{
    FaultOracle, OracleOptions, Query, ShardPlanOptions, ShardedOptions, ShardedOracle,
};
use rand::Rng;

/// The bursty traffic shape of the oracle bench: hot sources, a handful of
/// rolling fault sets, mixed distance/path queries.
fn query_batch(n_vertices: usize, batch: usize, fault_sets: usize, seed: u64) -> Vec<Query> {
    let mut r = rng(seed);
    let waves: Vec<FaultSet> = (0..fault_sets)
        .map(|_| {
            let a = vid(r.gen_range(0..n_vertices));
            let b = vid(r.gen_range(0..n_vertices));
            FaultSet::vertices([a, b])
        })
        .collect();
    let hot_sources: Vec<usize> = (0..24).map(|_| r.gen_range(0..n_vertices)).collect();
    (0..batch)
        .map(|i| {
            let u = vid(hot_sources[r.gen_range(0..hot_sources.len())]);
            let mut v = vid(r.gen_range(0..n_vertices));
            while v == u {
                v = vid(r.gen_range(0..n_vertices));
            }
            let faults = waves[i % waves.len()].clone();
            if i % 4 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect()
}

fn sharded_options(shards: usize) -> ShardedOptions {
    ShardedOptions {
        plan: ShardPlanOptions {
            shards,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    }
}

fn bench_sharded_vs_single(c: &mut Criterion) {
    let n = 400;
    let batch = 2_000;
    let graph = gnp_workload(n, 6.0, 7);
    let params = SpannerParams::vertex(2, 2);
    let queries = query_batch(n, batch, 8, 11);

    let single = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let one_shard = ShardedOracle::build(graph.clone(), params, sharded_options(1));
    let four_shards = ShardedOracle::build(graph, params, sharded_options(4));

    let mut group = c.benchmark_group("sharded_batch");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_with_input(BenchmarkId::from_parameter("single"), &queries, |b, q| {
        b.iter(|| single.answer_batch(q));
    });
    group.bench_with_input(BenchmarkId::from_parameter("shards_1"), &queries, |b, q| {
        b.iter(|| one_shard.answer_batch(q));
    });
    group.bench_with_input(BenchmarkId::from_parameter("shards_4"), &queries, |b, q| {
        b.iter(|| four_shards.answer_batch(q));
    });
    group.finish();

    let mut group = c.benchmark_group("sharded_single_query");
    let faults = FaultSet::vertices([vid(1), vid(2)]);
    let empty = FaultSet::empty(FaultModel::Vertex);
    group.bench_function("distance_faulted", |b| {
        b.iter(|| four_shards.distance(vid(3), vid(n - 1), &faults))
    });
    group.bench_function("path_no_faults", |b| {
        b.iter(|| four_shards.path(vid(3), vid(n - 1), &empty))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sharded_vs_single
}
criterion_main!(benches);
