//! E9 — the CONGEST constructions: distributed Baswana–Sen (Theorem 14) and
//! the fault-tolerant two-phase construction (Theorem 15).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::SpannerParams;
use ftspan_bench::{gnp_workload, rng};
use ftspan_distributed::{congest_baswana_sen, congest_ft_spanner};

fn bench_congest(c: &mut Criterion) {
    let g = gnp_workload(120, 8.0, 9);
    let mut group = c.benchmark_group("congest");
    for &k in &[2u32, 3] {
        group.bench_with_input(BenchmarkId::new("baswana_sen", k), &k, |b, &k| {
            b.iter(|| {
                let mut r = rng(k as u64);
                congest_baswana_sen(&g, k, &mut r)
            });
        });
    }
    group.bench_function("ft_spanner_f1", |b| {
        b.iter(|| {
            let mut r = rng(99);
            congest_ft_spanner(&g, SpannerParams::vertex(2, 1), &mut r)
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_congest
}
criterion_main!(benches);
