//! Service front-end throughput: the same duplicate-heavy request stream
//! served directly by `answer_batch` vs through the [`OracleService`]
//! (coalescing on and off), over both backends.
//!
//! Bursty service traffic repeats itself — hot `(u, v)` pairs under a
//! small pool of active fault sets — so the front-end's coalescing merges
//! real duplicates before they reach the workers; this bench measures what
//! that buys (and what the front-end costs when every request is unique
//! to its round). Runs in the `CRITERION_SMOKE=1` CI step like every other
//! bench, which is the service smoke test.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftspan::SpannerParams;
use ftspan_bench::{gnp_workload, serve_request_stream, service_request_stream};
use ftspan_oracle::{
    FaultOracle, OracleOptions, OracleService, ServiceConfig, ShardPlanOptions, ShardedOptions,
    ShardedOracle,
};

fn bench_service(c: &mut Criterion) {
    let n = 400;
    let batch = 2_000;
    let graph = gnp_workload(n, 6.0, 7);
    let params = SpannerParams::vertex(2, 2);
    // The exact stream the `service_batch` trajectory scenario records.
    let stream = service_request_stream(n, batch, 300, 19);

    let mut group = c.benchmark_group("service_batch");
    group.throughput(Throughput::Elements(batch as u64));

    // The no-front-end baseline the trajectory compares against.
    let direct = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    group.bench_with_input(BenchmarkId::from_parameter("direct"), &stream, |b, s| {
        b.iter(|| direct.answer_batch(s));
    });

    for (label, coalesce) in [("coalesce_on", true), ("coalesce_off", false)] {
        let oracle = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let service = OracleService::new(oracle, ServiceConfig::default().with_coalesce(coalesce));
        group.bench_with_input(BenchmarkId::from_parameter(label), &stream, |b, s| {
            b.iter(|| serve_request_stream(&service, s));
        });
    }

    // The concurrent core's worker pool over a deliberately single-threaded
    // backend (`workers: 1`), so the only parallelism in the series is the
    // service's reader workers overlapping admission rounds against the
    // epoch-published snapshot. `max_in_flight(64)` splits each drain into
    // rounds small enough for the workers to share.
    for workers in [2usize, 4, 8] {
        let oracle = FaultOracle::build(
            graph.clone(),
            params,
            OracleOptions {
                workers: 1,
                ..OracleOptions::default()
            },
        );
        let service = OracleService::new(
            oracle,
            ServiceConfig::default()
                .with_workers(workers)
                .with_max_in_flight(64),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("multi_worker_{workers}")),
            &stream,
            |b, s| {
                b.iter(|| serve_request_stream(&service, s));
            },
        );
    }

    // The same front-end over the sharded backend (per-shard lanes).
    let sharded = ShardedOracle::build(
        graph,
        params,
        ShardedOptions {
            plan: ShardPlanOptions {
                shards: 8,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        },
    );
    let service = OracleService::new(sharded, ServiceConfig::default());
    group.bench_with_input(
        BenchmarkId::from_parameter("sharded_coalesce_on"),
        &stream,
        |b, s| {
            b.iter(|| serve_request_stream(&service, s));
        },
    );
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_service
}
criterion_main!(benches);
