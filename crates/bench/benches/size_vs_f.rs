//! E3 — modified greedy construction cost as the fault budget f grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::{poly_greedy_spanner, SpannerParams};
use ftspan_bench::gnp_workload;

fn bench_size_vs_f(c: &mut Criterion) {
    let g = gnp_workload(200, 16.0, 3);
    let mut group = c.benchmark_group("poly_greedy_vs_f");
    for &f in &[1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, &f| {
            b.iter(|| poly_greedy_spanner(&g, SpannerParams::vertex(2, f)));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_size_vs_f
}
criterion_main!(benches);
