//! E2 — modified greedy construction over growing n (Theorems 5, 8).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::{poly_greedy_spanner, SpannerParams};
use ftspan_bench::gnp_workload;

fn bench_size_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly_greedy_vs_n");
    for &n in &[100usize, 200, 400] {
        let g = gnp_workload(n, 10.0, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| poly_greedy_spanner(g, SpannerParams::vertex(2, 1)));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_size_vs_n
}
criterion_main!(benches);
