//! E5 — exponential-time exact greedy [BP19] vs the paper's polynomial-time
//! modified greedy on instances small enough for both.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftspan::{exact_greedy_spanner, poly_greedy_spanner, SpannerParams};
use ftspan_bench::gnp_workload;

fn bench_exact_vs_poly(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_poly");
    for &n in &[20usize, 35] {
        let g = gnp_workload(n, 8.0, 5);
        let params = SpannerParams::vertex(2, 1);
        group.bench_with_input(BenchmarkId::new("exact", n), &g, |b, g| {
            b.iter(|| exact_greedy_spanner(g, params).expect("within budget"));
        });
        group.bench_with_input(BenchmarkId::new("poly", n), &g, |b, g| {
            b.iter(|| poly_greedy_spanner(g, params));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_exact_vs_poly
}
criterion_main!(benches);
