//! Decomposition-guided parallel spanner construction.
//!
//! The speculative-batch engine in `ftspan::greedy_par` is exact for *any*
//! batch size, but its throughput depends on how often edges in the same
//! batch land within `t` hops of each other. The padded decomposition
//! (Theorem 11) measures exactly that locality: clusters are low-diameter
//! islands and most edges are cluster-internal, so the expected conflict
//! footprint of one accepted edge is bounded by its cluster. This module
//! turns a [`Decomposition`] into a [`ParallelBuildPlan`] — thread count
//! plus a batch size sized to the cluster granularity — and runs the engine
//! with it. The output is still bit-identical to the sequential greedy
//! sweep; the plan only tunes wall-clock.

use ftspan::{
    par_poly_greedy_spanner_traced, ParallelGreedyOptions, PolyGreedyOptions, SpannerParams,
    SpannerResult, SpeculationStats,
};
use ftspan_graph::Graph;
use rand::Rng;

use crate::decomposition::{padded_decomposition, Decomposition, DecompositionOptions};

/// A decomposition-derived execution plan for the parallel greedy engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelBuildPlan {
    /// Worker threads the build will use (`0` = all available cores).
    pub threads: usize,
    /// Speculative batch size handed to the engine (`0` = the engine's
    /// hit-rate-adaptive sizing, the default).
    pub batch_size: usize,
    /// Number of clusters in the sharding partition the plan was read from.
    pub clusters: usize,
    /// Largest cluster in that partition (the conflict-footprint bound).
    pub max_cluster_size: usize,
}

impl ParallelBuildPlan {
    /// Derives a plan from a decomposition's sharding partition.
    ///
    /// The batch size is left at `0` — the engine's adaptive policy, which
    /// sizes batches from the observed speculation hit rate, beats any
    /// fixed cluster-derived guess (the old mean-edges-per-cluster
    /// heuristic predicted conflict footprints worse than simply watching
    /// the conflicts happen). The cluster count and largest cluster are
    /// kept as telemetry: they bound the conflict footprint a wave of
    /// accepts can have and explain the hit rate the engine settles at.
    #[must_use]
    pub fn from_decomposition(
        _graph: &Graph,
        decomposition: &Decomposition,
        threads: usize,
    ) -> Self {
        let partition = decomposition.sharding_partition();
        let clusters = partition.clusters().len().max(1);
        let max_cluster_size = partition.max_cluster_size();
        Self {
            threads,
            batch_size: 0,
            clusters,
            max_cluster_size,
        }
    }

    /// The engine options this plan expands to.
    #[must_use]
    pub fn engine_options(&self, base: PolyGreedyOptions) -> ParallelGreedyOptions {
        ParallelGreedyOptions {
            threads: self.threads,
            batch_size: self.batch_size,
            base,
        }
    }
}

/// Outcome of [`decomposed_parallel_spanner`]: the spanner result plus the
/// plan and speculation counters that produced it.
#[derive(Debug)]
pub struct ParallelBuildOutcome {
    /// The constructed spanner (bit-identical to the sequential sweep).
    pub result: SpannerResult,
    /// The decomposition-derived plan that was executed.
    pub plan: ParallelBuildPlan,
    /// How the speculation resolved (hit/recompute/flush counters).
    pub speculation: SpeculationStats,
}

/// Builds the modified greedy spanner on `threads` scoped threads, sizing
/// the speculative batches from a freshly sampled padded decomposition.
///
/// The returned spanner and certificates are bit-identical to
/// [`ftspan::poly_greedy_spanner`] on the same input — the decomposition
/// influences scheduling only, never the output — so `rng` consumption here
/// does not perturb any pinned downstream results.
#[must_use]
pub fn decomposed_parallel_spanner<R: Rng + ?Sized>(
    graph: &Graph,
    params: SpannerParams,
    threads: usize,
    rng: &mut R,
) -> ParallelBuildOutcome {
    let decomposition = padded_decomposition(graph, &DecompositionOptions::default(), rng);
    decomposed_parallel_spanner_with(
        graph,
        params,
        threads,
        &decomposition,
        PolyGreedyOptions::default(),
    )
}

/// As [`decomposed_parallel_spanner`], with a caller-provided decomposition
/// and greedy options (edge order, certificate collection).
#[must_use]
pub fn decomposed_parallel_spanner_with(
    graph: &Graph,
    params: SpannerParams,
    threads: usize,
    decomposition: &Decomposition,
    base: PolyGreedyOptions,
) -> ParallelBuildOutcome {
    let plan = ParallelBuildPlan::from_decomposition(graph, decomposition, threads);
    let (result, speculation) =
        par_poly_greedy_spanner_traced(graph, params, &plan.engine_options(base));
    ParallelBuildOutcome {
        result,
        plan,
        speculation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan::poly_greedy_spanner;
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decomposed_build_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = generators::connected_gnp(110, 0.08, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let reference = poly_greedy_spanner(&g, params);
        for threads in [2usize, 8] {
            let outcome = decomposed_parallel_spanner(&g, params, threads, &mut rng);
            assert_eq!(
                outcome.result.spanner.edge_count(),
                reference.spanner.edge_count()
            );
            for (e, want) in reference.spanner.edges() {
                let got = outcome.result.spanner.edge(e);
                assert_eq!(got.endpoints(), want.endpoints());
                assert_eq!(got.weight().to_bits(), want.weight().to_bits());
            }
            assert!(outcome.plan.clusters >= 1);
            assert_eq!(outcome.plan.batch_size, 0, "adaptive engine sizing");
        }
    }

    #[test]
    fn plan_tracks_cluster_granularity() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = generators::connected_gnp(80, 0.1, &mut rng);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        let plan = ParallelBuildPlan::from_decomposition(&g, &d, 4);
        assert_eq!(plan.threads, 4);
        assert_eq!(plan.batch_size, 0, "adaptive engine sizing");
        assert_eq!(
            plan.max_cluster_size,
            d.sharding_partition().max_cluster_size()
        );
    }
}
