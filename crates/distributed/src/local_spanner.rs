//! The LOCAL-model fault-tolerant spanner construction (Theorem 12).
//!
//! The algorithm is exactly the paper's: build a padded decomposition
//! (Theorem 11), gather each cluster's induced subgraph at its center, run a
//! centralized fault-tolerant greedy there, and broadcast the chosen edges
//! back. Because the LOCAL model allows unbounded message sizes, the gather
//! and scatter are plain convergecast/broadcast over the cluster BFS trees
//! and cost `O(cluster diameter) = O(log n)` rounds; all clusters of all
//! partitions proceed in parallel.
//!
//! The decomposition flood is executed in the round engine; the convergecast
//! and broadcast are charged at their exact tree depth (`2·diameter + 2`
//! rounds) while their content — which the LOCAL model lets the center learn
//! wholesale — is computed directly from the induced subgraph. The per-cluster
//! centralized construction defaults to the paper's polynomial-time modified
//! greedy and can be switched to the exact greedy of Algorithm 1 (what the
//! paper literally prescribes, at exponential local-computation cost).

use ftspan::{
    exact_greedy_spanner_with, poly_greedy_spanner, ExactGreedyOptions, SpannerParams,
    SpannerResult, SpannerStats,
};
use ftspan_graph::Graph;
use rand::Rng;

use crate::decomposition::{padded_decomposition, Decomposition, DecompositionOptions};
use crate::metrics::RoundStats;

/// Which centralized construction each cluster center runs on its gathered
/// subgraph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClusterAlgorithm {
    /// The paper's polynomial-time modified greedy (Algorithms 3/4). Loses a
    /// factor `k` in the per-cluster size bound but keeps local computation
    /// polynomial.
    #[default]
    PolyGreedy,
    /// The exact greedy of Algorithm 1, as stated in Theorem 12 (LOCAL allows
    /// unbounded local computation). Exponential in `f`; keep clusters small.
    ExactGreedy,
}

/// Options for [`local_ft_spanner_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LocalSpannerOptions {
    /// Decomposition parameters (Theorem 11).
    pub decomposition: DecompositionOptions,
    /// Per-cluster centralized construction.
    pub cluster_algorithm: ClusterAlgorithm,
}

/// Result of a distributed spanner construction.
#[derive(Clone, Debug)]
pub struct DistributedSpannerResult {
    /// The constructed fault-tolerant spanner, on the input vertex set.
    pub spanner: Graph,
    /// Parameters targeted by the construction.
    pub params: SpannerParams,
    /// Round/message accounting for the whole distributed execution.
    pub rounds: RoundStats,
    /// Aggregated statistics of the centralized per-cluster constructions.
    pub local_work: SpannerStats,
    /// Number of partitions used by the decomposition.
    pub partitions: usize,
}

/// Runs the LOCAL-model construction with default options.
///
/// # Examples
///
/// ```
/// use ftspan::SpannerParams;
/// use ftspan_distributed::local_ft_spanner;
/// use ftspan_graph::generators;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let g = generators::connected_gnp(40, 0.2, &mut rng);
/// let result = local_ft_spanner(&g, SpannerParams::vertex(2, 1), &mut rng);
/// assert!(result.spanner.edge_count() <= g.edge_count());
/// ```
#[must_use]
pub fn local_ft_spanner<R: Rng + ?Sized>(
    graph: &Graph,
    params: SpannerParams,
    rng: &mut R,
) -> DistributedSpannerResult {
    local_ft_spanner_with(graph, params, &LocalSpannerOptions::default(), rng)
}

/// Runs the LOCAL-model construction with explicit options.
#[must_use]
pub fn local_ft_spanner_with<R: Rng + ?Sized>(
    graph: &Graph,
    params: SpannerParams,
    options: &LocalSpannerOptions,
    rng: &mut R,
) -> DistributedSpannerResult {
    // 1. Padded decomposition (distributed flood, Theorem 11).
    let decomposition = padded_decomposition(graph, &options.decomposition, rng);

    // 2. Per-cluster gather → centralized greedy → scatter.
    let mut spanner = Graph::empty_like(graph);
    let mut local_work = SpannerStats {
        algorithm: "local-ft-spanner",
        input_vertices: graph.vertex_count(),
        input_edges: graph.edge_count(),
        ..SpannerStats::default()
    };
    let mut max_cluster_diameter = 0u32;
    for partition in &decomposition.partitions {
        max_cluster_diameter = max_cluster_diameter.max(partition.max_cluster_hop_diameter(graph));
        for (_, members) in partition.clusters() {
            if members.len() < 2 {
                continue;
            }
            let (induced, original) = graph.induced_subgraph(&members);
            if induced.edge_count() == 0 {
                continue;
            }
            let cluster_result = run_cluster_algorithm(&induced, params, options.cluster_algorithm);
            local_work.lbc_calls += cluster_result.stats.lbc_calls;
            local_work.bfs_runs += cluster_result.stats.bfs_runs;
            local_work.fault_sets_enumerated += cluster_result.stats.fault_sets_enumerated;
            for (_, edge) in cluster_result.spanner.edges() {
                let (a, b) = edge.endpoints();
                let (u, v) = (original[a.index()], original[b.index()]);
                if spanner.edge_between(u, v).is_none() {
                    spanner.add_edge(u.index(), v.index(), edge.weight());
                }
            }
        }
    }
    local_work.spanner_edges = spanner.edge_count();

    // Convergecast (gather) + broadcast (scatter) over each cluster's BFS
    // tree: depth ≤ diameter each way, plus one round to announce completion.
    // All clusters and partitions run in parallel in LOCAL.
    let gather_scatter = RoundStats {
        rounds: 2 * max_cluster_diameter as usize + 2,
        ..RoundStats::default()
    };
    let rounds = decomposition.stats.sequential(gather_scatter);

    DistributedSpannerResult {
        spanner,
        params,
        rounds,
        local_work,
        partitions: decomposition.partitions.len(),
    }
}

/// Exposes the decomposition used by [`local_ft_spanner_with`] so experiments
/// can report its properties alongside the spanner.
#[must_use]
pub fn decompose<R: Rng + ?Sized>(
    graph: &Graph,
    options: &DecompositionOptions,
    rng: &mut R,
) -> Decomposition {
    padded_decomposition(graph, options, rng)
}

fn run_cluster_algorithm(
    induced: &Graph,
    params: SpannerParams,
    algorithm: ClusterAlgorithm,
) -> SpannerResult {
    match algorithm {
        ClusterAlgorithm::PolyGreedy => poly_greedy_spanner(induced, params),
        ClusterAlgorithm::ExactGreedy => {
            let options = ExactGreedyOptions {
                enumeration_budget: 2_000_000,
            };
            exact_greedy_spanner_with(induced, params, &options).unwrap_or_else(|_| {
                // Fall back to the polynomial algorithm when the cluster is
                // too dense for exact enumeration; the result is still a
                // valid fault-tolerant spanner, only a factor k larger.
                poly_greedy_spanner(induced, params)
            })
        }
    }
}

/// Returns `true` when a decomposition covering every edge guarantees the
/// fault-tolerance property of the union spanner; used by tests to tie the
/// correctness argument of Theorem 12 to the observed decomposition.
#[must_use]
pub fn union_correctness_precondition(graph: &Graph, decomposition: &Decomposition) -> bool {
    decomposition.covers_all_edges(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan::bounds;
    use ftspan::verify::{verify_spanner, VerificationMode};
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn local_spanner_is_a_valid_ft_spanner() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::connected_gnp(18, 0.3, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = local_ft_spanner(&g, params, &mut rng);
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
        assert!(result.spanner.is_edge_subgraph_of(&g));
    }

    #[test]
    fn exact_cluster_algorithm_also_yields_a_valid_spanner() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::connected_gnp(14, 0.3, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let options = LocalSpannerOptions {
            cluster_algorithm: ClusterAlgorithm::ExactGreedy,
            ..LocalSpannerOptions::default()
        };
        let result = local_ft_spanner_with(&g, params, &options, &mut rng);
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn round_count_is_logarithmic_not_linear_in_n() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = generators::path(200);
        let params = SpannerParams::vertex(2, 1);
        let result = local_ft_spanner(&g, params, &mut rng);
        // Generous constant over the O(log n) bound; crucially far below the
        // diameter of the path (199), which a naive algorithm would need.
        let bound = 80.0 * bounds::local_round_bound(200);
        assert!(
            (result.rounds.rounds as f64) <= bound,
            "rounds {} exceed {bound}",
            result.rounds.rounds
        );
    }

    #[test]
    fn size_stays_within_the_local_reference_curve() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::connected_gnp(60, 0.4, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = local_ft_spanner(&g, params, &mut rng);
        // Theorem 12 curve times the extra factor k of the polynomial
        // per-cluster algorithm, and never more than m.
        let bound = (2.0 * bounds::local_size_bound(60, 2, 1)).min(g.edge_count() as f64) + 60.0;
        assert!((result.spanner.edge_count() as f64) <= bound);
    }

    #[test]
    fn partitions_count_matches_decomposition() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = generators::grid(6, 6);
        let result = local_ft_spanner(&g, SpannerParams::vertex(2, 1), &mut rng);
        let expected = ((36.0f64).log2() * 4.0).ceil() as usize;
        assert_eq!(result.partitions, expected);
        assert_eq!(result.local_work.algorithm, "local-ft-spanner");
    }

    #[test]
    fn correctness_precondition_reported() {
        let mut rng = StdRng::seed_from_u64(15);
        let g = generators::connected_gnp(30, 0.15, &mut rng);
        let d = decompose(&g, &DecompositionOptions::default(), &mut rng);
        assert!(union_correctness_precondition(&g, &d));
    }

    #[test]
    fn edge_fault_model_is_supported() {
        let mut rng = StdRng::seed_from_u64(16);
        let g = generators::connected_gnp(14, 0.35, &mut rng);
        let params = SpannerParams::edge(2, 1);
        let result = local_ft_spanner(&g, params, &mut rng);
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn tiny_graphs_are_handled() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in 0..3usize {
            let g = Graph::new(n);
            let r = local_ft_spanner(&g, SpannerParams::vertex(2, 1), &mut rng);
            assert_eq!(r.spanner.edge_count(), 0);
            assert_eq!(r.spanner.vertex_count(), n);
        }
    }
}
