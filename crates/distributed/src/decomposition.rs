//! Padded network decomposition (Theorem 11 of the paper).
//!
//! The LOCAL construction needs `ℓ = O(log n)` partitions of the vertex set
//! into clusters of hop diameter `O(log n)` such that, with high probability,
//! every edge is fully contained in at least one cluster over all partitions.
//! We build each partition with the exponential-shift clustering of
//! Miller–Peng–Xu [MPX13]: every vertex `u` draws `δ_u ~ Exp(β)` and every
//! vertex `v` joins the cluster of the vertex maximizing `δ_u − d(u, v)`.
//! Clusters are connected, have radius at most `max_u δ_u = O(log n / β)`
//! with high probability, and any fixed edge is cut with probability
//! `O(β)`, so `O(log n)` independent repetitions cover every edge whp.
//!
//! The clustering itself is computed by a genuinely distributed Bellman–Ford
//! style flood in the round engine: each vertex repeatedly forwards the best
//! `(center, shifted distance)` pair it knows, using two-word messages, until
//! no vertex improves — `O(max_u δ_u)` rounds.

use std::collections::HashMap;

use ftspan_graph::bfs::bfs_hop_distances;
use ftspan_graph::{Graph, VertexId};
use rand::Rng;

use crate::metrics::RoundStats;
use crate::runtime::{Model, Network, Outgoing};

/// One partition of the vertex set into low-diameter clusters.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    center_of: Vec<VertexId>,
}

impl Partition {
    /// The cluster center assigned to vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn center_of(&self, v: VertexId) -> VertexId {
        self.center_of[v.index()]
    }

    /// Returns `true` if both endpoints of the edge lie in the same cluster.
    #[must_use]
    pub fn covers_edge(&self, graph: &Graph, u: VertexId, v: VertexId) -> bool {
        let _ = graph;
        self.center_of[u.index()] == self.center_of[v.index()]
    }

    /// Groups vertices by cluster, returning `(center, members)` pairs sorted
    /// by center id.
    #[must_use]
    pub fn clusters(&self) -> Vec<(VertexId, Vec<VertexId>)> {
        let mut groups: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        for (i, &c) in self.center_of.iter().enumerate() {
            groups.entry(c).or_default().push(VertexId::new(i));
        }
        let mut out: Vec<_> = groups.into_iter().collect();
        out.sort_by_key(|(c, _)| *c);
        out
    }

    /// Size of the largest cluster (0 for an empty graph) — the balance
    /// criterion used when picking a partition for sharding.
    #[must_use]
    pub fn max_cluster_size(&self) -> usize {
        self.clusters()
            .iter()
            .map(|(_, members)| members.len())
            .max()
            .unwrap_or(0)
    }

    /// Packs the partition's clusters into `shards` groups of roughly equal
    /// vertex count, returning the shard index of every vertex.
    ///
    /// The packing is deterministic: clusters are taken largest first (ties
    /// by center id) and each goes to the currently lightest shard (ties by
    /// shard index). Whole clusters are never split, so every intra-cluster
    /// edge — the edges the low-diameter clustering worked to keep together —
    /// stays internal to a shard, and the same partition always yields the
    /// same assignment (the reproducibility the sharded differential tests
    /// rely on).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    #[must_use]
    pub fn shard_assignment(&self, shards: usize) -> Vec<u32> {
        assert!(shards > 0, "shard count must be positive");
        let mut clusters = self.clusters();
        clusters.sort_by(|(ca, ma), (cb, mb)| mb.len().cmp(&ma.len()).then(ca.cmp(cb)));
        let mut load = vec![0usize; shards];
        let mut shard_of = vec![0u32; self.center_of.len()];
        for (_, members) in clusters {
            let lightest = load
                .iter()
                .enumerate()
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i)
                .expect("at least one shard");
            load[lightest] += members.len();
            for v in members {
                shard_of[v.index()] = lightest as u32;
            }
        }
        shard_of
    }

    /// The maximum hop diameter of any cluster, measured inside the induced
    /// subgraph of the cluster (strong diameter). Singleton clusters have
    /// diameter 0.
    #[must_use]
    pub fn max_cluster_hop_diameter(&self, graph: &Graph) -> u32 {
        let mut worst = 0;
        for (_, members) in self.clusters() {
            let (sub, _) = graph.induced_subgraph(&members);
            for v in 0..sub.vertex_count() {
                let ecc = bfs_hop_distances(&sub, VertexId::new(v))
                    .into_iter()
                    .flatten()
                    .max()
                    .unwrap_or(0);
                worst = worst.max(ecc);
            }
        }
        worst
    }
}

/// An `O(log n)`-partition padded decomposition together with the round cost
/// of computing it in the LOCAL model.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The partitions (each vertex belongs to exactly one cluster in each).
    pub partitions: Vec<Partition>,
    /// Rounds/messages used by the distributed clustering floods. All
    /// partitions can be computed in parallel in LOCAL, so `rounds` is the
    /// maximum over partitions, while traffic adds up.
    pub stats: RoundStats,
}

impl Decomposition {
    /// Returns `true` if every edge of the graph is contained in some cluster
    /// of some partition (the "padded" property of Theorem 11, which holds
    /// with high probability).
    #[must_use]
    pub fn covers_all_edges(&self, graph: &Graph) -> bool {
        graph.edges().all(|(_, e)| {
            let (u, v) = e.endpoints();
            self.partitions.iter().any(|p| p.covers_edge(graph, u, v))
        })
    }

    /// The partition best suited for deriving a shard plan: the one whose
    /// largest cluster is smallest (ties broken by partition index), so the
    /// downstream bin packing starts from the most balanced clustering.
    ///
    /// # Panics
    ///
    /// Panics if the decomposition has no partitions (never produced by
    /// [`padded_decomposition`]).
    #[must_use]
    pub fn sharding_partition(&self) -> &Partition {
        self.partitions
            .iter()
            .min_by_key(|p| p.max_cluster_size())
            .expect("decomposition has at least one partition")
    }

    /// Fraction of edges covered by at least one cluster.
    #[must_use]
    pub fn edge_coverage(&self, graph: &Graph) -> f64 {
        if graph.edge_count() == 0 {
            return 1.0;
        }
        let covered = graph
            .edges()
            .filter(|(_, e)| {
                let (u, v) = e.endpoints();
                self.partitions.iter().any(|p| p.covers_edge(graph, u, v))
            })
            .count();
        covered as f64 / graph.edge_count() as f64
    }
}

/// Options for [`padded_decomposition`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecompositionOptions {
    /// Rate of the exponential shifts; cluster radius is `O(log n / beta)`
    /// whp and each edge is cut with probability `O(beta)`.
    pub beta: f64,
    /// Number of partitions. `None` uses `⌈4·log₂ n⌉`, enough for the
    /// whp edge-coverage guarantee.
    pub partitions: Option<usize>,
}

impl Default for DecompositionOptions {
    fn default() -> Self {
        Self {
            beta: 0.25,
            partitions: None,
        }
    }
}

/// Builds one exponential-shift partition with a distributed flood, recording
/// its round cost in `net`.
fn exponential_shift_partition<R: Rng + ?Sized>(
    graph: &Graph,
    beta: f64,
    rng: &mut R,
    stats: &mut RoundStats,
) -> Partition {
    let n = graph.vertex_count();
    if n == 0 {
        return Partition {
            center_of: Vec::new(),
        };
    }
    // δ_u ~ Exp(beta), truncated defensively at 8 ln(n+2)/beta.
    let cap = 8.0 * ((n + 2) as f64).ln() / beta;
    let shifts: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            (-u.ln() / beta).min(cap)
        })
        .collect();

    // Distributed Bellman–Ford on the shifted value max_u (δ_u − d(u, v)).
    // best[v] = (value, center); messages carry (center, value) = 2 words.
    let mut best: Vec<(f64, VertexId)> = shifts
        .iter()
        .enumerate()
        .map(|(v, &s)| (s, VertexId::new(v)))
        .collect();
    let mut changed: Vec<bool> = vec![true; n];
    let mut net: Network<'_, (VertexId, f64)> = Network::new(graph, Model::congest());
    let max_rounds = (cap.ceil() as usize) + 5;
    net.run_until_quiet(max_rounds, |v, inbox| {
        let idx = v.index();
        for msg in inbox {
            let (center, value) = msg.payload;
            let candidate = (value - 1.0, center);
            if candidate.0 > best[idx].0
                || (candidate.0 == best[idx].0 && candidate.1 < best[idx].1)
            {
                best[idx] = candidate;
                changed[idx] = true;
            }
        }
        if changed[idx] {
            changed[idx] = false;
            let (value, center) = best[idx];
            graph
                .neighbors(v)
                .map(|(nbr, _)| Outgoing::sized(nbr, (center, value), 2))
                .collect()
        } else {
            Vec::new()
        }
    });
    *stats = stats.parallel(net.stats());
    Partition {
        center_of: best.into_iter().map(|(_, c)| c).collect(),
    }
}

/// Builds a padded decomposition: `O(log n)` exponential-shift partitions.
///
/// The clustering floods for the different partitions are independent, so in
/// the LOCAL model they run in parallel; the returned round count is the
/// maximum over partitions (traffic adds up).
#[must_use]
pub fn padded_decomposition<R: Rng + ?Sized>(
    graph: &Graph,
    options: &DecompositionOptions,
    rng: &mut R,
) -> Decomposition {
    let n = graph.vertex_count();
    let repetitions = options
        .partitions
        .unwrap_or_else(|| ((n.max(2) as f64).log2() * 4.0).ceil() as usize)
        .max(1);
    let mut stats = RoundStats::default();
    let partitions = (0..repetitions)
        .map(|_| exponential_shift_partition(graph, options.beta, rng, &mut stats))
        .collect();
    Decomposition { partitions, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_vertex_gets_a_center_and_clusters_partition_v() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::connected_gnp(40, 0.1, &mut rng);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        for p in &d.partitions {
            let total: usize = p.clusters().iter().map(|(_, m)| m.len()).sum();
            assert_eq!(total, 40);
            // Every member of a cluster maps back to that center.
            for (center, members) in p.clusters() {
                assert!(
                    members.contains(&center),
                    "center must be in its own cluster"
                );
                for m in members {
                    assert_eq!(p.center_of(m), center);
                }
            }
        }
    }

    #[test]
    fn cluster_diameter_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::grid(8, 8);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        let bound = (8.0 * (64.0f64).ln() / 0.25).ceil() as u32 * 2 + 2;
        for p in &d.partitions {
            assert!(p.max_cluster_hop_diameter(&g) <= bound);
        }
    }

    #[test]
    fn decomposition_covers_all_edges_whp() {
        // Fixed seeds make the whp statement deterministic in the test.
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_gnp(50, 0.08, &mut rng);
            let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
            assert!(
                d.covers_all_edges(&g),
                "seed {seed}: coverage {}",
                d.edge_coverage(&g)
            );
        }
    }

    #[test]
    fn number_of_partitions_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::path(100);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        let expected = ((100.0f64).log2() * 4.0).ceil() as usize;
        assert_eq!(d.partitions.len(), expected);
        // Explicit partition count is honoured.
        let d = padded_decomposition(
            &g,
            &DecompositionOptions {
                partitions: Some(3),
                ..DecompositionOptions::default()
            },
            &mut rng,
        );
        assert_eq!(d.partitions.len(), 3);
    }

    #[test]
    fn flood_round_cost_is_logarithmic_not_linear() {
        // On a long path the clustering must finish in O(log n / beta) rounds,
        // far below the diameter.
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::path(300);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        let cap = 8.0 * (302.0f64).ln() / 0.25 + 2.0;
        assert!(
            (d.stats.rounds as f64) <= cap,
            "rounds {} exceed cap {cap}",
            d.stats.rounds
        );
        assert!(d.stats.rounds < 299);
    }

    #[test]
    fn messages_fit_in_congest_words() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::grid(6, 6);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        assert!(d.stats.max_words_per_edge_round <= 4);
    }

    #[test]
    fn singleton_and_empty_graphs() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = Graph::new(0);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        assert!(d.covers_all_edges(&g));
        let g = Graph::new(1);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        assert_eq!(
            d.partitions[0].center_of(VertexId::new(0)),
            VertexId::new(0)
        );
        assert!((d.edge_coverage(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shard_assignment_is_a_balanced_cluster_respecting_partition() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::connected_gnp(60, 0.1, &mut rng);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        let p = d.sharding_partition();
        for shards in [1usize, 3, 5] {
            let assignment = p.shard_assignment(shards);
            assert_eq!(assignment.len(), 60);
            assert!(assignment.iter().all(|&s| (s as usize) < shards));
            // Clusters are never split across shards.
            for (_, members) in p.clusters() {
                let first = assignment[members[0].index()];
                assert!(members.iter().all(|m| assignment[m.index()] == first));
            }
            // Deterministic: recomputing yields the identical assignment.
            assert_eq!(assignment, p.shard_assignment(shards));
        }
        // The chosen partition is the most balanced one.
        let best = p.max_cluster_size();
        assert!(d.partitions.iter().all(|q| q.max_cluster_size() >= best));
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_is_rejected() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = generators::path(10);
        let d = padded_decomposition(&g, &DecompositionOptions::default(), &mut rng);
        let _ = d.sharding_partition().shard_assignment(0);
    }

    #[test]
    fn coverage_fraction_is_between_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::connected_gnp(30, 0.2, &mut rng);
        let d = padded_decomposition(
            &g,
            &DecompositionOptions {
                partitions: Some(1),
                beta: 0.9,
            },
            &mut rng,
        );
        let cov = d.edge_coverage(&g);
        assert!((0.0..=1.0).contains(&cov));
    }
}
