//! Distributed Baswana–Sen in the CONGEST model (Theorem 14).
//!
//! Each of the `k − 1` clustering phases needs only local information:
//! a vertex must learn (i) whether its own cluster was sampled, which the
//! cluster center floods through the cluster (at most `i` rounds in phase `i`,
//! two-word messages), and (ii) the cluster identity and sampled status of
//! each neighbour (one exchange round, three-word messages). All remaining
//! work — choosing the lightest edges, joining a cluster, discarding edges —
//! is local computation, plus one round to notify edge partners of
//! added/discarded edges. The final join phase costs another two rounds.
//! Total: `O(k²)` rounds with `O(1)`-word messages, exactly the budget the
//! paper quotes from [BS07].

use std::collections::BTreeMap;

use ftspan::{SpannerParams, SpannerStats};
use ftspan_graph::{EdgeId, Graph, VertexId};
use rand::Rng;

use crate::local_spanner::DistributedSpannerResult;
use crate::metrics::RoundStats;
use crate::runtime::{Model, Network, Outgoing};

/// Messages exchanged by the distributed Baswana–Sen algorithm.
#[derive(Clone, Debug, PartialEq)]
enum BsMsg {
    /// Flooded inside a cluster: "cluster `center` was (not) sampled".
    ClusterBit { center: VertexId, sampled: bool },
    /// Neighbour information exchange: the sender's current cluster (if any)
    /// and whether that cluster was sampled this phase.
    Info {
        center: Option<VertexId>,
        sampled: bool,
    },
}

/// Runs distributed Baswana–Sen on `graph`, returning the spanner and the
/// exact round/message cost incurred in the CONGEST model.
///
/// The stretch guarantee `(2k − 1)` holds for every random outcome; the
/// expected size is `O(k · n^{1+1/k})`.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn congest_baswana_sen<R: Rng + ?Sized>(
    graph: &Graph,
    k: u32,
    rng: &mut R,
) -> DistributedSpannerResult {
    assert!(k >= 1, "stretch parameter k must be at least 1");
    let n = graph.vertex_count();
    let mut spanner = Graph::empty_like(graph);
    let mut rounds = RoundStats::default();
    let mut stats = SpannerStats {
        algorithm: "congest-baswana-sen",
        input_vertices: n,
        input_edges: graph.edge_count(),
        ..SpannerStats::default()
    };

    if k == 1 || n == 0 {
        // Stretch 1: every edge stays; no communication needed.
        spanner.union_edges_from(graph);
        stats.spanner_edges = spanner.edge_count();
        return DistributedSpannerResult {
            spanner,
            params: SpannerParams::vertex(k.max(1), 0),
            rounds,
            local_work: stats,
            partitions: 1,
        };
    }

    let sample_probability = (n.max(2) as f64).powf(-1.0 / f64::from(k));
    let mut cluster: Vec<Option<VertexId>> = (0..n).map(|v| Some(VertexId::new(v))).collect();
    let mut alive: Vec<bool> = vec![true; graph.edge_count()];

    for phase in 1..k {
        // (a) Centers flip their coins locally.
        let mut sampled_center: BTreeMap<VertexId, bool> = BTreeMap::new();
        for (v, &c) in cluster.iter().enumerate() {
            if c == Some(VertexId::new(v)) {
                sampled_center.insert(VertexId::new(v), rng.gen_bool(sample_probability));
            }
        }

        // (b) Flood the sampled bit inside each cluster (radius ≤ phase).
        let mut own_bit: Vec<Option<bool>> = (0..n)
            .map(|v| match cluster[v] {
                Some(c) if c == VertexId::new(v) => sampled_center.get(&c).copied(),
                _ => None,
            })
            .collect();
        {
            let mut newly = vec![false; n];
            for v in 0..n {
                newly[v] = own_bit[v].is_some();
            }
            let mut net: Network<'_, BsMsg> = Network::new(graph, Model::congest());
            net.run_until_quiet(phase as usize + 2, |v, inbox| {
                let idx = v.index();
                for msg in inbox {
                    if let BsMsg::ClusterBit { center, sampled } = msg.payload {
                        if own_bit[idx].is_none() && cluster[idx] == Some(center) {
                            own_bit[idx] = Some(sampled);
                            newly[idx] = true;
                        }
                    }
                }
                if newly[idx] {
                    newly[idx] = false;
                    if let (Some(bit), Some(center)) = (own_bit[idx], cluster[idx]) {
                        return graph
                            .neighbors(v)
                            .map(|(nbr, _)| {
                                Outgoing::sized(
                                    nbr,
                                    BsMsg::ClusterBit {
                                        center,
                                        sampled: bit,
                                    },
                                    2,
                                )
                            })
                            .collect();
                    }
                }
                Vec::new()
            });
            rounds = rounds.sequential(net.stats());
        }

        // (c) One exchange round: every vertex tells its neighbours its
        // cluster and the sampled bit.
        let mut nbr_info: Vec<BTreeMap<VertexId, (Option<VertexId>, bool)>> =
            vec![BTreeMap::new(); n];
        {
            let mut net: Network<'_, BsMsg> = Network::new(graph, Model::congest());
            net.round(|v, _| {
                let idx = v.index();
                let center = cluster[idx];
                let sampled = own_bit[idx].unwrap_or(false);
                graph
                    .neighbors(v)
                    .map(|(nbr, _)| Outgoing::sized(nbr, BsMsg::Info { center, sampled }, 3))
                    .collect()
            });
            net.round(|v, inbox| {
                let idx = v.index();
                for msg in inbox {
                    if let BsMsg::Info { center, sampled } = msg.payload {
                        nbr_info[idx].insert(msg.from, (center, sampled));
                    }
                }
                Vec::new()
            });
            rounds = rounds.sequential(net.stats());
        }

        // (d) Local decisions for vertices whose cluster was not sampled,
        // followed by one notification round (charged below) informing edge
        // partners of additions and discards.
        let mut next_cluster: Vec<Option<VertexId>> = vec![None; n];
        for v in 0..n {
            if let Some(c) = cluster[v] {
                if *sampled_center.get(&c).unwrap_or(&false) {
                    next_cluster[v] = Some(c);
                }
            }
        }
        for v_idx in 0..n {
            let v = VertexId::new(v_idx);
            let Some(cv) = cluster[v_idx] else { continue };
            if *sampled_center.get(&cv).unwrap_or(&false) {
                continue;
            }
            // Lightest alive edge to each adjacent foreign cluster, learned
            // entirely from the neighbour exchange.
            let mut best: BTreeMap<VertexId, (f64, EdgeId, bool)> = BTreeMap::new();
            for (w, e) in graph.neighbors(v) {
                if !alive[e.index()] {
                    continue;
                }
                let Some(&(Some(cw), cw_sampled)) = nbr_info[v_idx].get(&w) else {
                    continue;
                };
                if cw == cv {
                    continue;
                }
                let weight = graph.weight(e);
                let entry = best.entry(cw).or_insert((weight, e, cw_sampled));
                if weight < entry.0 || (weight == entry.0 && e < entry.1) {
                    *entry = (weight, e, cw_sampled);
                }
            }
            if best.is_empty() {
                continue;
            }
            let best_sampled = best
                .iter()
                .filter(|(_, (_, _, sampled))| *sampled)
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)))
                .map(|(c, (w, e, _))| (*c, *w, *e));
            match best_sampled {
                None => {
                    for (_, e, _) in best.values() {
                        insert_edge(&mut spanner, graph, *e);
                    }
                    for (w, e) in graph.neighbors(v) {
                        if alive[e.index()]
                            && nbr_info[v_idx].get(&w).is_some_and(|(c, _)| c.is_some())
                        {
                            alive[e.index()] = false;
                        }
                    }
                }
                Some((home, home_weight, home_edge)) => {
                    insert_edge(&mut spanner, graph, home_edge);
                    next_cluster[v_idx] = Some(home);
                    for (c, (w, e, _)) in &best {
                        if *c != home && *w < home_weight {
                            insert_edge(&mut spanner, graph, *e);
                        }
                    }
                    for (w, e) in graph.neighbors(v) {
                        if !alive[e.index()] {
                            continue;
                        }
                        let Some(&(Some(cw), _)) = nbr_info[v_idx].get(&w) else {
                            continue;
                        };
                        let discard =
                            cw == home || best.get(&cw).is_some_and(|(w2, _, _)| *w2 < home_weight);
                        if discard {
                            alive[e.index()] = false;
                        }
                    }
                }
            }
        }
        // Notification round: one word per touched edge.
        rounds = rounds.sequential(RoundStats {
            rounds: 1,
            ..RoundStats::default()
        });

        cluster = next_cluster;
        for (e_idx, alive_slot) in alive.iter_mut().enumerate() {
            if !*alive_slot {
                continue;
            }
            let (a, b) = graph.edge(EdgeId::new(e_idx)).endpoints();
            if let (Some(ca), Some(cb)) = (cluster[a.index()], cluster[b.index()]) {
                if ca == cb {
                    *alive_slot = false;
                }
            }
        }
    }

    // Final phase: one exchange round of final cluster ids, local selection
    // of the lightest edge to each adjacent cluster, one notification round.
    {
        let mut nbr_cluster: Vec<BTreeMap<VertexId, Option<VertexId>>> = vec![BTreeMap::new(); n];
        let mut net: Network<'_, BsMsg> = Network::new(graph, Model::congest());
        net.round(|v, _| {
            let center = cluster[v.index()];
            graph
                .neighbors(v)
                .map(|(nbr, _)| {
                    Outgoing::sized(
                        nbr,
                        BsMsg::Info {
                            center,
                            sampled: false,
                        },
                        2,
                    )
                })
                .collect()
        });
        net.round(|v, inbox| {
            for msg in inbox {
                if let BsMsg::Info { center, .. } = msg.payload {
                    nbr_cluster[v.index()].insert(msg.from, center);
                }
            }
            Vec::new()
        });
        rounds = rounds.sequential(net.stats());
        for v_idx in 0..n {
            let v = VertexId::new(v_idx);
            let own = cluster[v_idx];
            let mut best: BTreeMap<VertexId, (f64, EdgeId)> = BTreeMap::new();
            for (w, e) in graph.neighbors(v) {
                if !alive[e.index()] {
                    continue;
                }
                let Some(&Some(cw)) = nbr_cluster[v_idx].get(&w) else {
                    continue;
                };
                if Some(cw) == own {
                    continue;
                }
                let weight = graph.weight(e);
                let entry = best.entry(cw).or_insert((weight, e));
                if weight < entry.0 || (weight == entry.0 && e < entry.1) {
                    *entry = (weight, e);
                }
            }
            for (_, (_, e)) in best {
                insert_edge(&mut spanner, graph, e);
            }
        }
        rounds = rounds.sequential(RoundStats {
            rounds: 1,
            ..RoundStats::default()
        });
    }

    stats.spanner_edges = spanner.edge_count();
    DistributedSpannerResult {
        spanner,
        params: SpannerParams::vertex(k, 0),
        rounds,
        local_work: stats,
        partitions: 1,
    }
}

fn insert_edge(spanner: &mut Graph, graph: &Graph, e: EdgeId) {
    let edge = graph.edge(e);
    let (u, v) = edge.endpoints();
    if spanner.edge_between(u, v).is_none() {
        spanner.add_edge(u.index(), v.index(), edge.weight());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan::bounds;
    use ftspan::verify::{verify_spanner, VerificationMode};
    use ftspan_graph::generators;
    use ftspan_graph::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_a_valid_spanner() {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_gnp(22, 0.25, &mut rng);
            let result = congest_baswana_sen(&g, 2, &mut rng);
            let report = verify_spanner(
                &g,
                &result.spanner,
                SpannerParams::vertex(2, 0),
                VerificationMode::Exhaustive,
            );
            assert!(report.is_valid(), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn weighted_graphs_are_supported() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = generators::connected_gnp(18, 0.3, &mut rng);
        let g = generators::with_random_weights(&base, 1.0, 8.0, &mut rng);
        let result = congest_baswana_sen(&g, 3, &mut rng);
        let report = verify_spanner(
            &g,
            &result.spanner,
            SpannerParams::vertex(3, 0),
            VerificationMode::Exhaustive,
        );
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn round_complexity_is_quadratic_in_k_not_n() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::connected_gnp(120, 0.05, &mut rng);
        for k in [2u32, 3, 4] {
            let mut local = StdRng::seed_from_u64(u64::from(k));
            let result = congest_baswana_sen(&g, k, &mut local);
            // Generous constant over O(k^2); crucially independent of n.
            let bound = 12.0 * bounds::baswana_sen_round_bound(k) + 12.0;
            assert!(
                (result.rounds.rounds as f64) <= bound,
                "k = {k}: rounds {} exceed {bound}",
                result.rounds.rounds
            );
        }
    }

    #[test]
    fn messages_respect_the_congest_word_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::connected_gnp(40, 0.15, &mut rng);
        let result = congest_baswana_sen(&g, 3, &mut rng);
        assert!(result.rounds.max_words_per_edge_round <= 6);
    }

    #[test]
    fn connected_input_gives_connected_spanner() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::connected_gnp(60, 0.1, &mut rng);
        let result = congest_baswana_sen(&g, 3, &mut rng);
        assert!(is_connected(&result.spanner));
    }

    #[test]
    fn size_comparable_to_centralized_baswana_sen() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::complete(60);
        let distributed = congest_baswana_sen(&g, 2, &mut rng);
        let bound = 4.0 * bounds::baswana_sen_size_bound(60, 2);
        assert!((distributed.spanner.edge_count() as f64) < bound);
        assert!(distributed.spanner.edge_count() < g.edge_count());
    }

    #[test]
    fn k_one_and_tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::complete(6);
        let r = congest_baswana_sen(&g, 1, &mut rng);
        assert_eq!(r.spanner.edge_count(), 15);
        assert_eq!(r.rounds.rounds, 0);
        let g = Graph::new(0);
        let r = congest_baswana_sen(&g, 2, &mut rng);
        assert_eq!(r.spanner.edge_count(), 0);
    }
}
