//! Round, message, and congestion accounting for simulated distributed runs.

use core::fmt;

/// Counters describing one simulated distributed execution.
///
/// The quantities mirror exactly what the paper's distributed theorems bound:
/// the number of synchronous rounds, the number of messages, the total
/// traffic in `O(log n)`-bit words, and the worst per-edge-per-round load
/// (which is what forces the congestion scheduling of Theorem 15).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Number of synchronous communication rounds executed.
    pub rounds: usize,
    /// Total number of point-to-point messages delivered.
    pub messages: usize,
    /// Total traffic, measured in words (one word ≈ one node id / weight,
    /// i.e. `O(log n)` bits).
    pub words: usize,
    /// The largest number of words any single edge carried in any single
    /// round (per direction). In the CONGEST model this must stay `O(1)`.
    pub max_words_per_edge_round: usize,
}

impl RoundStats {
    /// Merges another run executed *after* this one (rounds add up).
    #[must_use]
    pub fn sequential(self, later: RoundStats) -> RoundStats {
        RoundStats {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            words: self.words + later.words,
            max_words_per_edge_round: self
                .max_words_per_edge_round
                .max(later.max_words_per_edge_round),
        }
    }

    /// Merges another run executed *in parallel* with this one (rounds take
    /// the maximum, traffic adds up).
    #[must_use]
    pub fn parallel(self, other: RoundStats) -> RoundStats {
        RoundStats {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
            words: self.words + other.words,
            max_words_per_edge_round: self
                .max_words_per_edge_round
                .max(other.max_words_per_edge_round),
        }
    }
}

impl fmt::Display for RoundStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} words, max {} words/edge/round",
            self.rounds, self.messages, self.words, self.max_words_per_edge_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_composition_adds_rounds() {
        let a = RoundStats {
            rounds: 3,
            messages: 10,
            words: 20,
            max_words_per_edge_round: 2,
        };
        let b = RoundStats {
            rounds: 4,
            messages: 5,
            words: 9,
            max_words_per_edge_round: 5,
        };
        let c = a.sequential(b);
        assert_eq!(c.rounds, 7);
        assert_eq!(c.messages, 15);
        assert_eq!(c.words, 29);
        assert_eq!(c.max_words_per_edge_round, 5);
    }

    #[test]
    fn parallel_composition_takes_max_rounds() {
        let a = RoundStats {
            rounds: 3,
            messages: 10,
            words: 20,
            max_words_per_edge_round: 2,
        };
        let b = RoundStats {
            rounds: 7,
            messages: 1,
            words: 1,
            max_words_per_edge_round: 1,
        };
        let c = a.parallel(b);
        assert_eq!(c.rounds, 7);
        assert_eq!(c.messages, 11);
    }

    #[test]
    fn display_is_nonempty() {
        let s = RoundStats::default().to_string();
        assert!(s.contains("rounds"));
    }
}
